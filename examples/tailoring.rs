//! "Smooth tailoring" (§5.3): one functional architecture, three real-time
//! deployments — without touching business code.
//!
//! The same sensor→filter→sink business view is deployed as:
//!
//! * **hard** — everything NHRT in immortal memory (GC-immune);
//! * **mixed** — the paper's style: RT producer/filter, regular sink;
//! * **soft** — everything on regular heap threads.
//!
//! Each deployment is validated, executed in wall-clock time, and deployed
//! onto the virtual-time scheduler under a collector to show how the
//! thread/memory views change the timing behaviour while the functional
//! results stay identical.
//!
//! ```text
//! cargo run --release --example tailoring
//! ```

use rtsj::gc::GcConfig;
use rtsj::time::{AbsoluteTime, RelativeTime};
use soleil::generator::compile;
use soleil::prelude::*;
use soleil::runtime::sim::{deploy as sim_deploy, SimCosts, SimOptions};
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone, Copy, Default)]
struct Reading {
    raw: f64,
    filtered: f64,
}

#[derive(Debug, Default)]
struct SensorImpl {
    n: u64,
}
impl Content<Reading> for SensorImpl {
    fn on_invoke(
        &mut self,
        _p: &str,
        msg: &mut Reading,
        out: &mut dyn Ports<Reading>,
    ) -> InvokeResult {
        self.n += 1;
        msg.raw = (self.n % 100) as f64;
        out.send("out", *msg)
    }
}

#[derive(Debug, Default)]
struct FilterImpl {
    ema: f64,
}
impl Content<Reading> for FilterImpl {
    fn on_invoke(
        &mut self,
        _p: &str,
        msg: &mut Reading,
        out: &mut dyn Ports<Reading>,
    ) -> InvokeResult {
        self.ema = 0.9 * self.ema + 0.1 * msg.raw;
        msg.filtered = self.ema;
        out.send("out", *msg)
    }
}

#[derive(Debug)]
struct SinkImpl {
    sum: Arc<Mutex<f64>>,
}
impl Content<Reading> for SinkImpl {
    fn on_invoke(
        &mut self,
        _p: &str,
        msg: &mut Reading,
        _out: &mut dyn Ports<Reading>,
    ) -> InvokeResult {
        *self.sum.lock().expect("sink sum") += msg.filtered;
        Ok(())
    }
}

fn business() -> Result<BusinessView, SoleilError> {
    let mut b = BusinessView::new("tailorable-pipeline");
    b.active_periodic("sensor", "5ms")?;
    b.active_sporadic("filter")?;
    b.active_sporadic("sink")?;
    b.content("sensor", "SensorImpl")?;
    b.content("filter", "FilterImpl")?;
    b.content("sink", "SinkImpl")?;
    b.require("sensor", "out", "IReading")?;
    b.provide("filter", "in", "IReading")?;
    b.require("filter", "out", "IReading")?;
    b.provide("sink", "in", "IReading")?;
    b.bind_async("sensor", "out", "filter", "in", 8)?;
    b.bind_async("filter", "out", "sink", "in", 8)?;
    Ok(b)
}

/// One deployment: (label, function adding the RT views).
type Deployment = (
    &'static str,
    fn(&mut DesignFlow) -> soleil::core::Result<()>,
);

/// The three deployments.
fn deployments() -> Vec<Deployment> {
    fn hard(f: &mut DesignFlow) -> soleil::core::Result<()> {
        f.thread_domain(
            "all-nhrt",
            ThreadKind::NoHeapRealtime,
            35,
            &["sensor", "filter", "sink"],
        )?;
        f.memory_area("imm", MemoryKind::Immortal, Some(256 * 1024), &["all-nhrt"])
    }
    fn mixed(f: &mut DesignFlow) -> soleil::core::Result<()> {
        // NHRT for the time-critical stages (GC-immune), regular for the sink.
        f.thread_domain(
            "nhrt",
            ThreadKind::NoHeapRealtime,
            28,
            &["sensor", "filter"],
        )?;
        f.thread_domain("reg", ThreadKind::Regular, 5, &["sink"])?;
        f.memory_area("imm", MemoryKind::Immortal, Some(128 * 1024), &["nhrt"])?;
        f.memory_area("heap", MemoryKind::Heap, None, &["reg"])
    }
    fn soft(f: &mut DesignFlow) -> soleil::core::Result<()> {
        f.thread_domain("reg", ThreadKind::Regular, 5, &["sensor", "filter", "sink"])?;
        f.memory_area("heap", MemoryKind::Heap, None, &["reg"])
    }
    vec![("hard", hard), ("mixed", mixed), ("soft", soft)]
}

fn main() -> Result<(), SoleilError> {
    let gc = GcConfig::periodic(RelativeTime::from_millis(30), RelativeTime::from_millis(8));
    let costs = SimCosts::uniform(RelativeTime::from_micros(200));

    println!(
        "{:<8} {:>10} {:>12} {:>14} {:>14} {:>10}",
        "deploy", "valid", "sum(10k)", "sensor-wcrt", "sink-wcrt", "misses"
    );

    let mut sums = Vec::new();
    for (label, apply) in deployments() {
        let mut flow = DesignFlow::new(business()?);
        apply(&mut flow)?;
        let arch = flow.merge()?.into_validated()?;

        // Wall-clock functional run.
        let sum = Arc::new(Mutex::new(0.0f64));
        let mut registry: ContentRegistry<Reading> = ContentRegistry::new();
        registry.register("SensorImpl", || Box::new(SensorImpl::default()));
        registry.register("FilterImpl", || Box::new(FilterImpl::default()));
        let s = sum.clone();
        registry.register("SinkImpl", move || Box::new(SinkImpl { sum: s.clone() }));
        let mut sys = deploy(&arch, Mode::MergeAll, &registry)?;
        let head = sys.resolve("sensor")?;
        for _ in 0..10_000 {
            sys.run_transaction(head)?;
        }
        sums.push(*sum.lock().expect("sink sum"));

        // Virtual-time deployment under GC.
        let spec = compile(&arch)?;
        let mut d = sim_deploy(
            &spec,
            &costs,
            &SimOptions {
                force_thread_kind: None,
                gc: Some(gc),
            },
        );
        d.simulator.run_until(AbsoluteTime::from_millis(1_000));
        let wcrt = |name: &str| {
            d.simulator
                .stats(d.tasks[name])
                .ok()
                .and_then(|s| s.response_summary())
                .map(|s| format!("{}", s.max))
                .unwrap_or_else(|| "-".into())
        };
        let misses: u64 = d
            .tasks
            .values()
            .map(|&t| d.simulator.stats(t).map(|s| s.deadline_misses).unwrap_or(0))
            .sum();
        println!(
            "{:<8} {:>10} {:>12.1} {:>14} {:>14} {:>10}",
            label,
            "yes",
            *sum.lock().expect("sink sum"),
            wcrt("sensor"),
            wcrt("sink"),
            misses
        );
    }

    // Functional results identical across deployments.
    assert!((sums[0] - sums[1]).abs() < 1e-6 && (sums[1] - sums[2]).abs() < 1e-6);
    println!(
        "\nfunctional results identical across all three deployments: {:.1}",
        sums[0]
    );
    println!("only the thread/memory views changed — business code untouched.");
    Ok(())
}
