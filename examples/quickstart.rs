//! Quickstart: design → validate → generate → run, in ~60 lines.
//!
//! A periodic sensor streams samples to a sporadic logger through a bounded
//! asynchronous buffer; both run in an NHRT thread domain allocated in
//! immortal memory.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use soleil::prelude::*;

/// The message type flowing through the system.
#[derive(Debug, Clone, Copy, Default)]
struct Sample {
    seq: u64,
    celsius: f64,
}

#[derive(Debug, Default)]
struct Sensor {
    seq: u64,
}

impl Content<Sample> for Sensor {
    fn on_invoke(
        &mut self,
        port: &str,
        msg: &mut Sample,
        out: &mut dyn Ports<Sample>,
    ) -> InvokeResult {
        assert_eq!(
            port, RELEASE_PORT,
            "periodic components release on {RELEASE_PORT}"
        );
        self.seq += 1;
        msg.seq = self.seq;
        msg.celsius = 20.0 + (self.seq % 7) as f64 * 0.1;
        out.send("out", *msg)
    }
}

#[derive(Debug, Default)]
struct Logger {
    seen: u64,
    hottest: f64,
}

impl Content<Sample> for Logger {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Sample,
        _out: &mut dyn Ports<Sample>,
    ) -> InvokeResult {
        self.seen += 1;
        if msg.celsius > self.hottest {
            self.hottest = msg.celsius;
        }
        Ok(())
    }
}

fn main() -> Result<(), SoleilError> {
    // 1. Business view: pure functional architecture.
    let mut business = BusinessView::new("thermometer");
    business.active_periodic("sensor", "10ms")?;
    business.active_sporadic("logger")?;
    business.content("sensor", "SensorImpl")?;
    business.content("logger", "LoggerImpl")?;
    business.require("sensor", "out", "ISample")?;
    business.provide("logger", "in", "ISample")?;
    business.bind_async("sensor", "out", "logger", "in", 16)?;

    // 2. Thread + memory management views (the real-time concerns).
    let mut flow = DesignFlow::new(business);
    flow.thread_domain(
        "nhrt",
        ThreadKind::NoHeapRealtime,
        30,
        &["sensor", "logger"],
    )?;
    flow.memory_area("imm", MemoryKind::Immortal, Some(128 * 1024), &["nhrt"])?;

    // 3. Merge and validate: RTSJ conformance checked at design time. The
    //    consuming validator returns a witness — the only input `deploy`
    //    accepts, so an unchecked architecture cannot reach the runtime.
    let arch = flow.merge()?.into_validated()?;
    println!("validation: {}", arch.report());

    // 4. Deploy the execution infrastructure (MERGE-ALL level) and run.
    //    Component names resolve once into copyable tokens; the loop below
    //    performs no name resolution at all.
    let mut registry = ContentRegistry::new();
    registry.register("SensorImpl", || Box::new(Sensor::default()));
    registry.register("LoggerImpl", || Box::new(Logger::default()));
    let mut system = deploy(&arch, Mode::MergeAll, &registry)?;

    let head = system.resolve("sensor")?;
    for _ in 0..1000 {
        system.run_transaction(head)?;
    }

    let stats = system.stats();
    println!("ran {} transactions", stats.transactions);
    println!("  activations:     {}", stats.activations);
    println!("  async messages:  {}", stats.async_messages);
    println!("  dropped:         {}", stats.dropped_messages);
    println!("{}", system.footprint());
    Ok(())
}
