//! Dynamic adaptation (§4.2): transactional reconfiguration through the
//! typed deployment handle.
//!
//! A monitoring pipeline notifies a primary console; at runtime we switch
//! to a backup console inside one `reconfigure` transaction — stop, rebind,
//! restart — which commits only after the resulting architecture passes the
//! same RTSJ validation the design-time flow enforces, and rolls back
//! as a unit otherwise. The same operations are then attempted under
//! MERGE-ALL (functional-level rebinding still works, membrane
//! introspection does not) and ULTRA-MERGE (purely static: everything is
//! refused), matching the paper's capability matrix. Finally a transaction
//! is driven into a validator refusal to demonstrate the rollback.
//!
//! ```text
//! cargo run --example adaptive_reconfig
//! ```

use soleil::prelude::*;

#[derive(Debug, Clone, Copy, Default)]
struct Alert {
    code: u32,
}

#[derive(Debug, Default)]
struct Producer {
    n: u32,
}
impl Content<Alert> for Producer {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Alert,
        out: &mut dyn Ports<Alert>,
    ) -> InvokeResult {
        self.n += 1;
        msg.code = self.n;
        out.call("console", msg)
    }
}

#[derive(Debug)]
struct NamedConsole {
    name: &'static str,
    handled: std::sync::Arc<std::sync::atomic::AtomicU32>,
}
impl Content<Alert> for NamedConsole {
    fn on_invoke(
        &mut self,
        _port: &str,
        _msg: &mut Alert,
        _out: &mut dyn Ports<Alert>,
    ) -> InvokeResult {
        self.handled
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }
    fn on_stop(&mut self) {
        println!("    [{}] stopping", self.name);
    }
}

type HandledCounter = std::sync::Arc<std::sync::atomic::AtomicU32>;

fn build(mode: Mode) -> Result<(Deployment<Alert>, HandledCounter, HandledCounter), SoleilError> {
    let mut b = BusinessView::new("adaptive");
    b.active_periodic("producer", "5ms")?;
    b.passive("primary")?;
    b.passive("backup")?;
    b.content("producer", "ProducerImpl")?;
    b.content("primary", "PrimaryImpl")?;
    b.content("backup", "BackupImpl")?;
    b.require("producer", "console", "IConsole")?;
    b.provide("primary", "console", "IConsole")?;
    b.provide("backup", "console", "IConsole")?;
    b.bind_sync("producer", "console", "primary", "console")?;

    let mut flow = DesignFlow::new(b);
    flow.thread_domain("rt", ThreadKind::Realtime, 25, &["producer"])?;
    flow.memory_area(
        "imm",
        MemoryKind::Immortal,
        Some(128 * 1024),
        &["rt", "primary", "backup"],
    )?;
    // The witness: conformance proven once, carried by the type system.
    let arch = flow.merge()?.into_validated()?;

    let primary_count = HandledCounter::default();
    let backup_count = HandledCounter::default();
    let mut registry: ContentRegistry<Alert> = ContentRegistry::new();
    registry.register("ProducerImpl", || Box::new(Producer::default()));
    let p = primary_count.clone();
    registry.register("PrimaryImpl", move || {
        Box::new(NamedConsole {
            name: "primary",
            handled: p.clone(),
        })
    });
    let bk = backup_count.clone();
    registry.register("BackupImpl", move || {
        Box::new(NamedConsole {
            name: "backup",
            handled: bk.clone(),
        })
    });

    let dep = deploy(&arch, mode, &registry)?;
    Ok((dep, primary_count, backup_count))
}

/// Fans every alert out on both client ports (the parallel fixture's head).
#[derive(Debug, Default)]
struct FanProducer {
    n: u32,
}
impl Content<Alert> for FanProducer {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Alert,
        out: &mut dyn Ports<Alert>,
    ) -> InvokeResult {
        self.n += 1;
        msg.code = self.n;
        out.send("out1", *msg)?;
        out.send("out2", *msg)
    }
}

/// A sharded fan-out: the producer runs on its own shard and feeds two
/// consumers over cross-shard rings; a synchronous peer binding couples
/// the consumers' domains into one shard, which is what makes the
/// same-shard `reassign_domain` below legal.
fn build_parallel(
    mode: Mode,
) -> Result<(ParallelSystem<Alert>, HandledCounter, HandledCounter), SoleilError> {
    let mut b = BusinessView::new("adaptive-parallel");
    b.active_periodic("producer", "10ms")?;
    b.active_sporadic("consumerB")?;
    b.active_sporadic("consumerC")?;
    b.content("producer", "FanImpl")?;
    b.content("consumerB", "ConsoleB")?;
    b.content("consumerC", "ConsoleC")?;
    b.require("producer", "out1", "IConsole")?;
    b.require("producer", "out2", "IConsole")?;
    b.require("consumerB", "peer", "IConsole")?;
    b.provide("consumerB", "in", "IConsole")?;
    b.provide("consumerC", "in", "IConsole")?;
    b.bind_async("producer", "out1", "consumerB", "in", 64)?;
    b.bind_async("producer", "out2", "consumerC", "in", 64)?;
    b.bind_sync("consumerB", "peer", "consumerC", "in")?;

    let mut flow = DesignFlow::new(b);
    flow.thread_domain("A", ThreadKind::NoHeapRealtime, 30, &["producer"])?;
    flow.thread_domain("B", ThreadKind::NoHeapRealtime, 25, &["consumerB"])?;
    flow.thread_domain("C", ThreadKind::Realtime, 20, &["consumerC"])?;
    flow.memory_area("ImmA", MemoryKind::Immortal, Some(256 * 1024), &["A"])?;
    flow.memory_area("ImmB", MemoryKind::Immortal, Some(256 * 1024), &["B"])?;
    flow.memory_area("ImmC", MemoryKind::Immortal, Some(256 * 1024), &["C"])?;
    let arch = flow.merge()?.into_validated()?;

    let b_count = HandledCounter::default();
    let c_count = HandledCounter::default();
    let mut registry: ContentRegistry<Alert> = ContentRegistry::new();
    registry.register("FanImpl", || Box::new(FanProducer::default()));
    let bc = b_count.clone();
    registry.register("ConsoleB", move || {
        Box::new(NamedConsole {
            name: "consumerB",
            handled: bc.clone(),
        })
    });
    let cc = c_count.clone();
    registry.register("ConsoleC", move || {
        Box::new(NamedConsole {
            name: "consumerC",
            handled: cc.clone(),
        })
    });

    let sys = soleil::generator::deploy_parallel(&arch, mode, &registry)?;
    Ok((sys, b_count, c_count))
}

fn main() -> Result<(), SoleilError> {
    // --- SOLEIL: full membrane-level adaptation ------------------------
    println!("== SOLEIL mode ==");
    let (mut dep, primary, backup) = build(Mode::Soleil)?;
    let producer = dep.resolve("producer")?;
    let backup_ref = dep.resolve("backup")?;
    for _ in 0..10 {
        dep.run_transaction(producer)?;
    }
    println!(
        "  before reconfiguration: primary={}, backup={}",
        primary.load(std::sync::atomic::Ordering::Relaxed),
        backup.load(std::sync::atomic::Ordering::Relaxed)
    );
    let info = dep.membrane_info(producer)?;
    println!(
        "  producer membrane: interceptors {:?}, bound ports {:?}",
        info.interceptors, info.bound_ports
    );

    println!("  ... transaction: stop producer, rebind console -> backup, restart ...");
    dep.reconfigure(|txn| {
        txn.stop(producer)?;
        txn.rebind(producer, "console", backup_ref)?;
        txn.start(producer)
    })?;
    for _ in 0..10 {
        dep.run_transaction(producer)?;
    }
    println!(
        "  after reconfiguration:  primary={}, backup={}",
        primary.load(std::sync::atomic::Ordering::Relaxed),
        backup.load(std::sync::atomic::Ordering::Relaxed)
    );
    assert_eq!(primary.load(std::sync::atomic::Ordering::Relaxed), 10);
    assert_eq!(backup.load(std::sync::atomic::Ordering::Relaxed), 10);

    // Membrane-level reconfiguration: inject a jitter monitor into the
    // live producer membrane, observe, remove it again.
    dep.enable_jitter_monitoring(producer)?;
    for _ in 0..20 {
        dep.run_transaction(producer)?;
    }
    let gaps = dep.jitter_observations(producer)?;
    println!(
        "  jitter monitor installed at runtime: {} gaps, mean {:.2} us",
        gaps.len(),
        gaps.iter().sum::<u64>() as f64 / gaps.len().max(1) as f64 / 1000.0
    );
    dep.disable_jitter_monitoring(producer)?;
    assert_eq!(backup.load(std::sync::atomic::Ordering::Relaxed), 30);

    // Fault policies are reconfiguration ops too: journaled, applied
    // all-or-nothing, rolled back with everything else. Put the producer
    // under supervised restart as part of adapting the system.
    dep.reconfigure(|txn| {
        txn.set_fault_policy(
            producer,
            FaultPolicy::Restart {
                max_restarts: 3,
                window: RelativeTime::from_millis(60_000),
                backoff: RelativeTime::from_millis(5),
            },
        )
        .map(|_| ())
    })?;
    println!(
        "  fault policy set transactionally: {:?}",
        dep.fault_policy(producer)?
    );

    // A transaction that fails mid-flight rolls back as a unit: the
    // rebind below targets a port the backup does not provide, so the
    // stop before it is undone too and traffic keeps flowing to backup —
    // and the policy op in the same transaction is rolled back with it.
    let failed = dep.reconfigure(|txn| {
        txn.set_fault_policy(producer, FaultPolicy::Isolate)?;
        txn.stop(producer)?;
        txn.rebind(producer, "no-such-port", backup_ref)
    });
    println!(
        "  failing transaction refused and rolled back: {}",
        failed.unwrap_err()
    );
    dep.run_transaction(producer)?;
    assert_eq!(
        backup.load(std::sync::atomic::Ordering::Relaxed),
        31,
        "producer still running, still on backup"
    );
    assert!(
        matches!(dep.fault_policy(producer)?, FaultPolicy::Restart { .. }),
        "the failed transaction's Isolate was rolled back too"
    );

    // --- MERGE-ALL: functional level only -------------------------------
    println!("\n== MERGE-ALL mode ==");
    let (mut dep, primary, backup) = build(Mode::MergeAll)?;
    let producer = dep.resolve("producer")?;
    let backup_ref = dep.resolve("backup")?;
    for _ in 0..5 {
        dep.run_transaction(producer)?;
    }
    match dep.membrane_info(producer) {
        Err(FrameworkError::Unsupported(msg)) => {
            println!("  membrane introspection refused: {msg}")
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
    dep.reconfigure(|txn| txn.rebind(producer, "console", backup_ref))?;
    for _ in 0..5 {
        dep.run_transaction(producer)?;
    }
    println!(
        "  functional rebinding still works: primary={}, backup={}",
        primary.load(std::sync::atomic::Ordering::Relaxed),
        backup.load(std::sync::atomic::Ordering::Relaxed)
    );
    assert_eq!(
        (
            primary.load(std::sync::atomic::Ordering::Relaxed),
            backup.load(std::sync::atomic::Ordering::Relaxed)
        ),
        (5, 5)
    );

    // --- ULTRA-MERGE: purely static --------------------------------------
    println!("\n== ULTRA-MERGE mode ==");
    let (mut dep, primary, _backup) = build(Mode::UltraMerge)?;
    let producer = dep.resolve("producer")?;
    let backup_ref = dep.resolve("backup")?;
    for _ in 0..5 {
        dep.run_transaction(producer)?;
    }
    match dep.reconfigure(|txn| txn.rebind(producer, "console", backup_ref)) {
        Err(FrameworkError::Unsupported(msg)) => println!("  reconfigure refused: {msg}"),
        other => panic!("expected Unsupported, got {other:?}"),
    }
    println!(
        "  static system kept running: primary={}",
        primary.load(std::sync::atomic::Ordering::Relaxed)
    );

    // --- PARALLEL: live reconfiguration of a running partition -----------
    // The same transaction discipline, across the shard boundary: the
    // engine drives every shard to a quiescence epoch (rings drained),
    // applies the batch through per-shard undo journals, re-validates at
    // commit, and rolls back byte-identically on refusal.
    println!("\n== PARALLEL deployment (SOLEIL mode) ==");
    let (mut sys, b_count, c_count) = build_parallel(Mode::Soleil)?;
    let load = |c: &HandledCounter| c.load(std::sync::atomic::Ordering::Relaxed);
    println!("  shards: {}", sys.shard_count());
    sys.run_ticks(10)?;
    println!(
        "  before reconfiguration: consumerB={}, consumerC={}",
        load(&b_count),
        load(&c_count)
    );

    // One committed transaction under live traffic: rewire the out1 ring
    // across shards, re-seat consumerB onto domain C (re-homing its
    // allocation region from ImmB into ImmC), and swap a fault policy.
    println!("  ... transaction: rebind_async out1 -> consumerC, re-home consumerB, Isolate ...");
    sys.reconfigure(|txn| {
        txn.rebind_async("producer", "out1", "consumerC")?;
        txn.reassign_domain("consumerB", "C")?;
        txn.set_fault_policy("consumerC", FaultPolicy::Isolate)
    })?;
    sys.run_ticks(10)?;
    println!(
        "  after reconfiguration:  consumerB={}, consumerC={}",
        load(&b_count),
        load(&c_count)
    );
    assert_eq!((load(&b_count), load(&c_count)), (10, 30));
    assert_eq!(sys.stats().dropped_messages, 0, "epochs drain, never drop");

    // A refused transaction rolls every shard back byte-identically —
    // witnessed by the per-shard structural digests.
    let digests = sys.structural_digests();
    let refused = sys.reconfigure(|txn| -> Result<(), FrameworkError> {
        txn.rebind_async("producer", "out2", "consumerB")?;
        txn.reassign_domain("consumerB", "B")?;
        Err(FrameworkError::Content(
            "operator changed their mind".into(),
        ))
    });
    println!(
        "  refused transaction rolled back: {}",
        refused.unwrap_err()
    );
    assert_eq!(sys.structural_digests(), digests, "byte-identical rollback");
    sys.run_ticks(5)?;
    assert_eq!((load(&b_count), load(&c_count)), (10, 40));

    // Components never migrate across the static domain partition.
    match sys.reconfigure(|txn| txn.reassign_domain("consumerB", "A")) {
        Err(e) => println!("  cross-shard migration refused: {e}"),
        Ok(()) => panic!("cross-shard reassign_domain must be refused"),
    }
    Ok(())
}
