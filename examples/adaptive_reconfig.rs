//! Dynamic adaptation (§4.2): transactional reconfiguration through the
//! typed deployment handle.
//!
//! A monitoring pipeline notifies a primary console; at runtime we switch
//! to a backup console inside one `reconfigure` transaction — stop, rebind,
//! restart — which commits only after the resulting architecture passes the
//! same RTSJ validation the design-time flow enforces, and rolls back
//! as a unit otherwise. The same operations are then attempted under
//! MERGE-ALL (functional-level rebinding still works, membrane
//! introspection does not) and ULTRA-MERGE (purely static: everything is
//! refused), matching the paper's capability matrix. Finally a transaction
//! is driven into a validator refusal to demonstrate the rollback.
//!
//! ```text
//! cargo run --example adaptive_reconfig
//! ```

use soleil::prelude::*;

#[derive(Debug, Clone, Copy, Default)]
struct Alert {
    code: u32,
}

#[derive(Debug, Default)]
struct Producer {
    n: u32,
}
impl Content<Alert> for Producer {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Alert,
        out: &mut dyn Ports<Alert>,
    ) -> InvokeResult {
        self.n += 1;
        msg.code = self.n;
        out.call("console", msg)
    }
}

#[derive(Debug)]
struct NamedConsole {
    name: &'static str,
    handled: std::sync::Arc<std::sync::atomic::AtomicU32>,
}
impl Content<Alert> for NamedConsole {
    fn on_invoke(
        &mut self,
        _port: &str,
        _msg: &mut Alert,
        _out: &mut dyn Ports<Alert>,
    ) -> InvokeResult {
        self.handled
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }
    fn on_stop(&mut self) {
        println!("    [{}] stopping", self.name);
    }
}

type HandledCounter = std::sync::Arc<std::sync::atomic::AtomicU32>;

fn build(mode: Mode) -> Result<(Deployment<Alert>, HandledCounter, HandledCounter), SoleilError> {
    let mut b = BusinessView::new("adaptive");
    b.active_periodic("producer", "5ms")?;
    b.passive("primary")?;
    b.passive("backup")?;
    b.content("producer", "ProducerImpl")?;
    b.content("primary", "PrimaryImpl")?;
    b.content("backup", "BackupImpl")?;
    b.require("producer", "console", "IConsole")?;
    b.provide("primary", "console", "IConsole")?;
    b.provide("backup", "console", "IConsole")?;
    b.bind_sync("producer", "console", "primary", "console")?;

    let mut flow = DesignFlow::new(b);
    flow.thread_domain("rt", ThreadKind::Realtime, 25, &["producer"])?;
    flow.memory_area(
        "imm",
        MemoryKind::Immortal,
        Some(128 * 1024),
        &["rt", "primary", "backup"],
    )?;
    // The witness: conformance proven once, carried by the type system.
    let arch = flow.merge()?.into_validated()?;

    let primary_count = HandledCounter::default();
    let backup_count = HandledCounter::default();
    let mut registry: ContentRegistry<Alert> = ContentRegistry::new();
    registry.register("ProducerImpl", || Box::new(Producer::default()));
    let p = primary_count.clone();
    registry.register("PrimaryImpl", move || {
        Box::new(NamedConsole {
            name: "primary",
            handled: p.clone(),
        })
    });
    let bk = backup_count.clone();
    registry.register("BackupImpl", move || {
        Box::new(NamedConsole {
            name: "backup",
            handled: bk.clone(),
        })
    });

    let dep = deploy(&arch, mode, &registry)?;
    Ok((dep, primary_count, backup_count))
}

fn main() -> Result<(), SoleilError> {
    // --- SOLEIL: full membrane-level adaptation ------------------------
    println!("== SOLEIL mode ==");
    let (mut dep, primary, backup) = build(Mode::Soleil)?;
    let producer = dep.resolve("producer")?;
    let backup_ref = dep.resolve("backup")?;
    for _ in 0..10 {
        dep.run_transaction(producer)?;
    }
    println!(
        "  before reconfiguration: primary={}, backup={}",
        primary.load(std::sync::atomic::Ordering::Relaxed),
        backup.load(std::sync::atomic::Ordering::Relaxed)
    );
    let info = dep.membrane_info(producer)?;
    println!(
        "  producer membrane: interceptors {:?}, bound ports {:?}",
        info.interceptors, info.bound_ports
    );

    println!("  ... transaction: stop producer, rebind console -> backup, restart ...");
    dep.reconfigure(|txn| {
        txn.stop(producer)?;
        txn.rebind(producer, "console", backup_ref)?;
        txn.start(producer)
    })?;
    for _ in 0..10 {
        dep.run_transaction(producer)?;
    }
    println!(
        "  after reconfiguration:  primary={}, backup={}",
        primary.load(std::sync::atomic::Ordering::Relaxed),
        backup.load(std::sync::atomic::Ordering::Relaxed)
    );
    assert_eq!(primary.load(std::sync::atomic::Ordering::Relaxed), 10);
    assert_eq!(backup.load(std::sync::atomic::Ordering::Relaxed), 10);

    // Membrane-level reconfiguration: inject a jitter monitor into the
    // live producer membrane, observe, remove it again.
    dep.enable_jitter_monitoring(producer)?;
    for _ in 0..20 {
        dep.run_transaction(producer)?;
    }
    let gaps = dep.jitter_observations(producer)?;
    println!(
        "  jitter monitor installed at runtime: {} gaps, mean {:.2} us",
        gaps.len(),
        gaps.iter().sum::<u64>() as f64 / gaps.len().max(1) as f64 / 1000.0
    );
    dep.disable_jitter_monitoring(producer)?;
    assert_eq!(backup.load(std::sync::atomic::Ordering::Relaxed), 30);

    // Fault policies are reconfiguration ops too: journaled, applied
    // all-or-nothing, rolled back with everything else. Put the producer
    // under supervised restart as part of adapting the system.
    dep.reconfigure(|txn| {
        txn.set_fault_policy(
            producer,
            FaultPolicy::Restart {
                max_restarts: 3,
                window: RelativeTime::from_millis(60_000),
                backoff: RelativeTime::from_millis(5),
            },
        )
        .map(|_| ())
    })?;
    println!(
        "  fault policy set transactionally: {:?}",
        dep.fault_policy(producer)?
    );

    // A transaction that fails mid-flight rolls back as a unit: the
    // rebind below targets a port the backup does not provide, so the
    // stop before it is undone too and traffic keeps flowing to backup —
    // and the policy op in the same transaction is rolled back with it.
    let failed = dep.reconfigure(|txn| {
        txn.set_fault_policy(producer, FaultPolicy::Isolate)?;
        txn.stop(producer)?;
        txn.rebind(producer, "no-such-port", backup_ref)
    });
    println!(
        "  failing transaction refused and rolled back: {}",
        failed.unwrap_err()
    );
    dep.run_transaction(producer)?;
    assert_eq!(
        backup.load(std::sync::atomic::Ordering::Relaxed),
        31,
        "producer still running, still on backup"
    );
    assert!(
        matches!(dep.fault_policy(producer)?, FaultPolicy::Restart { .. }),
        "the failed transaction's Isolate was rolled back too"
    );

    // --- MERGE-ALL: functional level only -------------------------------
    println!("\n== MERGE-ALL mode ==");
    let (mut dep, primary, backup) = build(Mode::MergeAll)?;
    let producer = dep.resolve("producer")?;
    let backup_ref = dep.resolve("backup")?;
    for _ in 0..5 {
        dep.run_transaction(producer)?;
    }
    match dep.membrane_info(producer) {
        Err(FrameworkError::Unsupported(msg)) => {
            println!("  membrane introspection refused: {msg}")
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
    dep.reconfigure(|txn| txn.rebind(producer, "console", backup_ref))?;
    for _ in 0..5 {
        dep.run_transaction(producer)?;
    }
    println!(
        "  functional rebinding still works: primary={}, backup={}",
        primary.load(std::sync::atomic::Ordering::Relaxed),
        backup.load(std::sync::atomic::Ordering::Relaxed)
    );
    assert_eq!(
        (
            primary.load(std::sync::atomic::Ordering::Relaxed),
            backup.load(std::sync::atomic::Ordering::Relaxed)
        ),
        (5, 5)
    );

    // --- ULTRA-MERGE: purely static --------------------------------------
    println!("\n== ULTRA-MERGE mode ==");
    let (mut dep, primary, _backup) = build(Mode::UltraMerge)?;
    let producer = dep.resolve("producer")?;
    let backup_ref = dep.resolve("backup")?;
    for _ in 0..5 {
        dep.run_transaction(producer)?;
    }
    match dep.reconfigure(|txn| txn.rebind(producer, "console", backup_ref)) {
        Err(FrameworkError::Unsupported(msg)) => println!("  reconfigure refused: {msg}"),
        other => panic!("expected Unsupported, got {other:?}"),
    }
    println!(
        "  static system kept running: primary={}",
        primary.load(std::sync::atomic::Ordering::Relaxed)
    );
    Ok(())
}
