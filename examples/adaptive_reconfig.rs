//! Dynamic adaptation (§4.2): runtime reconfiguration through the
//! membrane's Binding and Lifecycle controllers.
//!
//! A monitoring pipeline notifies a primary console; at runtime we stop the
//! primary, rebind the client interface to a backup console, and restart —
//! without touching functional code. The same operations are then attempted
//! under MERGE-ALL (functional-level rebinding still works, membrane
//! introspection does not) and ULTRA-MERGE (purely static: everything is
//! refused), matching the paper's capability matrix.
//!
//! ```text
//! cargo run --example adaptive_reconfig
//! ```

use soleil::prelude::*;

#[derive(Debug, Clone, Copy, Default)]
struct Alert {
    code: u32,
}

#[derive(Debug, Default)]
struct Producer {
    n: u32,
}
impl Content<Alert> for Producer {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Alert,
        out: &mut dyn Ports<Alert>,
    ) -> InvokeResult {
        self.n += 1;
        msg.code = self.n;
        out.call("console", msg)
    }
}

#[derive(Debug)]
struct NamedConsole {
    name: &'static str,
    handled: std::rc::Rc<std::cell::Cell<u32>>,
}
impl Content<Alert> for NamedConsole {
    fn on_invoke(
        &mut self,
        _port: &str,
        _msg: &mut Alert,
        _out: &mut dyn Ports<Alert>,
    ) -> InvokeResult {
        self.handled.set(self.handled.get() + 1);
        Ok(())
    }
    fn on_stop(&mut self) {
        println!("    [{}] stopping", self.name);
    }
}

type HandledCounter = std::rc::Rc<std::cell::Cell<u32>>;

fn build(mode: Mode) -> Result<(System<Alert>, HandledCounter, HandledCounter), SoleilError> {
    let mut b = BusinessView::new("adaptive");
    b.active_periodic("producer", "5ms")?;
    b.passive("primary")?;
    b.passive("backup")?;
    b.content("producer", "ProducerImpl")?;
    b.content("primary", "PrimaryImpl")?;
    b.content("backup", "BackupImpl")?;
    b.require("producer", "console", "IConsole")?;
    b.provide("primary", "console", "IConsole")?;
    b.provide("backup", "console", "IConsole")?;
    b.bind_sync("producer", "console", "primary", "console")?;

    let mut flow = DesignFlow::new(b);
    flow.thread_domain("rt", ThreadKind::Realtime, 25, &["producer"])?;
    flow.memory_area(
        "imm",
        MemoryKind::Immortal,
        Some(128 * 1024),
        &["rt", "primary", "backup"],
    )?;
    let arch = flow.merge()?;
    assert!(validate(&arch).is_compliant());

    let primary_count = std::rc::Rc::new(std::cell::Cell::new(0));
    let backup_count = std::rc::Rc::new(std::cell::Cell::new(0));
    let mut registry: ContentRegistry<Alert> = ContentRegistry::new();
    registry.register("ProducerImpl", || Box::new(Producer::default()));
    let p = primary_count.clone();
    registry.register("PrimaryImpl", move || {
        Box::new(NamedConsole {
            name: "primary",
            handled: p.clone(),
        })
    });
    let bk = backup_count.clone();
    registry.register("BackupImpl", move || {
        Box::new(NamedConsole {
            name: "backup",
            handled: bk.clone(),
        })
    });

    let sys = generate(&arch, mode, &registry)?;
    Ok((sys, primary_count, backup_count))
}

fn main() -> Result<(), SoleilError> {
    // --- SOLEIL: full membrane-level adaptation ------------------------
    println!("== SOLEIL mode ==");
    let (mut sys, primary, backup) = build(Mode::Soleil)?;
    let head = sys.slot_of("producer")?;
    for _ in 0..10 {
        sys.run_transaction(head)?;
    }
    println!(
        "  before reconfiguration: primary={}, backup={}",
        primary.get(),
        backup.get()
    );
    let info = sys.membrane_info("producer")?;
    println!(
        "  producer membrane: interceptors {:?}, bound ports {:?}",
        info.interceptors, info.bound_ports
    );

    println!("  ... stopping primary, rebinding producer.console -> backup ...");
    sys.stop("primary")?;
    sys.rebind("producer", "console", "backup")?;
    for _ in 0..10 {
        sys.run_transaction(head)?;
    }
    println!(
        "  after reconfiguration:  primary={}, backup={}",
        primary.get(),
        backup.get()
    );
    assert_eq!(primary.get(), 10);
    assert_eq!(backup.get(), 10);

    // Membrane-level reconfiguration: inject a jitter monitor into the
    // live producer membrane, observe, remove it again.
    sys.enable_jitter_monitoring("producer")?;
    for _ in 0..20 {
        sys.run_transaction(head)?;
    }
    let gaps = sys.jitter_observations("producer")?;
    println!(
        "  jitter monitor installed at runtime: {} gaps, mean {:.2} us",
        gaps.len(),
        gaps.iter().sum::<u64>() as f64 / gaps.len().max(1) as f64 / 1000.0
    );
    sys.disable_jitter_monitoring("producer")?;
    assert_eq!(backup.get(), 30);

    // --- MERGE-ALL: functional level only -------------------------------
    println!("\n== MERGE-ALL mode ==");
    let (mut sys, primary, backup) = build(Mode::MergeAll)?;
    let head = sys.slot_of("producer")?;
    for _ in 0..5 {
        sys.run_transaction(head)?;
    }
    match sys.membrane_info("producer") {
        Err(FrameworkError::Unsupported(msg)) => {
            println!("  membrane introspection refused: {msg}")
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
    sys.rebind("producer", "console", "backup")?;
    for _ in 0..5 {
        sys.run_transaction(head)?;
    }
    println!(
        "  functional rebinding still works: primary={}, backup={}",
        primary.get(),
        backup.get()
    );
    assert_eq!((primary.get(), backup.get()), (5, 5));

    // --- ULTRA-MERGE: purely static --------------------------------------
    println!("\n== ULTRA-MERGE mode ==");
    let (mut sys, primary, _backup) = build(Mode::UltraMerge)?;
    let head = sys.slot_of("producer")?;
    for _ in 0..5 {
        sys.run_transaction(head)?;
    }
    for (what, result) in [
        ("rebind", sys.rebind("producer", "console", "backup").err()),
        ("stop", sys.stop("primary").err()),
    ] {
        match result {
            Some(FrameworkError::Unsupported(msg)) => println!("  {what} refused: {msg}"),
            other => panic!("expected Unsupported for {what}, got {other:?}"),
        }
    }
    println!("  static system kept running: primary={}", primary.get());
    Ok(())
}
