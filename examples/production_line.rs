//! The paper's motivation scenario end-to-end (§2.2, Fig. 4, Fig. 7).
//!
//! Parses the Fig. 4 ADL, shows the design-time validation feedback
//! (including the cross-scope pattern selected for each binding), runs the
//! four implementations (hand-written OO + the three generation modes) and
//! prints a miniature Fig. 7 report.
//!
//! ```text
//! cargo run --release --example production_line
//! ```

use soleil::core::adl::MOTIVATION_EXAMPLE_XML;
use soleil::prelude::*;
use soleil::scenario::{motivation_architecture, registry_with_probe, OoSystem, ScenarioProbe};

fn main() -> Result<(), SoleilError> {
    // --- Design phase -------------------------------------------------
    println!(
        "=== Fig. 4 ADL ({} lines) ===",
        MOTIVATION_EXAMPLE_XML.lines().count()
    );
    let arch = motivation_architecture()?;
    println!(
        "parsed architecture '{}': {} components, {} bindings\n",
        arch.name,
        arch.components().len(),
        arch.bindings().len()
    );

    println!("=== design-time validation ===");
    // The consuming validator: compliance becomes a typed witness that the
    // deployment entry points below require.
    let arch = arch.into_validated()?;
    print!("{}", arch.report());
    println!();

    // --- Execution phase: four implementations ------------------------
    const WARMUP: usize = 500;
    const OBS: usize = 2_000;
    println!("=== {OBS} steady-state iterations per implementation ===");
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>10}",
        "impl", "median(us)", "jitter(us)", "consoles", "audits"
    );

    // OO baseline.
    let probe = ScenarioProbe::new();
    let mut oo = OoSystem::new(&probe)?;
    let samples = measure_steady(WARMUP, OBS, || oo.run_transaction())?;
    let s = samples.summary().expect("non-empty");
    println!(
        "{:<12} {:>12.2} {:>12.3} {:>10} {:>10}",
        "OO",
        s.median.as_micros_f64(),
        s.jitter.as_micros_f64(),
        probe.consoles(),
        probe.audits()
    );

    let mut footprints = vec![oo.footprint()];
    for mode in [Mode::Soleil, Mode::MergeAll, Mode::UltraMerge] {
        let probe = ScenarioProbe::new();
        let mut sys = deploy(&arch, mode, &registry_with_probe(&probe))?;
        // Resolve once; the steady-state loop below never touches names.
        let head = sys.resolve("ProductionLine")?;
        let samples = measure_steady(WARMUP, OBS, || sys.run_transaction(head))?;
        let s = samples.summary().expect("non-empty");
        println!(
            "{:<12} {:>12.2} {:>12.3} {:>10} {:>10}",
            mode.to_string(),
            s.median.as_micros_f64(),
            s.jitter.as_micros_f64(),
            probe.consoles(),
            probe.audits()
        );
        footprints.push(sys.footprint());

        // Membrane introspection is a SOLEIL-mode capability.
        if mode == Mode::Soleil {
            let monitoring = sys.resolve("MonitoringSystem")?;
            let info = sys.membrane_info(monitoring)?;
            println!(
                "             (membrane of MonitoringSystem: interceptors {:?}, ports {:?})",
                info.interceptors, info.bound_ports
            );
        }
    }

    // --- Footprint (Fig. 7(c) shape) ------------------------------------
    println!("\n=== memory footprint ===");
    let oo_fp = footprints[0].clone();
    for fp in &footprints {
        println!(
            "{:<12} app {:>6} B  framework {:>6} B  overhead vs OO {:>6} B",
            fp.label,
            fp.application_bytes(),
            fp.framework_bytes,
            fp.overhead_vs(&oo_fp)
        );
    }
    println!(
        "\n(for the full 10k-observation run: cargo run -p soleil-bench --release --bin reproduce)"
    );
    Ok(())
}
