//! A CDx-style collision detector — the classic hard-real-time Java
//! workload, expressed as a Soleil architecture.
//!
//! A radar sensor emits a frame of aircraft positions every 20 ms (NHRT,
//! immortal memory); the detector computes pairwise separations and, when
//! two aircraft violate the separation minimum, synchronously consults the
//! transponder cache (a passive service in scoped memory) and forwards an
//! alert to a regular-thread logger on the heap.
//!
//! The example runs the system both in wall-clock time and deployed onto
//! the virtual-time scheduler under an aggressive GC, demonstrating that
//! the NHRT stages keep their 20 ms frame deadline regardless of the
//! collector.
//!
//! ```text
//! cargo run --release --example collision_detector
//! ```

use rtsj::gc::GcConfig;
use rtsj::time::{AbsoluteTime, RelativeTime};
use soleil::generator::compile;
use soleil::prelude::*;
use soleil::runtime::sim::{deploy as sim_deploy, SimCosts, SimOptions};

const AIRCRAFT: usize = 12;
const SEPARATION_MIN: f64 = 5.0;

/// One radar frame: aircraft positions (plus alert bookkeeping).
#[derive(Debug, Clone, Default)]
struct Frame {
    positions: Vec<(f64, f64, f64)>,
    frame_no: u64,
    conflicts: u32,
    cache_hits: u32,
}

#[derive(Debug, Default)]
struct RadarSensor {
    frame_no: u64,
}

impl Content<Frame> for RadarSensor {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Frame,
        out: &mut dyn Ports<Frame>,
    ) -> InvokeResult {
        self.frame_no += 1;
        msg.frame_no = self.frame_no;
        msg.positions = (0..AIRCRAFT)
            .map(|i| {
                let t = self.frame_no as f64 * 0.05 + i as f64;
                // Two aircraft (0 and 1) on slowly converging tracks.
                let squeeze = if i < 2 {
                    (t * 0.11).sin().abs() * 8.0
                } else {
                    40.0 + i as f64 * 25.0
                };
                (
                    squeeze + t.cos(),
                    i as f64 * 3.0 + t.sin(),
                    10.0 + (i % 3) as f64,
                )
            })
            .collect();
        out.send("frames", msg.clone())
    }
}

#[derive(Debug, Default)]
struct Detector;

impl Content<Frame> for Detector {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Frame,
        out: &mut dyn Ports<Frame>,
    ) -> InvokeResult {
        let mut conflicts = 0u32;
        for i in 0..msg.positions.len() {
            for j in (i + 1)..msg.positions.len() {
                let (ax, ay, az) = msg.positions[i];
                let (bx, by, bz) = msg.positions[j];
                let d2 = (ax - bx).powi(2) + (ay - by).powi(2) + (az - bz).powi(2);
                if d2 < SEPARATION_MIN * SEPARATION_MIN {
                    conflicts += 1;
                }
            }
        }
        msg.conflicts = conflicts;
        if conflicts > 0 {
            // Synchronous lookup in the scoped transponder cache.
            out.call("cache", msg)?;
            out.send("alerts", msg.clone())?;
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct TransponderCache {
    lookups: u64,
}

impl Content<Frame> for TransponderCache {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Frame,
        _out: &mut dyn Ports<Frame>,
    ) -> InvokeResult {
        self.lookups += 1;
        msg.cache_hits = msg.conflicts; // every conflicting pair resolved
        Ok(())
    }
}

#[derive(Debug, Default)]
struct AlertLogger {
    alerts: u64,
}

impl Content<Frame> for AlertLogger {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Frame,
        _out: &mut dyn Ports<Frame>,
    ) -> InvokeResult {
        self.alerts += u64::from(msg.conflicts > 0);
        Ok(())
    }
}

fn architecture() -> Result<ValidatedArchitecture, SoleilError> {
    let mut b = BusinessView::new("collision-detector");
    b.active_periodic("RadarSensor", "20ms")?;
    b.active_sporadic("Detector")?;
    b.passive("TransponderCache")?;
    b.active_sporadic("AlertLogger")?;
    b.content("RadarSensor", "RadarSensorImpl")?;
    b.content("Detector", "DetectorImpl")?;
    b.content("TransponderCache", "TransponderCacheImpl")?;
    b.content("AlertLogger", "AlertLoggerImpl")?;

    b.require("RadarSensor", "frames", "IFrame")?;
    b.provide("Detector", "frames", "IFrame")?;
    b.require("Detector", "cache", "ICache")?;
    b.provide("TransponderCache", "cache", "ICache")?;
    b.require("Detector", "alerts", "IAlert")?;
    b.provide("AlertLogger", "alerts", "IAlert")?;

    b.bind_async("RadarSensor", "frames", "Detector", "frames", 4)?;
    b.bind_sync("Detector", "cache", "TransponderCache", "cache")?;
    b.bind_async("Detector", "alerts", "AlertLogger", "alerts", 8)?;

    let mut flow = DesignFlow::new(b);
    flow.thread_domain(
        "radar-nhrt",
        ThreadKind::NoHeapRealtime,
        35,
        &["RadarSensor"],
    )?;
    flow.thread_domain("detect-nhrt", ThreadKind::NoHeapRealtime, 32, &["Detector"])?;
    flow.thread_domain("log-reg", ThreadKind::Regular, 5, &["AlertLogger"])?;
    flow.memory_area(
        "imm",
        MemoryKind::Immortal,
        Some(512 * 1024),
        &["radar-nhrt", "detect-nhrt"],
    )?;
    flow.memory_area(
        "cache-scope",
        MemoryKind::Scoped,
        Some(64 * 1024),
        &["TransponderCache"],
    )?;
    flow.memory_area("heap", MemoryKind::Heap, None, &["log-reg"])?;
    Ok(flow.merge()?.into_validated()?)
}

fn main() -> Result<(), SoleilError> {
    let arch = architecture()?;
    println!("architecture validates; cross-scope patterns:");
    for d in arch.report().by_code("SOL-007") {
        println!("  {d}");
    }

    // --- Wall-clock run ---------------------------------------------------
    let mut registry: ContentRegistry<Frame> = ContentRegistry::new();
    registry.register("RadarSensorImpl", || Box::new(RadarSensor::default()));
    registry.register("DetectorImpl", || Box::new(Detector));
    registry.register("TransponderCacheImpl", || {
        Box::new(TransponderCache::default())
    });
    registry.register("AlertLoggerImpl", || Box::new(AlertLogger::default()));

    let mut sys = deploy(&arch, Mode::MergeAll, &registry)?;
    let head = sys.resolve("RadarSensor")?;
    let frames = 5_000;
    let samples = measure_steady(200, frames, || sys.run_transaction(head))?;
    let s = samples.summary().expect("non-empty");
    println!(
        "\nprocessed {frames} frames of {AIRCRAFT} aircraft: median {:.2} us, worst {:.2} us",
        s.median.as_micros_f64(),
        s.max.as_micros_f64()
    );
    let stats = sys.stats();
    println!(
        "  activations {} | async msgs {} | sync cache lookups {}",
        stats.activations, stats.async_messages, stats.sync_calls
    );

    // --- Virtual-time schedulability under GC ------------------------------
    println!("\nvirtual-time deployment under an aggressive collector:");
    let spec = compile(&arch)?;
    let costs = SimCosts::uniform(RelativeTime::from_micros(100))
        .with("RadarSensor", RelativeTime::from_micros(120))
        .with("Detector", RelativeTime::from_micros(900))
        .with("AlertLogger", RelativeTime::from_micros(80));
    let gc = GcConfig::periodic(RelativeTime::from_millis(60), RelativeTime::from_millis(15));
    let mut d = sim_deploy(
        &spec,
        &costs,
        &SimOptions {
            force_thread_kind: None,
            gc: Some(gc),
        },
    );
    d.simulator.run_until(AbsoluteTime::from_millis(2_000));
    for stage in ["RadarSensor", "Detector", "AlertLogger"] {
        let t = d.tasks[stage];
        let st = d.simulator.stats(t)?;
        let sum = st.response_summary().expect("ran");
        println!(
            "  {:<14} completions {:>4}  worst response {:>9}  deadline misses {}",
            stage, st.completions, sum.max, st.deadline_misses
        );
    }
    let radar = d.simulator.stats(d.tasks["RadarSensor"])?;
    assert_eq!(
        radar.deadline_misses, 0,
        "NHRT radar never misses its frame"
    );
    println!("\nNHRT stages met every 20 ms frame despite 15 ms GC pauses.");
    Ok(())
}
