//! A CDx-style collision detector — the classic hard-real-time Java
//! workload, expressed as a Soleil architecture.
//!
//! A radar sensor emits a frame of aircraft positions every 20 ms (NHRT,
//! immortal memory); the detector computes pairwise separations and, when
//! two aircraft violate the separation minimum, synchronously consults the
//! transponder cache (a passive service in scoped memory) and forwards an
//! alert to a regular-thread logger on the heap.
//!
//! The example runs the system both in wall-clock time and deployed onto
//! the virtual-time scheduler under an aggressive GC, demonstrating that
//! the NHRT stages keep their 20 ms frame deadline regardless of the
//! collector. The wall-clock run also carries a declarative **deadline
//! contract** on the radar head: its zero-allocation histogram shows the
//! frame latency profile, stays compliant while the collector is idle,
//! and flags SOL-016 the moment simulated stop-the-world pauses hit the
//! heap-side logger — end-to-end online miss detection.
//!
//! A third act demonstrates **fault containment**: a deterministic
//! injector panics the detector mid-run; the panic is caught at the
//! activation boundary, the detector is quarantined under a
//! supervised-restart policy (frames counted-dropped, radar cadence and
//! deadline contract unaffected), and the 40 ms backoff timer restarts
//! it with a fresh content instance — SOL-020 tracks the incident.
//!
//! ```text
//! cargo run --release --example collision_detector
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rtsj::gc::GcConfig;
use rtsj::time::{AbsoluteTime, RelativeTime};
use soleil::generator::compile;
use soleil::prelude::*;
use soleil::runtime::sim::{deploy as sim_deploy, SimCosts, SimOptions};

const AIRCRAFT: usize = 12;
const SEPARATION_MIN: f64 = 5.0;

/// One radar frame: aircraft positions (plus alert bookkeeping).
#[derive(Debug, Clone, Default)]
struct Frame {
    positions: Vec<(f64, f64, f64)>,
    frame_no: u64,
    conflicts: u32,
    cache_hits: u32,
}

#[derive(Debug, Default)]
struct RadarSensor {
    frame_no: u64,
}

impl Content<Frame> for RadarSensor {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Frame,
        out: &mut dyn Ports<Frame>,
    ) -> InvokeResult {
        self.frame_no += 1;
        msg.frame_no = self.frame_no;
        msg.positions = (0..AIRCRAFT)
            .map(|i| {
                let t = self.frame_no as f64 * 0.05 + i as f64;
                // Two aircraft (0 and 1) on slowly converging tracks.
                let squeeze = if i < 2 {
                    (t * 0.11).sin().abs() * 8.0
                } else {
                    40.0 + i as f64 * 25.0
                };
                (
                    squeeze + t.cos(),
                    i as f64 * 3.0 + t.sin(),
                    10.0 + (i % 3) as f64,
                )
            })
            .collect();
        out.send("frames", msg.clone())
    }
}

#[derive(Debug, Default)]
struct Detector;

impl Content<Frame> for Detector {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Frame,
        out: &mut dyn Ports<Frame>,
    ) -> InvokeResult {
        let mut conflicts = 0u32;
        for i in 0..msg.positions.len() {
            for j in (i + 1)..msg.positions.len() {
                let (ax, ay, az) = msg.positions[i];
                let (bx, by, bz) = msg.positions[j];
                let d2 = (ax - bx).powi(2) + (ay - by).powi(2) + (az - bz).powi(2);
                if d2 < SEPARATION_MIN * SEPARATION_MIN {
                    conflicts += 1;
                }
            }
        }
        msg.conflicts = conflicts;
        if conflicts > 0 {
            // Synchronous lookup in the scoped transponder cache.
            out.call("cache", msg)?;
            out.send("alerts", msg.clone())?;
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct TransponderCache {
    lookups: u64,
}

impl Content<Frame> for TransponderCache {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Frame,
        _out: &mut dyn Ports<Frame>,
    ) -> InvokeResult {
        self.lookups += 1;
        msg.cache_hits = msg.conflicts; // every conflicting pair resolved
        Ok(())
    }
}

#[derive(Debug, Default)]
struct AlertLogger {
    alerts: u64,
    /// Simulated stop-the-world pause charged to the heap-side logger,
    /// in nanoseconds (0 = collector idle).
    gc_pause_ns: Arc<AtomicU64>,
}

impl Content<Frame> for AlertLogger {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Frame,
        _out: &mut dyn Ports<Frame>,
    ) -> InvokeResult {
        let pause = self.gc_pause_ns.load(Ordering::Relaxed);
        if pause > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(pause));
        }
        self.alerts += u64::from(msg.conflicts > 0);
        Ok(())
    }
}

fn architecture() -> Result<ValidatedArchitecture, SoleilError> {
    let mut b = BusinessView::new("collision-detector");
    b.active_periodic("RadarSensor", "20ms")?;
    b.active_sporadic("Detector")?;
    b.passive("TransponderCache")?;
    b.active_sporadic("AlertLogger")?;
    b.content("RadarSensor", "RadarSensorImpl")?;
    b.content("Detector", "DetectorImpl")?;
    b.content("TransponderCache", "TransponderCacheImpl")?;
    b.content("AlertLogger", "AlertLoggerImpl")?;

    b.require("RadarSensor", "frames", "IFrame")?;
    b.provide("Detector", "frames", "IFrame")?;
    b.require("Detector", "cache", "ICache")?;
    b.provide("TransponderCache", "cache", "ICache")?;
    b.require("Detector", "alerts", "IAlert")?;
    b.provide("AlertLogger", "alerts", "IAlert")?;

    b.bind_async("RadarSensor", "frames", "Detector", "frames", 4)?;
    b.bind_sync("Detector", "cache", "TransponderCache", "cache")?;
    b.bind_async("Detector", "alerts", "AlertLogger", "alerts", 8)?;

    let mut flow = DesignFlow::new(b);
    flow.thread_domain(
        "radar-nhrt",
        ThreadKind::NoHeapRealtime,
        35,
        &["RadarSensor"],
    )?;
    flow.thread_domain("detect-nhrt", ThreadKind::NoHeapRealtime, 32, &["Detector"])?;
    flow.thread_domain("log-reg", ThreadKind::Regular, 5, &["AlertLogger"])?;
    flow.memory_area(
        "imm",
        MemoryKind::Immortal,
        Some(512 * 1024),
        &["radar-nhrt", "detect-nhrt"],
    )?;
    flow.memory_area(
        "cache-scope",
        MemoryKind::Scoped,
        Some(64 * 1024),
        &["TransponderCache"],
    )?;
    flow.memory_area("heap", MemoryKind::Heap, None, &["log-reg"])?;
    Ok(flow.merge()?.into_validated()?)
}

fn main() -> Result<(), SoleilError> {
    let arch = architecture()?;
    println!("architecture validates; cross-scope patterns:");
    for d in arch.report().by_code("SOL-007") {
        println!("  {d}");
    }

    // --- Wall-clock run ---------------------------------------------------
    let mut registry: ContentRegistry<Frame> = ContentRegistry::new();
    registry.register("RadarSensorImpl", || Box::new(RadarSensor::default()));
    registry.register("DetectorImpl", || Box::new(Detector));
    registry.register("TransponderCacheImpl", || {
        Box::new(TransponderCache::default())
    });
    let gc_pause = Arc::new(AtomicU64::new(0));
    let logger_pause = gc_pause.clone();
    registry.register("AlertLoggerImpl", move || {
        Box::new(AlertLogger {
            alerts: 0,
            gc_pause_ns: logger_pause.clone(),
        })
    });

    let mut sys = deploy(&arch, Mode::MergeAll, &registry)?;
    let head = sys.resolve("RadarSensor")?;
    // Declarative runtime contract: every radar frame must complete its
    // end-to-end transaction within 10 ms, recorded into a preallocated
    // histogram (zero allocations on the monitored hot path).
    sys.attach_contract(
        head,
        TimingContract::new().with_deadline(RelativeTime::from_millis(10)),
    )?;
    let frames = 5_000;
    let samples = measure_steady(200, frames, || sys.run_transaction(head))?;
    let s = samples.summary().expect("non-empty");
    println!(
        "\nprocessed {frames} frames of {AIRCRAFT} aircraft: median {:.2} us, worst {:.2} us",
        s.median.as_micros_f64(),
        s.max.as_micros_f64()
    );
    let stats = sys.stats();
    println!(
        "  activations {} | async msgs {} | sync cache lookups {}",
        stats.activations, stats.async_messages, stats.sync_calls
    );

    // --- Deadline contract: met while the collector is idle ----------------
    let snap = sys.latency_snapshot(head)?.expect("contract attached");
    println!(
        "\n10 ms frame contract while the collector is idle: \
         {} frames, p50 {} ns, p99 {} ns, misses {}",
        snap.activations, snap.p50_ns, snap.p99_ns, snap.deadline_misses
    );
    assert_eq!(sys.deadline_misses(), 0, "idle-collector frames all meet");
    assert!(sys.contract_report().is_empty());

    // One on-demand extra radar frame through the release engine: armed on
    // the preallocated timer queue, fired when the engine clock passes it.
    let before = sys.stats().transactions;
    sys.schedule_release(
        head,
        sys.timer_clock()
            .saturating_add(RelativeTime::from_millis(1)),
    )?;
    let fired = sys.fire_timers_until(
        sys.timer_clock()
            .saturating_add(RelativeTime::from_millis(5)),
    )?;
    assert_eq!(fired, 1);
    assert_eq!(sys.stats().transactions, before + 1);
    println!("release engine fired {fired} scheduled radar frame on time");

    // --- Deadline contract: violated once GC pauses hit the logger ---------
    // Simulate 12 ms stop-the-world pauses on the heap-side AlertLogger:
    // the first frame whose alert path eats a pause blows the 10 ms
    // contract, and the monitor flags it online.
    gc_pause.store(12_000_000, Ordering::Relaxed);
    let mut paused_frames = 0u32;
    while sys.deadline_misses() == 0 && paused_frames < 600 {
        sys.run_transaction(head)?;
        paused_frames += 1;
    }
    gc_pause.store(0, Ordering::Relaxed);
    assert!(
        sys.deadline_misses() > 0,
        "a GC-paused alert path must blow the frame contract"
    );
    println!(
        "\nwith 12 ms GC pauses on the heap-side logger: {} miss(es) after \
         {paused_frames} frames; online verdict:",
        sys.deadline_misses()
    );
    for d in sys.contract_report().by_code("SOL-016") {
        println!("  {d}");
    }

    // --- Fault containment: a panicking detector mid-run --------------------
    // The detector is put under a supervised-restart policy, then a
    // deterministic injector panics its next activation. The panic is
    // caught at the activation boundary: the detector is quarantined, its
    // frames are counted-dropped (never silently lost), the radar keeps
    // its 20 ms cadence — and the deadline contract keeps reporting the
    // whole time. After the 40 ms backoff the supervisor restarts the
    // detector through the timer queue with a fresh content instance.
    let detector = sys.resolve("Detector")?;
    sys.set_fault_policy(
        detector,
        FaultPolicy::Restart {
            max_restarts: 3,
            window: RelativeTime::from_millis(60_000),
            backoff: RelativeTime::from_millis(40),
        },
    )?;
    let monitored_before = sys.latency_snapshot(head)?.expect("attached").activations;
    sys.install_fault_injector(
        detector,
        FaultInjector::new("Detector", 0xCD, 1).with_menu(FaultInjector::MENU_PANIC),
    )?;
    // The engine catches the panic; keep the default hook from splattering
    // a backtrace over the demo output while it unwinds.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let contained = sys.run_transaction(head); // the panic frame: caught
    std::panic::set_hook(hook);
    contained?;
    sys.remove_fault_injector(detector)?;
    assert!(sys.quarantined(detector)?, "panic quarantines the detector");
    println!("\ninjected panic in the detector: contained at the activation boundary");
    for d in sys.health_report().by_code("SOL-020") {
        println!("  {d}");
    }

    // Quarantined frames: the radar keeps flying, the drops are counted.
    let drops_before = sys.stats().quarantine_drops;
    for _ in 0..10 {
        sys.run_transaction(head)?;
    }
    let stats = sys.stats();
    println!(
        "  10 frames while quarantined: {} frames counted-dropped at the gate, \
         ledger intact ({} pushed == {} delivered + {} dropped)",
        stats.quarantine_drops - drops_before,
        stats.async_messages,
        stats.delivered_messages,
        stats.dropped_messages
    );
    assert_eq!(
        stats.async_messages,
        stats.delivered_messages + stats.dropped_messages,
        "no frame is ever silently lost"
    );

    // The supervisor's backoff timer restarts the detector.
    sys.fire_timers_until(
        sys.timer_clock()
            .saturating_add(RelativeTime::from_millis(50)),
    )?;
    assert!(
        !sys.quarantined(detector)?,
        "backoff restart rearms the detector"
    );
    let (faults, restarts, _suppressed) = sys.supervision_counts(detector)?;
    println!(
        "  supervised restart after 40 ms backoff: {faults} fault contained, \
         {restarts} restart with a fresh detector instance"
    );
    sys.run_transaction(head)?; // frames flow end-to-end again
    assert!(sys.health_report().by_code("SOL-020").next().is_none());

    // The contract never stopped watching: every healthy frame of the
    // incident — quarantine and recovery — landed in the histogram (the
    // faulted frame itself records no latency sample).
    let snap = sys.latency_snapshot(head)?.expect("contract attached");
    println!(
        "  deadline contract reported throughout: {} frames monitored during the incident",
        snap.activations - monitored_before
    );
    assert_eq!(snap.activations - monitored_before, 11);

    // --- Virtual-time schedulability under GC ------------------------------
    println!("\nvirtual-time deployment under an aggressive collector:");
    let spec = compile(&arch)?;
    let costs = SimCosts::uniform(RelativeTime::from_micros(100))
        .with("RadarSensor", RelativeTime::from_micros(120))
        .with("Detector", RelativeTime::from_micros(900))
        .with("AlertLogger", RelativeTime::from_micros(80));
    let gc = GcConfig::periodic(RelativeTime::from_millis(60), RelativeTime::from_millis(15));
    let mut d = sim_deploy(
        &spec,
        &costs,
        &SimOptions {
            force_thread_kind: None,
            gc: Some(gc),
        },
    );
    d.simulator.run_until(AbsoluteTime::from_millis(2_000));
    for stage in ["RadarSensor", "Detector", "AlertLogger"] {
        let t = d.tasks[stage];
        let st = d.simulator.stats(t)?;
        let sum = st.response_summary().expect("ran");
        println!(
            "  {:<14} completions {:>4}  worst response {:>9}  deadline misses {}",
            stage, st.completions, sum.max, st.deadline_misses
        );
    }
    let radar = d.simulator.stats(d.tasks["RadarSensor"])?;
    assert_eq!(
        radar.deadline_misses, 0,
        "NHRT radar never misses its frame"
    );
    println!("\nNHRT stages met every 20 ms frame despite 15 ms GC pauses.");
    Ok(())
}
