//! The paper's motivation scenario, ready to run: content classes, a
//! content registry, the Fig. 4 architecture, and the hand-written **OO
//! baseline** the evaluation compares against.
//!
//! The scenario (§2.2): a `ProductionLine` periodically (10 ms) emits a
//! measurement to a sporadic `MonitoringSystem` through an asynchronous
//! 10-slot buffer; anomalous measurements trigger a synchronous
//! notification of the passive `Console` (allocated in a 28 KB scoped
//! memory); every measurement is forwarded asynchronously to the `AuditLog`
//! (a regular thread on the heap).
//!
//! All four implementations — OO, SOLEIL, MERGE-ALL, ULTRA-MERGE — execute
//! the *same* functional code ([`busy_work`] keeps per-station cost
//! realistic and identical), so the measured differences are pure framework
//! overhead, exactly as in Fig. 7.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rtsj::memory::{AreaId, MemoryContext, MemoryManager, ScopedMemoryParams};
use rtsj::thread::ThreadKind;

use crate::core::adl::{from_xml, MOTIVATION_EXAMPLE_XML};
use crate::core::Architecture;
use crate::membrane::content::{
    Content, ContentRegistry, InternedPort, InvokeResult, Ports, StateImage,
};
use crate::patterns::ScopePin;
use crate::runtime::footprint::FootprintReport;

/// The message flowing through the pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Measurement {
    /// Monotone sequence number stamped by the production line.
    pub seq: u64,
    /// Measured value.
    pub value: f64,
    /// True when the monitoring system must notify the console.
    pub anomalous: bool,
}

/// Deterministic floating-point busy work standing in for the functional
/// computation of each station; returns a value that must be consumed to
/// keep the optimizer honest.
#[inline]
pub fn busy_work(iters: u32, seed: f64) -> f64 {
    let mut acc = seed + 1.0;
    for i in 0..iters {
        acc = acc * 1.000000119 + (i & 0xF) as f64 * 0.25;
        if acc > 1.0e6 {
            acc *= 0.5e-6;
        }
    }
    std::hint::black_box(acc)
}

/// Work units per station, calibrated so one complete iteration costs a few
/// microseconds — large enough for stable measurement, small enough that
/// framework overhead stays visible.
pub mod work {
    /// Production-line cost (measurement synthesis).
    pub const PRODUCTION: u32 = 600;
    /// Monitoring cost (evaluation).
    pub const MONITORING: u32 = 1200;
    /// Console cost (notification rendering).
    pub const CONSOLE: u32 = 300;
    /// Audit cost (log append).
    pub const AUDIT: u32 = 600;
    /// A measurement is anomalous every `ANOMALY_EVERY` iterations.
    pub const ANOMALY_EVERY: u64 = 10;
}

/// Shared observation counters, cloneable into content factories so tests
/// can assert functional equivalence across implementations.
///
/// Counters are atomics behind `Arc` (not `Rc<Cell<_>>`): content classes
/// must be `Send` so a deployment can be sharded across thread-domain
/// engines running on distinct OS threads, and the probe travels with
/// them. The `f64` fingerprint is stored as IEEE-754 bits in an
/// [`AtomicU64`] and accumulated with a CAS loop.
#[derive(Debug, Clone, Default)]
pub struct ScenarioProbe {
    consoles: Arc<AtomicU64>,
    audits: Arc<AtomicU64>,
    value_bits: Arc<AtomicU64>,
    max_seq: Arc<AtomicU64>,
    seq_regressions: Arc<AtomicU64>,
}

impl ScenarioProbe {
    /// Fresh zeroed probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Console notifications observed.
    pub fn consoles(&self) -> u64 {
        self.consoles.load(Ordering::Relaxed)
    }

    /// Audit records observed.
    pub fn audits(&self) -> u64 {
        self.audits.load(Ordering::Relaxed)
    }

    /// Sum of audited values (functional-result fingerprint).
    pub fn value_sum(&self) -> f64 {
        f64::from_bits(self.value_bits.load(Ordering::Relaxed))
    }

    /// Records one console notification.
    pub fn record_console(&self) {
        self.consoles.fetch_add(1, Ordering::Relaxed);
    }

    /// Highest measurement sequence number audited so far.
    pub fn max_seq(&self) -> u64 {
        self.max_seq.load(Ordering::Relaxed)
    }

    /// Times an audited sequence number regressed below the running
    /// maximum — the cold-restart witness: `ProductionLineImpl` numbers
    /// its measurements monotonically, so a restart that loses its warm
    /// `seq` state re-emits low sequence numbers and trips this counter,
    /// while a checkpointed restart continues the series and never does.
    pub fn seq_regressions(&self) -> u64 {
        self.seq_regressions.load(Ordering::Relaxed)
    }

    /// Records the sequence number of an audited measurement.
    pub fn record_seq(&self, seq: u64) {
        let prev = self.max_seq.fetch_max(seq, Ordering::Relaxed);
        if seq <= prev {
            self.seq_regressions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one audit of value `v`.
    pub fn record_audit(&self, v: f64) {
        self.audits.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.value_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.value_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Content classes (the hand-written functional code)
// ---------------------------------------------------------------------------

/// `ProductionLineImpl`: stamps and emits one measurement per release.
///
/// Its client port is an [`InternedPort`]: the first send pays one name
/// scan to obtain the deployment's dense port id, every later send
/// dispatches through the compiled jump table with zero string compares.
#[derive(Debug)]
pub struct ProductionLineImpl {
    seq: u64,
    monitor: InternedPort,
}

impl Default for ProductionLineImpl {
    fn default() -> Self {
        ProductionLineImpl {
            seq: 0,
            monitor: InternedPort::new("iMonitor"),
        }
    }
}

impl Content<Measurement> for ProductionLineImpl {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Measurement,
        out: &mut dyn Ports<Measurement>,
    ) -> InvokeResult {
        self.seq += 1;
        msg.seq = self.seq;
        msg.value = busy_work(work::PRODUCTION, self.seq as f64);
        msg.anomalous = self.seq.is_multiple_of(work::ANOMALY_EVERY);
        self.monitor.send(out, *msg)
    }

    // The sequence counter is the line's warm state: with the Checkpoint
    // capability enabled, a supervised restart resumes the measurement
    // series instead of re-numbering from 1 (the interned port re-interns
    // lazily and carries no state worth preserving).
    fn state_bytes(&self) -> usize {
        64
    }

    fn checkpoint(&self, image: &mut StateImage) -> bool {
        image.write_u64(self.seq)
    }

    fn restore(&mut self, image: &StateImage) {
        if let Some(seq) = image.read_u64(0) {
            self.seq = seq;
        }
    }
}

/// `MonitoringSystemImpl`: evaluates measurements, notifies the console on
/// anomalies, forwards everything to the audit log — both through
/// interned ports (see [`ProductionLineImpl`]).
#[derive(Debug)]
pub struct MonitoringSystemImpl {
    console: InternedPort,
    audit: InternedPort,
}

impl Default for MonitoringSystemImpl {
    fn default() -> Self {
        MonitoringSystemImpl {
            console: InternedPort::new("iConsole"),
            audit: InternedPort::new("iAudit"),
        }
    }
}

impl Content<Measurement> for MonitoringSystemImpl {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Measurement,
        out: &mut dyn Ports<Measurement>,
    ) -> InvokeResult {
        msg.value = busy_work(work::MONITORING, msg.value);
        if msg.anomalous {
            self.console.call(out, msg)?;
        }
        self.audit.send(out, *msg)
    }
}

/// `ConsoleImpl`: renders an anomaly notification (scoped-memory service).
#[derive(Debug, Default)]
pub struct ConsoleImpl {
    probe: ScenarioProbe,
}

impl Content<Measurement> for ConsoleImpl {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Measurement,
        _out: &mut dyn Ports<Measurement>,
    ) -> InvokeResult {
        msg.value = busy_work(work::CONSOLE, msg.value);
        self.probe.record_console();
        Ok(())
    }
}

/// `AuditLogImpl`: appends every measurement to the audit trail.
#[derive(Debug, Default)]
pub struct AuditLogImpl {
    probe: ScenarioProbe,
}

impl Content<Measurement> for AuditLogImpl {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Measurement,
        _out: &mut dyn Ports<Measurement>,
    ) -> InvokeResult {
        let v = busy_work(work::AUDIT, msg.value);
        self.probe.record_audit(v);
        self.probe.record_seq(msg.seq);
        Ok(())
    }
}

/// Registry wiring the content classes under the names the Fig. 4 ADL uses.
pub fn registry() -> ContentRegistry<Measurement> {
    registry_with_probe(&ScenarioProbe::new())
}

/// Registry whose Console/AuditLog report into `probe`.
pub fn registry_with_probe(probe: &ScenarioProbe) -> ContentRegistry<Measurement> {
    let mut r = ContentRegistry::new();
    r.register("ProductionLineImpl", || {
        Box::new(ProductionLineImpl::default())
    });
    r.register("MonitoringSystemImpl", || {
        Box::new(MonitoringSystemImpl::default())
    });
    let p = probe.clone();
    r.register("ConsoleImpl", move || {
        Box::new(ConsoleImpl { probe: p.clone() })
    });
    let p = probe.clone();
    r.register("AuditLogImpl", move || {
        Box::new(AuditLogImpl { probe: p.clone() })
    });
    r
}

/// The Fig. 4 RT System Architecture, parsed from its canonical ADL text.
///
/// # Errors
///
/// Propagates ADL parse errors (none for the embedded fixture).
pub fn motivation_architecture() -> crate::core::Result<Architecture> {
    from_xml(MOTIVATION_EXAMPLE_XML)
}

/// The Fig. 4 architecture, already validated: the witness the deployment
/// entry points (`deploy`/`generate`/`compile`) take.
///
/// # Errors
///
/// Propagates parse errors; the embedded fixture always validates.
pub fn motivation_validated() -> crate::SoleilResult<crate::core::ValidatedArchitecture> {
    Ok(motivation_architecture()?.into_validated()?)
}

// ---------------------------------------------------------------------------
// The hand-written OO baseline
// ---------------------------------------------------------------------------

/// The manually written object-oriented implementation of the scenario —
/// the paper's `OO` baseline. It runs against the same RTSJ substrate
/// (scoped console memory entered and exited by hand, NHRT contexts, the
/// same busy work) but with direct field access, hand-rolled queues and no
/// framework machinery at all.
#[derive(Debug)]
pub struct OoSystem {
    mm: MemoryManager,
    s1: AreaId,
    _s1_pin: ScopePin,
    ctx_monitor: MemoryContext,
    buf_monitor: VecDeque<Measurement>,
    buf_audit: VecDeque<Measurement>,
    seq: u64,
    probe: ScenarioProbe,
    transactions: u64,
}

impl OoSystem {
    /// Builds the baseline with the Fig. 4 memory layout (600 KB immortal,
    /// 28 KB console scope, heap audit path).
    ///
    /// # Errors
    ///
    /// Substrate errors creating or pinning the console scope.
    pub fn new(probe: &ScenarioProbe) -> rtsj::Result<OoSystem> {
        let mut mm = MemoryManager::new(0, 600 * 1024 + 256 * 1024);
        let s1 = mm.create_scoped(ScopedMemoryParams::new("S1", 28 * 1024))?;
        let pin = ScopePin::new(&mut mm, s1, &[])?;
        // Charge comparable state + buffer storage so the Fig. 7(c)
        // comparison against the framework modes is apples-to-apples.
        let boot = mm.context(ThreadKind::Realtime);
        mm.alloc_raw(&boot, AreaId::IMMORTAL, 64)?; // production state
        mm.alloc_raw(&boot, AreaId::IMMORTAL, 64)?; // monitoring state
        mm.alloc_raw(&boot, s1, 64)?; // console state
        let heap = mm.context(ThreadKind::Regular);
        mm.alloc_raw(&heap, AreaId::HEAP, 64)?; // audit state
        mm.alloc_raw(
            &boot,
            AreaId::IMMORTAL,
            10 * std::mem::size_of::<Measurement>(),
        )?;
        mm.alloc_raw(
            &boot,
            AreaId::IMMORTAL,
            10 * std::mem::size_of::<Measurement>(),
        )?;
        let ctx_monitor = mm.context(ThreadKind::NoHeapRealtime);
        Ok(OoSystem {
            mm,
            s1,
            _s1_pin: pin,
            ctx_monitor,
            buf_monitor: VecDeque::with_capacity(10),
            buf_audit: VecDeque::with_capacity(10),
            seq: 0,
            probe: probe.clone(),
            transactions: 0,
        })
    }

    /// One complete iteration: production → monitoring → (console) → audit.
    ///
    /// # Errors
    ///
    /// Substrate errors on the console scope boundary.
    pub fn run_transaction(&mut self) -> rtsj::Result<()> {
        // ProductionLine (NHRT, immortal): produce and enqueue.
        self.seq += 1;
        let m = Measurement {
            seq: self.seq,
            value: busy_work(work::PRODUCTION, self.seq as f64),
            anomalous: self.seq.is_multiple_of(work::ANOMALY_EVERY),
        };
        if self.buf_monitor.len() < 10 {
            self.buf_monitor.push_back(m);
        }

        // MonitoringSystem (NHRT): evaluate; console on anomaly.
        if let Some(mut m) = self.buf_monitor.pop_front() {
            m.value = busy_work(work::MONITORING, m.value);
            if m.anomalous {
                // Hand-written cross-scope call: enter S1, notify, exit.
                self.mm.enter(&mut self.ctx_monitor, self.s1)?;
                m.value = busy_work(work::CONSOLE, m.value);
                self.probe.record_console();
                self.mm.exit(&mut self.ctx_monitor)?;
            }
            if self.buf_audit.len() < 10 {
                self.buf_audit.push_back(m);
            }
        }

        // AuditLog (regular thread, heap).
        if let Some(m) = self.buf_audit.pop_front() {
            let v = busy_work(work::AUDIT, m.value);
            self.probe.record_audit(v);
        }
        self.transactions += 1;
        Ok(())
    }

    /// Transactions completed.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Substrate allocations performed so far (see
    /// [`MemoryManager::alloc_count`]); constant across steady-state
    /// transactions — the baseline obeys the same init-time-allocation
    /// discipline the framework modes are gated on.
    pub fn alloc_count(&self) -> u64 {
        self.mm.alloc_count()
    }

    /// The probe observing console/audit activity.
    pub fn probe(&self) -> &ScenarioProbe {
        &self.probe
    }

    /// Footprint of the baseline (framework bytes are zero by definition).
    pub fn footprint(&self) -> FootprintReport {
        FootprintReport::collect(
            "OO".to_string(),
            &self.mm,
            vec![
                ("Imm1".to_string(), AreaId::IMMORTAL),
                ("S1".to_string(), self.s1),
                ("H1".to_string(), AreaId::HEAP),
            ],
            0,
            0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::deploy;
    use crate::runtime::Mode;

    #[test]
    fn oo_baseline_runs_the_scenario() {
        let probe = ScenarioProbe::new();
        let mut oo = OoSystem::new(&probe).unwrap();
        for _ in 0..50 {
            oo.run_transaction().unwrap();
        }
        assert_eq!(oo.transactions(), 50);
        assert_eq!(probe.audits(), 50);
        assert_eq!(probe.consoles(), 5, "every 10th is anomalous");
    }

    #[test]
    fn framework_modes_match_oo_functionally() {
        let n = 40;
        let oo_probe = ScenarioProbe::new();
        let mut oo = OoSystem::new(&oo_probe).unwrap();
        for _ in 0..n {
            oo.run_transaction().unwrap();
        }

        let arch = motivation_validated().unwrap();
        for mode in [Mode::Soleil, Mode::MergeAll, Mode::UltraMerge] {
            let probe = ScenarioProbe::new();
            let mut sys = deploy(&arch, mode, &registry_with_probe(&probe)).unwrap();
            let head = sys.resolve("ProductionLine").unwrap();
            for _ in 0..n {
                sys.run_transaction(head).unwrap();
            }
            assert_eq!(probe.audits(), oo_probe.audits(), "{mode}");
            assert_eq!(probe.consoles(), oo_probe.consoles(), "{mode}");
            let diff = (probe.value_sum() - oo_probe.value_sum()).abs();
            assert!(
                diff < 1e-9,
                "value fingerprint diverged under {mode}: {diff}"
            );
        }
    }

    #[test]
    fn busy_work_is_deterministic_and_nonzero() {
        let a = busy_work(1000, 1.0);
        let b = busy_work(1000, 1.0);
        assert_eq!(a, b);
        assert!(a != 0.0);
    }

    #[test]
    fn oo_scope_traffic_balances() {
        let probe = ScenarioProbe::new();
        let mut oo = OoSystem::new(&probe).unwrap();
        for _ in 0..20 {
            oo.run_transaction().unwrap();
        }
        // The console scope stays pinned: state persists, no reclaims.
        let stats = oo.footprint();
        let s1 = stats.areas.iter().find(|a| a.name == "S1").unwrap();
        assert!(s1.consumed > 0);
    }
}
