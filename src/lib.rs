//! # soleil — a component framework for RTSJ-style real-time embedded systems
//!
//! A Rust reproduction of *"A Component Framework for Java-based Real-Time
//! Embedded Systems"* (Plšek, Loiret, Merle, Seinturier — ACM/IFIP/USENIX
//! Middleware 2008). The framework lets you:
//!
//! 1. **Design** — describe the functional architecture in a *business
//!    view*, then superimpose real-time concerns through *thread* and
//!    *memory management views* ([`core::views`]), or load the paper's XML
//!    ADL ([`core::adl`]);
//! 2. **Validate** — check RTSJ conformance at design time
//!    ([`mod@core::validate`]): single-parent rule, NHRT/heap isolation,
//!    ThreadDomain uniqueness, binding legality with suggested cross-scope
//!    patterns;
//! 3. **Generate** — compile the validated architecture into an execution
//!    infrastructure at one of three optimization levels
//!    ([`generator`]): `SOLEIL` (reified membranes, fully reconfigurable),
//!    `MERGE-ALL` (membranes merged into components) or `ULTRA-MERGE`
//!    (one static unit);
//! 4. **Run** — drive end-to-end transactions against a faithful RTSJ
//!    substrate simulation ([`rtsj`]): scoped/immortal/heap memory with
//!    dynamic assignment checks, priority-preemptive scheduling and a GC
//!    model that never preempts `NoHeapRealtimeThread`s.
//!
//! ## Quickstart
//!
//! ```
//! use soleil::prelude::*;
//! use soleil::scenario;
//!
//! # fn main() -> Result<(), soleil::SoleilError> {
//! let arch = scenario::motivation_architecture()?;
//! assert!(validate(&arch).is_compliant());
//!
//! let mut system = soleil::generator::generate(&arch, Mode::MergeAll, &scenario::registry())?;
//! let head = system.slot_of("ProductionLine")?;
//! system.run_transaction(head)?;
//! # Ok(())
//! # }
//! ```
//!
//! The crates underneath (also usable standalone): [`rtsj`] (substrate),
//! [`core`] (metamodel/ADL/validator), [`patterns`] (cross-scope patterns),
//! [`membrane`] (controllers/interceptors), [`generator`] and [`runtime`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rtsj;
pub use soleil_core as core;
pub use soleil_generator as generator;
pub use soleil_membrane as membrane;
pub use soleil_patterns as patterns;
pub use soleil_runtime as runtime;

pub use soleil_core::{SoleilError, SoleilResult};

pub mod scenario;

/// The most commonly used items across all layers.
pub mod prelude {
    pub use crate::core::prelude::*;
    pub use crate::generator::{compile, emit_source, generate};
    pub use crate::membrane::content::{Content, ContentRegistry, InvokeResult, Ports};
    pub use crate::membrane::FrameworkError;
    pub use crate::runtime::instrument::measure_steady;
    pub use crate::runtime::system::RELEASE_PORT;
    pub use crate::runtime::{FootprintReport, Mode, System, SystemSpec};
    pub use crate::{SoleilError, SoleilResult};
    pub use rtsj::time::{AbsoluteTime, RelativeTime};
}
