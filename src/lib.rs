//! # soleil — a component framework for RTSJ-style real-time embedded systems
//!
//! A Rust reproduction of *"A Component Framework for Java-based Real-Time
//! Embedded Systems"* (Plšek, Loiret, Merle, Seinturier — ACM/IFIP/USENIX
//! Middleware 2008). The framework lets you:
//!
//! 1. **Design** — describe the functional architecture in a *business
//!    view*, then superimpose real-time concerns through *thread* and
//!    *memory management views* ([`core::views`]), or load the paper's XML
//!    ADL ([`core::adl`]);
//! 2. **Validate** — establish RTSJ conformance at design time
//!    ([`mod@core::validate`]) and carry the proof in the type system: the
//!    consuming validator returns a
//!    [`ValidatedArchitecture`](core::ValidatedArchitecture) witness, the
//!    only input the toolchain downstream accepts;
//! 3. **Deploy** — compile the witness into an execution infrastructure at
//!    one of three optimization levels ([`generator`]): `SOLEIL` (reified
//!    membranes, fully reconfigurable), `MERGE-ALL` (membranes merged into
//!    components) or `ULTRA-MERGE` (one static unit). [`deploy`] returns a
//!    typed [`Deployment`](runtime::Deployment) handle whose component
//!    names are resolved **once** into copyable `ComponentRef` tokens — the
//!    steady-state loop performs zero name lookups;
//! 4. **Run & reconfigure** — drive end-to-end transactions against a
//!    faithful RTSJ substrate simulation ([`rtsj`]), and adapt live systems
//!    through **transactional reconfiguration**: operations batched in a
//!    closure, re-validated against the same RTSJ rules, applied
//!    all-or-nothing with rollback on error. Faults (panics included) are
//!    caught at the activation boundary and handled by per-component
//!    supervision policies ([`runtime::FaultPolicy`]: escalate, isolate,
//!    or restart with backoff), with a deterministic seeded
//!    [`FaultInjector`](membrane::interceptors::FaultInjector) for chaos
//!    testing.
//!
//! ## Quickstart
//!
//! ```
//! use soleil::prelude::*;
//! use soleil::scenario;
//!
//! # fn main() -> Result<(), soleil::SoleilError> {
//! // Validate: the witness proves design-time RTSJ conformance.
//! let arch = scenario::motivation_architecture()?.into_validated()?;
//!
//! // Deploy: names resolve once into copyable tokens.
//! let mut deployment = deploy(&arch, Mode::MergeAll, &scenario::registry())?;
//! let head = deployment.resolve("ProductionLine")?;
//!
//! // Run: the hot loop is free of name resolution.
//! for _ in 0..100 {
//!     deployment.run_transaction(head)?;
//! }
//! assert_eq!(deployment.stats().transactions, 100);
//! # Ok(())
//! # }
//! ```
//!
//! Reconfiguration is a transaction — all-or-nothing, re-validated:
//!
//! ```
//! # use soleil::prelude::*;
//! # fn main() -> Result<(), soleil::SoleilError> {
//! # let mut b = BusinessView::new("demo");
//! # b.active_periodic("caller", "5ms")?;
//! # b.passive("svc-a")?;
//! # b.passive("svc-b")?;
//! # b.content("caller", "C")?; b.content("svc-a", "S")?; b.content("svc-b", "S")?;
//! # b.require("caller", "svc", "I")?;
//! # b.provide("svc-a", "svc", "I")?;
//! # b.provide("svc-b", "svc", "I")?;
//! # b.bind_sync("caller", "svc", "svc-a", "svc")?;
//! # let mut flow = DesignFlow::new(b);
//! # flow.thread_domain("rt", ThreadKind::Realtime, 22, &["caller"])?;
//! # flow.memory_area("imm", MemoryKind::Immortal, Some(64 * 1024), &["rt", "svc-a", "svc-b"])?;
//! # let arch = flow.merge()?.into_validated()?;
//! # #[derive(Debug, Default)]
//! # struct Noop;
//! # impl Content<u64> for Noop {
//! #     fn on_invoke(&mut self, _p: &str, _m: &mut u64, _o: &mut dyn Ports<u64>) -> InvokeResult { Ok(()) }
//! # }
//! # let mut registry: ContentRegistry<u64> = ContentRegistry::new();
//! # registry.register("C", || Box::new(Noop));
//! # registry.register("S", || Box::new(Noop));
//! let mut deployment = deploy(&arch, Mode::Soleil, &registry)?;
//! let caller = deployment.resolve("caller")?;
//! let backup = deployment.resolve("svc-b")?;
//! deployment.reconfigure(|txn| {
//!     txn.stop(caller)?;
//!     txn.rebind(caller, "svc", backup)?;
//!     txn.start(caller)
//! })?;
//! # Ok(())
//! # }
//! ```
//!
//! ## Migrating from the pre-witness API
//!
//! | Removed (pre-witness API) | Replacement |
//! |---|---|
//! | `generate_unvalidated(&arch, …)` | `arch.into_validated()?` then [`deploy`]/[`generator::generate`] |
//! | `compile_unvalidated(&arch)` | `arch.into_validated()?` then `compile(&validated)` |
//! | `system.slot_of("name")` per call | [`Deployment::resolve`](runtime::Deployment::resolve) once → `ComponentRef` |
//! | `system.inject("name", "port", msg)` | [`Deployment::inject`](runtime::Deployment::inject) with a pre-resolved `PortRef` |
//! | `system.stop(…)` / `rebind(…)` / `start(…)` | [`Deployment::reconfigure`](runtime::Deployment::reconfigure) transaction |
//!
//! The crates underneath (also usable standalone): [`rtsj`] (substrate),
//! [`core`] (metamodel/ADL/validator), [`patterns`] (cross-scope patterns),
//! [`membrane`] (controllers/interceptors), [`generator`] and [`runtime`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rtsj;
pub use soleil_core as core;
pub use soleil_generator as generator;
pub use soleil_membrane as membrane;
pub use soleil_patterns as patterns;
pub use soleil_runtime as runtime;

pub use soleil_core::{SoleilError, SoleilResult};
pub use soleil_generator::{deploy, deploy_parallel};

pub mod scenario;

/// The most commonly used items across all layers.
pub mod prelude {
    pub use crate::core::prelude::*;
    pub use crate::generator::{compile, deploy, deploy_parallel, emit_source, generate};
    pub use crate::membrane::content::{Content, ContentRegistry, InvokeResult, Ports, StateImage};
    pub use crate::membrane::interceptors::FaultInjector;
    pub use crate::membrane::monitor::{LatencyMonitor, LatencySnapshot};
    pub use crate::membrane::{FaultKind, FrameworkError};
    pub use crate::runtime::instrument::measure_steady;
    pub use crate::runtime::system::RELEASE_PORT;
    pub use crate::runtime::{
        run_recovery_campaign, ComponentRef, Deployment, EngineStats, FaultPolicy, FootprintReport,
        Mode, ParallelReconfiguration, ParallelSystem, PortRef, Reconfiguration, RecoveryEpisode,
        RecoveryMetrics, ShardRun, System, SystemSpec, TimerHandle, TimerQueue,
    };
    pub use crate::{SoleilError, SoleilResult};
    pub use rtsj::time::{AbsoluteTime, RelativeTime};
}
