//! Zero-allocation latency, jitter and deadline monitoring.
//!
//! [`LatencyMonitor`] is the observation half of a runtime timing
//! contract: the engine stamps an [`Instant`] around each monitored
//! activation and feeds the elapsed time to [`LatencyMonitor::observe`].
//! Everything the monitor keeps — a fixed log₂-bucket histogram, running
//! min/max/sum, deadline-miss and jitter-violation counters — lives
//! inline in the struct, so recording an observation never allocates and
//! the armed steady state stays inside the framework's 0-allocs/txn gate.
//!
//! Jitter is defined as the deviation between *consecutive release gaps*
//! (|gapₙ − gapₙ₋₁|), not as gap-versus-period: a tight benchmark loop
//! that releases back-to-back has tiny, stable gaps and therefore zero
//! jitter, while a GC pause stretching one gap out of a steady train is
//! flagged immediately.
//!
//! Like the jitter interceptor and the [`crate::interceptors::FastGate`],
//! the monitor follows the pay-nothing-when-unused rule: components
//! without a monitor attached never reach this module — the engine's
//! activation plan carries a `u16::MAX` sentinel and the hot path pays a
//! single integer compare.

use std::time::Instant;

/// Number of log₂ histogram buckets. Bucket `i` counts latencies in
/// `[2^(i-1), 2^i)` nanoseconds (bucket 0 is `[0, 1)`); 40 buckets reach
/// ~18 minutes, far beyond any sane activation latency.
const BUCKETS: usize = 40;

/// Sentinel for "no previous gap observed yet".
const NO_GAP: u64 = u64::MAX;

/// A fixed-footprint latency/jitter/deadline monitor for one component.
///
/// Constructed when a timing contract is attached (cold path); updated on
/// every monitored activation (hot path, allocation-free); read when a
/// contract verdict or snapshot is requested (cold path).
#[derive(Debug, Clone)]
pub struct LatencyMonitor {
    /// Deadline in nanoseconds; `u64::MAX` = no deadline attached.
    deadline_ns: u64,
    /// Max tolerated gap deviation in nanoseconds; `u64::MAX` = no bound.
    max_jitter_ns: u64,
    /// Log₂ latency histogram (bucket upper bounds are powers of two).
    buckets: [u64; BUCKETS],
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
    deadline_misses: u64,
    jitter_violations: u64,
    /// Previous release gap in nanoseconds ([`NO_GAP`] until two starts).
    prev_gap_ns: u64,
    /// Start stamp of the previous monitored activation.
    last_start: Option<Instant>,
    /// When the monitor was attached (observed-throughput denominator).
    opened: Instant,
}

impl LatencyMonitor {
    /// Creates a monitor with optional deadline and jitter bounds (in
    /// nanoseconds). `None` bounds still record the histogram; they just
    /// never count violations.
    pub fn new(deadline_ns: Option<u64>, max_jitter_ns: Option<u64>) -> Self {
        LatencyMonitor {
            deadline_ns: deadline_ns.unwrap_or(u64::MAX),
            max_jitter_ns: max_jitter_ns.unwrap_or(u64::MAX),
            buckets: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            deadline_misses: 0,
            jitter_violations: 0,
            prev_gap_ns: NO_GAP,
            last_start: None,
            opened: Instant::now(),
        }
    }

    /// Records one completed activation that *started* at `start` and ran
    /// for `latency_ns`. Returns `true` when the activation missed its
    /// deadline. Never allocates.
    #[inline]
    pub fn observe(&mut self, start: Instant, latency_ns: u64) -> bool {
        // Jitter: deviation between consecutive release gaps.
        if let Some(prev) = self.last_start {
            let gap = start.saturating_duration_since(prev).as_nanos() as u64;
            if self.prev_gap_ns != NO_GAP {
                let deviation = gap.abs_diff(self.prev_gap_ns);
                if deviation > self.max_jitter_ns {
                    self.jitter_violations += 1;
                }
            }
            self.prev_gap_ns = gap;
        }
        self.last_start = Some(start);

        // Histogram + running aggregates.
        let bucket = (64 - latency_ns.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(latency_ns);
        self.min_ns = self.min_ns.min(latency_ns);
        self.max_ns = self.max_ns.max(latency_ns);

        let missed = latency_ns > self.deadline_ns;
        if missed {
            self.deadline_misses += 1;
        }
        missed
    }

    /// Total monitored activations.
    pub fn activations(&self) -> u64 {
        self.count
    }

    /// Activations that exceeded the attached deadline.
    pub fn deadline_misses(&self) -> u64 {
        self.deadline_misses
    }

    /// Release gaps whose deviation from the previous gap exceeded the
    /// attached jitter bound.
    pub fn jitter_violations(&self) -> u64 {
        self.jitter_violations
    }

    /// Conservative (upper-bound) latency at `percentile` (1..=100),
    /// read from the log₂ histogram: the bucket upper bound where the
    /// cumulative count reaches the percentile, clamped to the exact
    /// observed maximum. Returns 0 before any observation.
    pub fn quantile_ns(&self, percentile: u8) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let pct = u64::from(percentile.clamp(1, 100));
        // Smallest rank whose cumulative share is >= percentile.
        let rank = self.count.saturating_mul(pct).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket i spans [2^(i-1), 2^i); report its upper bound,
                // never beyond the true observed max.
                let upper = if i >= 63 { u64::MAX } else { 1u64 << i };
                return upper.min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Observed activation rate in Hz since the monitor was attached.
    pub fn observed_hz(&self) -> f64 {
        let secs = self.opened.elapsed().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.count as f64 / secs
    }

    /// An owned summary of everything the monitor has seen.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            activations: self.count,
            deadline_misses: self.deadline_misses,
            jitter_violations: self.jitter_violations,
            min_ns: if self.count == 0 { 0 } else { self.min_ns },
            max_ns: self.max_ns,
            mean_ns: self.sum_ns.checked_div(self.count).unwrap_or(0),
            p50_ns: self.quantile_ns(50),
            p95_ns: self.quantile_ns(95),
            p99_ns: self.quantile_ns(99),
            observed_hz: self.observed_hz(),
        }
    }

    /// Bytes of state the monitor pins per component (footprint report).
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

/// An owned, point-in-time summary of a [`LatencyMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySnapshot {
    /// Total monitored activations.
    pub activations: u64,
    /// Activations that exceeded the attached deadline.
    pub deadline_misses: u64,
    /// Gap deviations that exceeded the attached jitter bound.
    pub jitter_violations: u64,
    /// Fastest observed activation, nanoseconds.
    pub min_ns: u64,
    /// Slowest observed activation, nanoseconds.
    pub max_ns: u64,
    /// Mean activation latency, nanoseconds.
    pub mean_ns: u64,
    /// Median latency (histogram upper bound), nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile latency (histogram upper bound), nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile latency (histogram upper bound), nanoseconds.
    pub p99_ns: u64,
    /// Observed activation rate since attach, Hz.
    pub observed_hz: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn histogram_counts_and_deadline_misses() {
        let mut m = LatencyMonitor::new(Some(1_000), None);
        let t0 = Instant::now();
        assert!(!m.observe(t0, 500));
        assert!(!m.observe(t0, 1_000), "deadline is inclusive");
        assert!(m.observe(t0, 1_001));
        assert_eq!(m.activations(), 3);
        assert_eq!(m.deadline_misses(), 1);
        let s = m.snapshot();
        assert_eq!(s.min_ns, 500);
        assert_eq!(s.max_ns, 1_001);
        assert_eq!(s.mean_ns, (500 + 1_000 + 1_001) / 3);
    }

    #[test]
    fn quantiles_are_conservative_upper_bounds() {
        let mut m = LatencyMonitor::new(None, None);
        let t0 = Instant::now();
        for latency in [100u64, 200, 300, 400, 10_000] {
            m.observe(t0, latency);
        }
        let p50 = m.quantile_ns(50);
        // Median observation is 300; its bucket upper bound is 512.
        assert!((300..=512).contains(&p50), "p50 = {p50}");
        // The tail quantile is clamped to the true max.
        assert_eq!(m.quantile_ns(100), 10_000);
        assert!(m.quantile_ns(99) <= 10_000);
        assert!(m.quantile_ns(95) >= p50);
    }

    #[test]
    fn jitter_flags_gap_deviation_not_small_gaps() {
        let mut m = LatencyMonitor::new(None, Some(1_000_000)); // 1 ms bound
        let t0 = Instant::now();
        // Steady 10 µs gaps: zero deviation, no violations.
        for i in 0..5u64 {
            m.observe(t0 + Duration::from_micros(10 * i), 100);
        }
        assert_eq!(m.jitter_violations(), 0);
        // One 5 ms stall: the stretched gap deviates ~5 ms from the
        // steady 10 µs train — one violation on the way in, one on the
        // way back to the steady gap.
        m.observe(
            t0 + Duration::from_micros(40) + Duration::from_millis(5),
            100,
        );
        assert_eq!(m.jitter_violations(), 1);
        m.observe(
            t0 + Duration::from_micros(50) + Duration::from_millis(5),
            100,
        );
        assert_eq!(m.jitter_violations(), 2);
    }

    #[test]
    fn empty_monitor_snapshots_cleanly() {
        let m = LatencyMonitor::new(None, None);
        let s = m.snapshot();
        assert_eq!(s.activations, 0);
        assert_eq!(s.min_ns, 0);
        assert_eq!(s.mean_ns, 0);
        assert_eq!(m.quantile_ns(99), 0);
        assert!(m.footprint_bytes() >= BUCKETS * 8);
    }
}
