//! Framework-level errors raised by the control layer.

use std::error::Error;
use std::fmt;

use rtsj::RtsjError;
use soleil_core::{SoleilError, ValidationReport};

/// The class of a contained component fault (see
/// [`FrameworkError::Faulted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The content panicked during activation; the panic was caught at the
    /// activation boundary and the component's membrane was poisoned.
    Panic,
    /// The content (or an injected fault) returned an error the
    /// component's fault policy is asked to handle.
    Error,
    /// A message addressed to the component was deliberately dropped (by a
    /// fault injector or a quarantine gate) and counted.
    Drop,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Panic => write!(f, "panic"),
            FaultKind::Error => write!(f, "error"),
            FaultKind::Drop => write!(f, "drop"),
        }
    }
}

/// Failures raised by membranes, controllers and the execution engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameworkError {
    /// An RTSJ substrate violation (assignment rule, scope cycle, …).
    Rtsj(RtsjError),
    /// An operation on a component in the wrong lifecycle state.
    Lifecycle(String),
    /// A binding lookup or reconfiguration failure.
    Binding(String),
    /// A violation of the run-to-completion execution model (re-entrant
    /// activation of an active component).
    RunToCompletion(String),
    /// An error reported by a content implementation.
    Content(String),
    /// An operation the current generation mode does not support (e.g.
    /// reconfiguration under ULTRA-MERGE).
    Unsupported(String),
    /// A release-engine timer operation that could not be honored (queue
    /// exhausted, release target not periodic, …). The timer queue is
    /// preallocated at deploy time, so exhaustion is a capacity decision,
    /// not an allocation failure.
    Timer(String),
    /// A transactional reconfiguration whose resulting architecture the
    /// validator refused; the transaction was rolled back and the full
    /// report is preserved.
    Rejected(ValidationReport),
    /// A fault contained at a component's activation boundary: a caught
    /// panic, a content error routed to the component's fault policy, or a
    /// counted message drop. Carries the faulting component's name so
    /// supervision can attribute the fault without string parsing.
    Faulted {
        /// Name of the component where the fault originated.
        component: String,
        /// The class of fault.
        kind: FaultKind,
        /// Human-readable detail (panic payload, content error text, …).
        detail: String,
    },
    /// An interceptor-chain unwind during which *several* interceptors
    /// failed: the first error is preserved, and `suppressed` further
    /// errors were swallowed so the chain could still unwind completely
    /// (the run-to-completion discipline never leaves a chain half-wound).
    Unwind {
        /// The first error raised during the unwind.
        first: Box<FrameworkError>,
        /// How many further interceptor errors were suppressed after
        /// `first` while the unwind continued.
        suppressed: u32,
    },
}

impl FrameworkError {
    /// Attaches the count of interceptor errors suppressed during a chain
    /// unwind to the first error observed. With `suppressed == 0` the
    /// error passes through unchanged; otherwise it is wrapped in
    /// [`FrameworkError::Unwind`] so callers can see that more than one
    /// interceptor failed.
    #[must_use]
    pub fn with_suppressed(first: FrameworkError, suppressed: u32) -> FrameworkError {
        if suppressed == 0 {
            first
        } else {
            FrameworkError::Unwind {
                first: Box::new(first),
                suppressed,
            }
        }
    }
}

impl fmt::Display for FrameworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameworkError::Rtsj(e) => write!(f, "rtsj violation: {e}"),
            FrameworkError::Lifecycle(m) => write!(f, "lifecycle error: {m}"),
            FrameworkError::Binding(m) => write!(f, "binding error: {m}"),
            FrameworkError::RunToCompletion(m) => write!(f, "run-to-completion violated: {m}"),
            FrameworkError::Content(m) => write!(f, "content error: {m}"),
            FrameworkError::Unsupported(m) => write!(f, "unsupported in this mode: {m}"),
            FrameworkError::Timer(m) => write!(f, "timer error: {m}"),
            FrameworkError::Rejected(report) => {
                write!(f, "reconfiguration rejected, rolled back:\n{report}")
            }
            FrameworkError::Faulted {
                component,
                kind,
                detail,
            } => {
                write!(f, "component '{component}' faulted ({kind}): {detail}")
            }
            FrameworkError::Unwind { first, suppressed } => {
                write!(
                    f,
                    "{first} ({suppressed} further interceptor error(s) suppressed during unwind)"
                )
            }
        }
    }
}

impl Error for FrameworkError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FrameworkError::Rtsj(e) => Some(e),
            FrameworkError::Unwind { first, .. } => Some(first.as_ref()),
            _ => None,
        }
    }
}

impl From<RtsjError> for FrameworkError {
    fn from(e: RtsjError) -> Self {
        FrameworkError::Rtsj(e)
    }
}

impl From<FrameworkError> for SoleilError {
    fn from(e: FrameworkError) -> Self {
        match e {
            // Substrate violations keep their structured form.
            FrameworkError::Rtsj(inner) => SoleilError::Rtsj(inner),
            // A refused reconfiguration keeps its structured report.
            FrameworkError::Rejected(report) => SoleilError::Validation(report),
            other => SoleilError::Framework(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = FrameworkError::from(RtsjError::IllegalState("x".into()));
        assert!(e.to_string().contains("rtsj violation"));
        assert!(e.source().is_some());
        let l = FrameworkError::Lifecycle("stopped".into());
        assert!(l.source().is_none());
        assert!(l.to_string().contains("stopped"));
    }

    #[test]
    fn suppressed_counts_wrap_the_first_error() {
        let first = FrameworkError::RunToCompletion("re-entered".into());
        // Zero suppressed errors: the first error passes through untouched.
        assert_eq!(
            FrameworkError::with_suppressed(first.clone(), 0),
            FrameworkError::RunToCompletion("re-entered".into())
        );
        let wrapped = FrameworkError::with_suppressed(first, 2);
        let FrameworkError::Unwind { suppressed, .. } = &wrapped else {
            panic!("expected Unwind, got {wrapped}");
        };
        assert_eq!(*suppressed, 2);
        assert!(wrapped.to_string().contains("re-entered"));
        assert!(wrapped.to_string().contains("2 further interceptor"));
        assert!(wrapped.source().is_some(), "first error is the source");
    }

    #[test]
    fn faulted_displays_component_and_kind() {
        let e = FrameworkError::Faulted {
            component: "Detector".into(),
            kind: FaultKind::Panic,
            detail: "index out of bounds".into(),
        };
        assert_eq!(
            e.to_string(),
            "component 'Detector' faulted (panic): index out of bounds"
        );
        assert_eq!(FaultKind::Error.to_string(), "error");
        assert_eq!(FaultKind::Drop.to_string(), "drop");
        assert!(e.source().is_none());
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync + 'static>() {}
        check::<FrameworkError>();
    }

    #[test]
    fn converts_into_unified_error() {
        let lifecycle = FrameworkError::Lifecycle("component is stopped".into());
        let text = lifecycle.to_string();
        let unified: SoleilError = lifecycle.into();
        assert!(matches!(unified, SoleilError::Framework(_)));
        assert_eq!(unified.to_string(), text);

        // Substrate violations re-surface as the structured Rtsj variant.
        let rtsj = FrameworkError::Rtsj(RtsjError::IllegalState("x".into()));
        assert!(matches!(SoleilError::from(rtsj), SoleilError::Rtsj(_)));
    }

    #[test]
    fn question_mark_crosses_layers() {
        fn framework_op() -> Result<(), FrameworkError> {
            Err(FrameworkError::Binding("no such client interface".into()))
        }
        fn application_op() -> Result<(), SoleilError> {
            framework_op()?;
            Ok(())
        }
        let err = application_op().unwrap_err();
        assert!(err.to_string().contains("no such client interface"));
    }
}
