//! # soleil-membrane — component membranes: controllers and interceptors
//!
//! §4 of the paper wraps every functional component in a **membrane**: "an
//! assembly of control components" supporting its non-functional properties,
//! with **interceptors** arbitrating communication on its interfaces. This
//! crate provides that control layer:
//!
//! * [`content`] — the [`content::Content`] trait functional implementations
//!   ("content classes") write against, and the [`content::Ports`] façade
//!   they emit calls through;
//! * [`controllers`] — Lifecycle, Binding, Content, ThreadDomain and
//!   MemoryArea controllers (the introspection / reconfiguration surface);
//! * [`interceptors`] — the RTSJ-oriented interceptors: the
//!   **ActiveInterceptor** enforcing run-to-completion activation and the
//!   **MemoryInterceptor** executing the cross-scope pattern selected at
//!   design time;
//! * [`Membrane`] — the per-component assembly of the above, as reified in
//!   the SOLEIL generation mode (MERGE-ALL inlines this logic; ULTRA-MERGE
//!   compiles it away — see `soleil-generator`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod content;
pub mod controllers;
pub mod error;
pub mod interceptors;

pub use content::{Content, InvokeResult, Payload, Ports};
pub use error::FrameworkError;

use rtsj::memory::{MemoryContext, MemoryManager};

use controllers::{BindingController, LifecycleController};
use interceptors::Interceptor;

/// The reified control membrane of one component (SOLEIL mode).
///
/// Holds the mandatory controllers plus the interceptor chain that runs
/// around every server-interface invocation. The structure is deliberately
/// dynamic (trait objects, name-keyed binding table): that is exactly the
/// price the paper measures against MERGE-ALL and ULTRA-MERGE.
#[derive(Debug)]
pub struct Membrane {
    /// The wrapped component's name.
    pub component: String,
    /// Start/stop state machine.
    pub lifecycle: LifecycleController,
    /// Name-keyed client-interface binding table.
    pub binding: BindingController,
    interceptors: Vec<Box<dyn Interceptor>>,
}

impl Membrane {
    /// Creates a membrane with empty controller state.
    pub fn new(component: impl Into<String>) -> Self {
        Membrane {
            component: component.into(),
            lifecycle: LifecycleController::new(),
            binding: BindingController::new(),
            interceptors: Vec::new(),
        }
    }

    /// Appends an interceptor to the chain (pre runs in insertion order,
    /// post in reverse).
    pub fn push_interceptor(&mut self, interceptor: Box<dyn Interceptor>) {
        self.interceptors.push(interceptor);
    }

    /// Names of the installed interceptors, in chain order (introspection).
    pub fn interceptor_names(&self) -> Vec<&str> {
        self.interceptors.iter().map(|i| i.name()).collect()
    }

    /// The first interceptor with the given name, for downcasting
    /// (membrane-level introspection).
    pub fn interceptor(&self, name: &str) -> Option<&dyn Interceptor> {
        self.interceptors
            .iter()
            .find(|i| i.name() == name)
            .map(|b| b.as_ref())
    }

    /// Removes the first interceptor with the given name; true when one was
    /// removed (membrane-level reconfiguration).
    pub fn remove_interceptor(&mut self, name: &str) -> bool {
        let before = self.interceptors.len();
        let mut removed = false;
        self.interceptors.retain(|i| {
            if !removed && i.name() == name {
                removed = true;
                false
            } else {
                true
            }
        });
        self.interceptors.len() != before
    }

    /// Number of control units (controllers + interceptors) in this
    /// membrane — the §5.2 "generated units" metric counts these.
    pub fn control_unit_count(&self) -> usize {
        2 + self.interceptors.len()
    }

    /// Runs the pre-invocation chain: lifecycle gate, then every
    /// interceptor's `pre` in order. On failure, already-executed
    /// interceptors are unwound via their `post`.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Lifecycle`] when stopped; interceptor errors
    /// otherwise.
    pub fn pre_invoke(
        &mut self,
        mm: &mut MemoryManager,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        self.lifecycle.assert_started(&self.component)?;
        for i in 0..self.interceptors.len() {
            if let Err(e) = self.interceptors[i].pre(mm, ctx) {
                for j in (0..i).rev() {
                    let _ = self.interceptors[j].post(mm, ctx);
                }
                return Err(e);
            }
        }
        Ok(())
    }

    /// Runs the post-invocation chain (reverse order). The first error is
    /// reported but the chain still unwinds completely.
    ///
    /// # Errors
    ///
    /// The first interceptor error encountered.
    pub fn post_invoke(
        &mut self,
        mm: &mut MemoryManager,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        let mut first_err = None;
        for i in (0..self.interceptors.len()).rev() {
            if let Err(e) = self.interceptors[i].post(mm, ctx) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Estimated bytes of membrane machinery, charged as framework overhead
    /// in the Fig. 7(c) experiment: controller structs, the binding table
    /// and every interceptor.
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.component.capacity()
            + self.binding.footprint_bytes()
            + self
                .interceptors
                .iter()
                .map(|i| i.footprint_bytes() + std::mem::size_of::<Box<dyn Interceptor>>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interceptors::ActiveInterceptor;
    use rtsj::thread::ThreadKind;

    #[test]
    fn membrane_gates_on_lifecycle() {
        let mut mm = MemoryManager::default();
        let mut ctx = mm.context(ThreadKind::Realtime);
        let mut m = Membrane::new("c");
        m.push_interceptor(Box::new(ActiveInterceptor::new()));

        // Stopped: pre fails.
        assert!(matches!(
            m.pre_invoke(&mut mm, &mut ctx),
            Err(FrameworkError::Lifecycle(_))
        ));
        m.lifecycle.start();
        m.pre_invoke(&mut mm, &mut ctx).unwrap();
        m.post_invoke(&mut mm, &mut ctx).unwrap();
    }

    #[test]
    fn interceptor_chain_unwinds_on_pre_failure() {
        let mut mm = MemoryManager::default();
        let mut ctx = mm.context(ThreadKind::Realtime);
        let mut m = Membrane::new("c");
        m.lifecycle.start();
        // Two run-to-completion guards: second pre fails if first left it busy.
        m.push_interceptor(Box::new(ActiveInterceptor::new()));
        m.push_interceptor(Box::new(ActiveInterceptor::new()));
        m.pre_invoke(&mut mm, &mut ctx).unwrap();
        // Re-entrant pre: the first guard trips, nothing leaks.
        let err = m.pre_invoke(&mut mm, &mut ctx).unwrap_err();
        assert!(matches!(err, FrameworkError::RunToCompletion(_)));
        m.post_invoke(&mut mm, &mut ctx).unwrap();
        // After unwinding, a fresh invocation succeeds.
        m.pre_invoke(&mut mm, &mut ctx).unwrap();
        m.post_invoke(&mut mm, &mut ctx).unwrap();
    }

    #[test]
    fn introspection_lists_units() {
        let mut m = Membrane::new("c");
        assert_eq!(m.control_unit_count(), 2);
        m.push_interceptor(Box::new(ActiveInterceptor::new()));
        assert_eq!(m.control_unit_count(), 3);
        assert_eq!(m.interceptor_names(), vec!["active-interceptor"]);
        assert!(m.footprint_bytes() > 0);
    }
}
