//! # soleil-membrane — component membranes: controllers and interceptors
//!
//! §4 of the paper wraps every functional component in a **membrane**: "an
//! assembly of control components" supporting its non-functional properties,
//! with **interceptors** arbitrating communication on its interfaces. This
//! crate provides that control layer:
//!
//! * [`content`] — the [`content::Content`] trait functional implementations
//!   ("content classes") write against, and the [`content::Ports`] façade
//!   they emit calls through;
//! * [`controllers`] — Lifecycle, Binding, Content, ThreadDomain and
//!   MemoryArea controllers (the introspection / reconfiguration surface);
//! * [`interceptors`] — the RTSJ-oriented interceptors: the
//!   **ActiveInterceptor** enforcing run-to-completion activation and the
//!   **MemoryInterceptor** executing the cross-scope pattern selected at
//!   design time;
//! * [`monitor`] — the allocation-free [`LatencyMonitor`] backing runtime
//!   timing contracts: a fixed log₂ latency histogram with deadline-miss
//!   and jitter-violation counters, attached per component and skipped by
//!   a compiled sentinel when unused;
//! * [`Membrane`] — the per-component assembly of the above, as reified in
//!   the SOLEIL generation mode (MERGE-ALL inlines this logic; ULTRA-MERGE
//!   compiles it away — see `soleil-generator`).
//!
//! ## Compiled membranes
//!
//! The membrane's *structure* stays dynamic — interceptors can be pushed
//! and removed on a live component — but its *execution* is compiled. At
//! every structural change the chain is flattened into a [`CompiledChain`]:
//! a dense array of [`interceptors::InterceptStep`] enum variants executed
//! by a branch-predictable `match` loop, so no `Box<dyn Interceptor>`
//! virtual call remains on the steady-state invoke path (unknown
//! interceptor types fall back to a `Dyn` step and keep the old dynamic
//! behavior). The overwhelmingly common deployed shape — a lifecycle gate
//! plus one run-to-completion guard — is fused further
//! ([`ChainFusion::FusedActive`]): `pre_invoke`/`post_invoke` collapse to a
//! single pass with no chain walk at all. The same idea gates each
//! *binding*: a [`interceptors::FastGate`] precomputed from the binding's
//! [`interceptors::MemoryPlan`] lets the engine skip the memory
//! interceptor's `pre`/`post` entirely when the plan proves them no-ops —
//! decide at deploy time, run straight-line code at tick time, exactly the
//! erasable-framework claim the MERGE modes exist to demonstrate.
//! `push_interceptor`/`remove_interceptor` remain the cold reconfiguration
//! API; each call simply recompiles the plan.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod content;
pub mod controllers;
pub mod error;
pub mod interceptors;
pub mod monitor;

pub use content::{Content, InternedPort, InvokeResult, Payload, PortId, Ports};
pub use error::{FaultKind, FrameworkError};
pub use monitor::{LatencyMonitor, LatencySnapshot};

use rtsj::memory::{MemoryContext, MemoryManager};

use controllers::{BindingController, LifecycleController};
use interceptors::{InterceptStep, Interceptor};

/// How a [`CompiledChain`] executes the pre/post protocol — settled when
/// the plan is compiled, never per invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChainFusion {
    /// No interceptors: pre/post are the lifecycle gate alone.
    #[default]
    Empty,
    /// Exactly one [`interceptors::ActiveInterceptor`]: the lifecycle bit
    /// and the re-entrancy guard fuse into a single pass with no chain
    /// walk — the common deployed case.
    FusedActive,
    /// The general compiled walk: a `match` loop over the step array.
    Walk,
}

/// The deploy-time compiled form of a membrane's interceptor chain: a flat
/// [`InterceptStep`] array plus the fusion decision. Built by
/// [`Membrane::push_interceptor`]/[`push_step`](Membrane::push_step) and
/// recompiled on every structural change (the cold reconfiguration path).
#[derive(Debug, Default)]
pub struct CompiledChain {
    steps: Vec<InterceptStep>,
    fusion: ChainFusion,
}

impl CompiledChain {
    /// Recomputes the fusion decision from the current step array.
    fn recompile(&mut self) {
        self.fusion = match self.steps.as_slice() {
            [] => ChainFusion::Empty,
            [InterceptStep::Active(_)] => ChainFusion::FusedActive,
            _ => ChainFusion::Walk,
        };
    }

    /// The compiled fusion decision.
    pub fn fusion(&self) -> ChainFusion {
        self.fusion
    }

    /// Number of steps in the plan.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the plan has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The compiled steps, in chain order.
    pub fn steps(&self) -> &[InterceptStep] {
        &self.steps
    }

    /// True when every step dispatches without a virtual call — the
    /// property the steady-state invoke path is gated on (only the `Dyn`
    /// fallback for unknown interceptor types breaks it).
    pub fn is_fully_compiled(&self) -> bool {
        self.steps.iter().all(InterceptStep::is_compiled)
    }

    /// Clears per-transaction transient state every step may have left set
    /// by an activation that never completed — a mid-chain panic skips the
    /// `post` unwind, so a supervised restart must reset the
    /// run-to-completion guards by hand before re-admitting invocations.
    pub fn reset_transient(&mut self) {
        for step in &mut self.steps {
            if let InterceptStep::Active(a) = step {
                a.reset();
            }
        }
    }
}

/// The reified control membrane of one component (SOLEIL mode).
///
/// Holds the mandatory controllers plus the interceptor chain that runs
/// around every server-interface invocation. The structure is dynamic — a
/// name-keyed binding table, interceptors installable at runtime — but the
/// chain executes through a deploy-time [`CompiledChain`]; see the
/// [crate docs](self) on compiled membranes.
#[derive(Debug)]
pub struct Membrane {
    /// The wrapped component's name.
    pub component: String,
    /// Start/stop state machine.
    pub lifecycle: LifecycleController,
    /// Name-keyed client-interface binding table.
    pub binding: BindingController,
    chain: CompiledChain,
    /// True after a panic was caught mid-activation: the content may be
    /// half-mutated and the chain half-wound, so invocations are refused
    /// until [`restart`](Membrane::restart) clears the flag.
    poisoned: bool,
}

impl Membrane {
    /// Creates a membrane with empty controller state.
    pub fn new(component: impl Into<String>) -> Self {
        Membrane {
            component: component.into(),
            lifecycle: LifecycleController::new(),
            binding: BindingController::new(),
            chain: CompiledChain::default(),
            poisoned: false,
        }
    }

    /// Quarantines the component after a contained fault: the lifecycle
    /// moves to [`controllers::LifecycleState::Quarantined`] and, when the
    /// fault was a panic (`poison` true), the membrane is poisoned so not
    /// even a plain `start` can re-admit invocations without a
    /// [`restart`](Membrane::restart).
    pub fn quarantine(&mut self, poison: bool) {
        self.lifecycle.quarantine();
        if poison {
            self.poisoned = true;
        }
    }

    /// True after a panic was contained and before a restart.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Supervised restart: clears the poison flag, resets any transient
    /// interceptor state a mid-chain panic left behind (run-to-completion
    /// guards stuck busy), and recovers the lifecycle (counting the
    /// quarantine → started transition). The caller is responsible for
    /// replacing the content instance itself.
    pub fn restart(&mut self) {
        self.poisoned = false;
        self.chain.reset_transient();
        self.lifecycle.recover();
    }

    /// Appends an interceptor to the chain (pre runs in insertion order,
    /// post in reverse), compiling it into its flattened step and
    /// recompiling the plan — the cold reconfiguration API.
    pub fn push_interceptor(&mut self, interceptor: Box<dyn Interceptor>) {
        self.push_step(InterceptStep::compile(interceptor));
    }

    /// Appends an already-compiled step (deploy-time construction and the
    /// reconfiguration journal's rollback path).
    pub fn push_step(&mut self, step: InterceptStep) {
        self.chain.steps.push(step);
        self.chain.recompile();
    }

    /// Splices a step back at `index` in the chain — the rollback half of
    /// a journaled [`take_interceptor`](Self::take_interceptor): the plan
    /// recompiles to exactly its pre-removal form, state included.
    ///
    /// # Panics
    ///
    /// When `index` exceeds the chain length.
    pub fn insert_step(&mut self, index: usize, step: InterceptStep) {
        self.chain.steps.insert(index, step);
        self.chain.recompile();
    }

    /// The compiled interceptor plan (introspection; the unit the
    /// steady-state no-virtual-calls property is asserted on).
    pub fn plan(&self) -> &CompiledChain {
        &self.chain
    }

    /// Names of the installed interceptors, in chain order (introspection).
    pub fn interceptor_names(&self) -> Vec<&str> {
        self.chain.steps.iter().map(|s| s.name()).collect()
    }

    /// The first interceptor with the given name, for downcasting
    /// (membrane-level introspection).
    pub fn interceptor(&self, name: &str) -> Option<&dyn Interceptor> {
        self.chain
            .steps
            .iter()
            .find(|s| s.name() == name)
            .map(|s| s.as_interceptor())
    }

    /// Removes the first interceptor with the given name; true when one was
    /// removed (membrane-level reconfiguration; recompiles the plan).
    pub fn remove_interceptor(&mut self, name: &str) -> bool {
        self.take_interceptor(name).is_some()
    }

    /// Removes and returns the first step with the given name together
    /// with its chain position, so a reconfiguration journal can restore
    /// the plan byte-identically on rollback (recompiles the plan).
    pub fn take_interceptor(&mut self, name: &str) -> Option<(usize, InterceptStep)> {
        let ix = self.chain.steps.iter().position(|s| s.name() == name)?;
        let step = self.chain.steps.remove(ix);
        self.chain.recompile();
        Some((ix, step))
    }

    /// Number of control units (controllers + interceptors) in this
    /// membrane — the §5.2 "generated units" metric counts these.
    pub fn control_unit_count(&self) -> usize {
        2 + self.chain.len()
    }

    /// Runs the pre-invocation protocol: lifecycle gate, then the compiled
    /// plan. The fused shapes skip the chain walk entirely; the general
    /// walk dispatches each step through a `match`. On failure,
    /// already-executed steps are unwound via their `post`; if any unwind
    /// `post` fails too, the count of suppressed errors is attached to the
    /// returned error ([`FrameworkError::Unwind`]).
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Lifecycle`] when stopped; interceptor errors
    /// otherwise.
    pub fn pre_invoke(
        &mut self,
        mm: &mut MemoryManager,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        self.lifecycle.assert_started(&self.component)?;
        // Belt-and-braces behind the lifecycle gate: quarantine already
        // refuses invocations, but a plain `start` on a poisoned membrane
        // must not re-admit a half-mutated component either.
        if self.poisoned {
            return Err(FrameworkError::Lifecycle(format!(
                "component '{}' is poisoned by a caught panic; restart required",
                self.component
            )));
        }
        match self.chain.fusion() {
            ChainFusion::Empty => Ok(()),
            ChainFusion::FusedActive => match self.chain.steps.first_mut() {
                Some(InterceptStep::Active(a)) => a.pre(mm, ctx),
                _ => unreachable!("FusedActive proves a single Active step"),
            },
            ChainFusion::Walk => self.pre_walk(mm, ctx),
        }
    }

    fn pre_walk(
        &mut self,
        mm: &mut MemoryManager,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        for i in 0..self.chain.steps.len() {
            if let Err(e) = self.chain.steps[i].pre(mm, ctx) {
                let mut suppressed = 0u32;
                for j in (0..i).rev() {
                    if self.chain.steps[j].post(mm, ctx).is_err() {
                        suppressed += 1;
                    }
                }
                return Err(FrameworkError::with_suppressed(e, suppressed));
            }
        }
        Ok(())
    }

    /// Runs the post-invocation protocol (reverse order). The chain always
    /// unwinds completely; the first error is reported, with the count of
    /// any further suppressed errors attached
    /// ([`FrameworkError::Unwind`]).
    ///
    /// # Errors
    ///
    /// The first interceptor error encountered (wrapping the suppressed
    /// count when later steps failed too).
    pub fn post_invoke(
        &mut self,
        mm: &mut MemoryManager,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        match self.chain.fusion() {
            ChainFusion::Empty => Ok(()),
            ChainFusion::FusedActive => match self.chain.steps.first_mut() {
                Some(InterceptStep::Active(a)) => a.post(mm, ctx),
                _ => unreachable!("FusedActive proves a single Active step"),
            },
            ChainFusion::Walk => {
                let mut first_err = None;
                let mut suppressed = 0u32;
                for i in (0..self.chain.steps.len()).rev() {
                    if let Err(e) = self.chain.steps[i].post(mm, ctx) {
                        if first_err.is_none() {
                            first_err = Some(e);
                        } else {
                            suppressed += 1;
                        }
                    }
                }
                match first_err {
                    Some(e) => Err(FrameworkError::with_suppressed(e, suppressed)),
                    None => Ok(()),
                }
            }
        }
    }

    /// Estimated bytes of membrane machinery, charged as framework overhead
    /// in the Fig. 7(c) experiment: controller structs, the binding table
    /// and every compiled step.
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.component.capacity()
            + self.binding.footprint_bytes()
            + self
                .chain
                .steps
                .iter()
                .map(InterceptStep::footprint_bytes)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interceptors::{ActiveInterceptor, JitterMonitor};
    use rtsj::thread::ThreadKind;

    #[test]
    fn membrane_gates_on_lifecycle() {
        let mut mm = MemoryManager::default();
        let mut ctx = mm.context(ThreadKind::Realtime);
        let mut m = Membrane::new("c");
        m.push_interceptor(Box::new(ActiveInterceptor::new()));

        // Stopped: pre fails.
        assert!(matches!(
            m.pre_invoke(&mut mm, &mut ctx),
            Err(FrameworkError::Lifecycle(_))
        ));
        m.lifecycle.start();
        m.pre_invoke(&mut mm, &mut ctx).unwrap();
        m.post_invoke(&mut mm, &mut ctx).unwrap();
    }

    #[test]
    fn interceptor_chain_unwinds_on_pre_failure() {
        let mut mm = MemoryManager::default();
        let mut ctx = mm.context(ThreadKind::Realtime);
        let mut m = Membrane::new("c");
        m.lifecycle.start();
        // Two run-to-completion guards: second pre fails if first left it busy.
        m.push_interceptor(Box::new(ActiveInterceptor::new()));
        m.push_interceptor(Box::new(ActiveInterceptor::new()));
        m.pre_invoke(&mut mm, &mut ctx).unwrap();
        // Re-entrant pre: the first guard trips, nothing leaks.
        let err = m.pre_invoke(&mut mm, &mut ctx).unwrap_err();
        assert!(matches!(err, FrameworkError::RunToCompletion(_)));
        m.post_invoke(&mut mm, &mut ctx).unwrap();
        // After unwinding, a fresh invocation succeeds.
        m.pre_invoke(&mut mm, &mut ctx).unwrap();
        m.post_invoke(&mut mm, &mut ctx).unwrap();
    }

    #[test]
    fn poisoned_membrane_refuses_start_until_restart() {
        let mut mm = MemoryManager::default();
        let mut ctx = mm.context(ThreadKind::Realtime);
        let mut m = Membrane::new("c");
        m.push_interceptor(Box::new(ActiveInterceptor::new()));
        m.lifecycle.start();
        // Simulate a panic caught mid-activation: pre ran (guard busy),
        // post never did, and supervision poisons the membrane.
        m.pre_invoke(&mut mm, &mut ctx).unwrap();
        m.quarantine(true);
        assert!(m.poisoned());
        assert!(matches!(
            m.pre_invoke(&mut mm, &mut ctx),
            Err(FrameworkError::Lifecycle(_))
        ));
        // A plain start is not enough: the poison check still refuses.
        m.lifecycle.start();
        let err = m.pre_invoke(&mut mm, &mut ctx).unwrap_err();
        assert!(err.to_string().contains("poisoned by a caught panic"));
        // A supervised restart clears poison AND the stuck busy guard.
        m.restart();
        assert!(!m.poisoned());
        m.pre_invoke(&mut mm, &mut ctx).unwrap();
        m.post_invoke(&mut mm, &mut ctx).unwrap();
    }

    #[test]
    fn introspection_lists_units() {
        let mut m = Membrane::new("c");
        assert_eq!(m.control_unit_count(), 2);
        m.push_interceptor(Box::new(ActiveInterceptor::new()));
        assert_eq!(m.control_unit_count(), 3);
        assert_eq!(m.interceptor_names(), vec!["active-interceptor"]);
        assert!(m.footprint_bytes() > 0);
    }

    #[test]
    fn plan_compiles_and_fuses_by_shape() {
        let mut m = Membrane::new("c");
        assert_eq!(m.plan().fusion(), ChainFusion::Empty);
        assert!(m.plan().is_fully_compiled());

        m.push_interceptor(Box::new(ActiveInterceptor::new()));
        assert_eq!(m.plan().fusion(), ChainFusion::FusedActive);
        assert!(m.plan().is_fully_compiled(), "Active flattens to a step");

        m.push_interceptor(Box::new(JitterMonitor::new()));
        assert_eq!(m.plan().fusion(), ChainFusion::Walk);
        assert!(m.plan().is_fully_compiled(), "Jitter flattens too");
        assert_eq!(m.plan().len(), 2);

        // Removing recompiles back down to the fused shape.
        assert!(m.remove_interceptor("jitter-monitor"));
        assert_eq!(m.plan().fusion(), ChainFusion::FusedActive);
    }

    /// The acceptance property of the compiled plan: known interceptors
    /// leave no virtual dispatch on the invoke path, and an unknown one is
    /// visible as the `Dyn` fallback.
    #[test]
    fn unknown_interceptors_fall_back_to_dyn_steps() {
        #[derive(Debug)]
        struct Opaque;
        impl Interceptor for Opaque {
            fn name(&self) -> &str {
                "opaque"
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any + Send> {
                self
            }
            fn pre(
                &mut self,
                _mm: &mut MemoryManager,
                _ctx: &mut MemoryContext,
            ) -> Result<(), FrameworkError> {
                Ok(())
            }
            fn post(
                &mut self,
                _mm: &mut MemoryManager,
                _ctx: &mut MemoryContext,
            ) -> Result<(), FrameworkError> {
                Ok(())
            }
        }
        let mut m = Membrane::new("c");
        m.lifecycle.start();
        m.push_interceptor(Box::new(ActiveInterceptor::new()));
        m.push_interceptor(Box::new(Opaque));
        assert!(!m.plan().is_fully_compiled());
        assert_eq!(m.plan().fusion(), ChainFusion::Walk);
        let mut mm = MemoryManager::default();
        let mut ctx = mm.context(ThreadKind::Realtime);
        m.pre_invoke(&mut mm, &mut ctx).unwrap();
        m.post_invoke(&mut mm, &mut ctx).unwrap();
        assert_eq!(m.interceptor_names(), vec!["active-interceptor", "opaque"]);
    }

    #[test]
    fn take_and_insert_restore_the_plan_byte_identically() {
        let mut mm = MemoryManager::default();
        let mut ctx = mm.context(ThreadKind::Realtime);
        let mut m = Membrane::new("c");
        m.lifecycle.start();
        m.push_interceptor(Box::new(ActiveInterceptor::new()));
        m.push_interceptor(Box::new(JitterMonitor::new()));
        for _ in 0..3 {
            m.pre_invoke(&mut mm, &mut ctx).unwrap();
            m.post_invoke(&mut mm, &mut ctx).unwrap();
        }
        let gaps_before = m
            .interceptor("jitter-monitor")
            .and_then(|i| i.as_any().downcast_ref::<JitterMonitor>())
            .map(|j| j.gaps_ns().len())
            .unwrap();
        assert_eq!(gaps_before, 2);

        let (ix, step) = m.take_interceptor("jitter-monitor").unwrap();
        assert_eq!(ix, 1);
        assert_eq!(m.plan().fusion(), ChainFusion::FusedActive);
        // Rollback: splice the very step back — position and state intact.
        m.insert_step(ix, step);
        assert_eq!(m.plan().fusion(), ChainFusion::Walk);
        assert_eq!(
            m.interceptor_names(),
            vec!["active-interceptor", "jitter-monitor"]
        );
        let gaps_after = m
            .interceptor("jitter-monitor")
            .and_then(|i| i.as_any().downcast_ref::<JitterMonitor>())
            .map(|j| j.gaps_ns().len())
            .unwrap();
        assert_eq!(gaps_after, gaps_before, "monitor state survived the cycle");
    }

    /// Satellite: when several interceptors fail in one unwind, the first
    /// error survives and the suppressed count is attached — both on the
    /// reverse post walk and on the partial unwind of a failed pre.
    #[test]
    fn suppressed_unwind_errors_are_counted() {
        #[derive(Debug)]
        struct Failing {
            fail_pre: bool,
            label: &'static str,
        }
        impl Interceptor for Failing {
            fn name(&self) -> &str {
                self.label
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any + Send> {
                self
            }
            fn pre(
                &mut self,
                _mm: &mut MemoryManager,
                _ctx: &mut MemoryContext,
            ) -> Result<(), FrameworkError> {
                if self.fail_pre {
                    Err(FrameworkError::Content(format!(
                        "{} pre failed",
                        self.label
                    )))
                } else {
                    Ok(())
                }
            }
            fn post(
                &mut self,
                _mm: &mut MemoryManager,
                _ctx: &mut MemoryContext,
            ) -> Result<(), FrameworkError> {
                Err(FrameworkError::Content(format!(
                    "{} post failed",
                    self.label
                )))
            }
        }

        // Two failing posts: the reverse walk reports the *last* step's
        // error first (it unwinds in reverse) and counts the other.
        let mut mm = MemoryManager::default();
        let mut ctx = mm.context(ThreadKind::Realtime);
        let mut m = Membrane::new("c");
        m.lifecycle.start();
        m.push_interceptor(Box::new(Failing {
            fail_pre: false,
            label: "f1",
        }));
        m.push_interceptor(Box::new(Failing {
            fail_pre: false,
            label: "f2",
        }));
        m.pre_invoke(&mut mm, &mut ctx).unwrap();
        let err = m.post_invoke(&mut mm, &mut ctx).unwrap_err();
        let FrameworkError::Unwind { first, suppressed } = &err else {
            panic!("expected Unwind, got {err}");
        };
        assert_eq!(*suppressed, 1, "one further post error suppressed");
        assert!(first.to_string().contains("f2 post failed"));

        // Partial unwind of a failed pre: steps before the failing one are
        // unwound via post; their failures are counted, the pre error wins.
        let mut m = Membrane::new("c");
        m.lifecycle.start();
        m.push_interceptor(Box::new(Failing {
            fail_pre: false,
            label: "g1",
        }));
        m.push_interceptor(Box::new(Failing {
            fail_pre: false,
            label: "g2",
        }));
        m.push_interceptor(Box::new(Failing {
            fail_pre: true,
            label: "g3",
        }));
        let err = m.pre_invoke(&mut mm, &mut ctx).unwrap_err();
        let FrameworkError::Unwind { first, suppressed } = &err else {
            panic!("expected Unwind, got {err}");
        };
        assert_eq!(*suppressed, 2, "both unwind posts failed and were counted");
        assert!(first.to_string().contains("g3 pre failed"));
    }
}
