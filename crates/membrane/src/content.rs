//! The contract between the framework and functional code.
//!
//! Developers "implement only component content classes" (§3.3). In this
//! reproduction a content class is a type implementing [`Content`]: it
//! receives invocations on its server interfaces and emits calls on its
//! client interfaces through the [`Ports`] façade — never holding direct
//! references to other components. Everything else (activation, buffering,
//! memory-area choreography) is the membrane's and engine's business.

use std::any::Any;
use std::cell::Cell;
use std::fmt::Debug;
use std::sync::Arc;

use crate::error::FrameworkError;

/// Message payload moved along bindings.
///
/// Blanket-implemented: any `'static` type that is `Clone + Default +
/// Debug + Send` qualifies. `Clone` enables the handoff (deep-copy)
/// pattern; `Default` gives the engine a neutral value for buffer priming;
/// `Send` lets messages cross thread-domain shards — under the parallel
/// runtime every domain ticks on its own OS thread and cross-domain
/// messages move through wait-free SPSC rings, so a payload must be safe
/// to hand to another thread by value.
pub trait Payload: Any + Clone + Default + Debug + Send + 'static {}

impl<T: Any + Clone + Default + Debug + Send + 'static> Payload for T {}

/// Result of a content invocation.
pub type InvokeResult = Result<(), FrameworkError>;

/// A dense, deployment-scoped client-port id.
///
/// Ids are interned by the dispatch plan at deploy/rebind time: every
/// distinct client-port *name* in the deployment gets one id, so interned
/// dispatch is a jump-table index instead of a per-call string scan. Ids
/// are only meaningful within the deployment that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortId(pub u16);

/// Memoization state of an [`InternedPort`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InternState {
    /// Not yet resolved against the active deployment.
    Unresolved,
    /// Resolved to a dense id: dispatch through the jump table.
    Interned(PortId),
    /// The active `Ports` façade does not intern (or the name is outside
    /// the deployment's intern universe): dispatch by name forever.
    Fallback,
}

/// A client-port handle that interns its name on first use.
///
/// Content classes hold one per client interface (`const`-constructible,
/// so `static` handles work too) and route calls through it; the first
/// call asks the façade to intern the name, and every later call reuses
/// the dense id. Façades that don't intern — test doubles, the reified
/// SOLEIL membrane before plan compilation — fall back to the string path
/// transparently.
///
/// The memoized state lives in a `Cell`: content is `Send` but never
/// shared between threads (each instance belongs to exactly one
/// thread-domain engine), so no synchronization is needed.
///
/// The memo is **generation-stamped**: ids are only meaningful against the
/// dispatch plan that interned them, so the handle remembers the façade's
/// [`Ports::intern_generation`] alongside the id and re-interns whenever
/// the generations differ. That makes a memoized id safe across rebinds
/// (the engine mints a fresh generation when it recompiles jump tables)
/// and across deployments (a `static` handle reached from two deployments
/// — or from two thread-domain shards, each with its own port universe —
/// sees two distinct generations and never replays one plan's id against
/// the other's table).
#[derive(Debug)]
pub struct InternedPort {
    name: &'static str,
    state: Cell<InternState>,
    generation: Cell<u32>,
}

impl InternedPort {
    /// Creates an unresolved handle for `name`.
    pub const fn new(name: &'static str) -> Self {
        InternedPort {
            name,
            state: Cell::new(InternState::Unresolved),
            generation: Cell::new(0),
        }
    }

    /// The client-port name this handle dispatches through.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn resolve<P: Payload>(&self, out: &mut dyn Ports<P>) -> InternState {
        let generation = out.intern_generation();
        let memoized = self.state.get();
        if memoized == InternState::Unresolved || self.generation.get() != generation {
            let next = match out.intern(self.name) {
                Some(id) => InternState::Interned(id),
                None => InternState::Fallback,
            };
            self.state.set(next);
            self.generation.set(generation);
            return next;
        }
        memoized
    }

    /// Synchronous call through this port (interned when possible).
    ///
    /// # Errors
    ///
    /// As [`Ports::call`].
    pub fn call<P: Payload>(&self, out: &mut dyn Ports<P>, msg: &mut P) -> InvokeResult {
        match self.resolve(out) {
            InternState::Interned(id) => out.call_interned(id, msg),
            _ => out.call(self.name, msg),
        }
    }

    /// Asynchronous send through this port (interned when possible).
    ///
    /// # Errors
    ///
    /// As [`Ports::send`].
    pub fn send<P: Payload>(&self, out: &mut dyn Ports<P>, msg: P) -> InvokeResult {
        match self.resolve(out) {
            InternState::Interned(id) => out.send_interned(id, msg),
            _ => out.send(self.name, msg),
        }
    }
}

/// The outgoing-call façade handed to content during an invocation.
///
/// `call` performs a synchronous, nested, run-to-completion invocation
/// through the named *client* interface; `send` enqueues a message on an
/// asynchronous binding. Both resolve the actual target through the
/// binding infrastructure of the active generation mode.
pub trait Ports<P: Payload> {
    /// Synchronous call through `client_port`. The message is passed by
    /// mutable reference so the callee can write results into it.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Binding`] for unbound ports; callee errors
    /// propagate.
    fn call(&mut self, client_port: &str, msg: &mut P) -> InvokeResult;

    /// Asynchronous send through `client_port`: the message is moved into
    /// the binding's bounded buffer; the consumer activates later.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Binding`] for unbound or synchronous ports.
    fn send(&mut self, client_port: &str, msg: P) -> InvokeResult;

    /// Interns `client_port` into the deployment's dense id space, or
    /// `None` when this façade dispatches by name only (the default).
    fn intern(&self, client_port: &str) -> Option<PortId> {
        let _ = client_port;
        None
    }

    /// The generation of the dispatch plan behind this façade. An
    /// [`InternedPort`] memo is valid only while this value matches the one
    /// stamped at intern time: engines mint a globally unique generation
    /// per compiled plan and re-mint on every rebind or jump-table
    /// recompilation, so live memos re-intern instead of dispatching a
    /// stale id through a shifted table. Name-only façades keep the
    /// default `0`.
    fn intern_generation(&self) -> u32 {
        0
    }

    /// Synchronous call through an interned id. Façades that returned the
    /// id from [`Ports::intern`] must accept it here; the default refuses,
    /// keeping name-only façades honest.
    ///
    /// # Errors
    ///
    /// As [`Ports::call`]; additionally [`FrameworkError::Binding`] when
    /// this façade does not intern.
    fn call_interned(&mut self, id: PortId, msg: &mut P) -> InvokeResult {
        let _ = msg;
        Err(FrameworkError::Binding(format!(
            "port id {} used against a name-only port façade",
            id.0
        )))
    }

    /// Asynchronous send through an interned id (see
    /// [`Ports::call_interned`]).
    ///
    /// # Errors
    ///
    /// As [`Ports::send`]; additionally [`FrameworkError::Binding`] when
    /// this façade does not intern.
    fn send_interned(&mut self, id: PortId, msg: P) -> InvokeResult {
        let _ = msg;
        Err(FrameworkError::Binding(format!(
            "port id {} used against a name-only port façade",
            id.0
        )))
    }
}

/// A functional implementation ("content class").
///
/// ```
/// use soleil_membrane::content::{Content, InvokeResult, Ports};
///
/// /// Doubles every sample and forwards it.
/// #[derive(Debug, Default)]
/// struct Doubler;
///
/// impl Content<i64> for Doubler {
///     fn on_invoke(&mut self, port: &str, msg: &mut i64, out: &mut dyn Ports<i64>) -> InvokeResult {
///         assert_eq!(port, "in");
///         *msg *= 2;
///         out.send("out", *msg)
///     }
/// }
/// ```
///
/// Content is `Send`: a component instance lives inside exactly one
/// thread-domain engine, and the parallel runtime moves that engine (and
/// everything in it) onto its own OS thread. Shared observation state in a
/// content class therefore uses `Arc` + atomics, not `Rc<Cell<_>>`.
pub trait Content<P: Payload>: Debug + Send {
    /// Handles an invocation arriving on server interface `port`.
    ///
    /// # Errors
    ///
    /// Implementations report business failures as
    /// [`FrameworkError::Content`]; framework failures from `out` calls
    /// should be propagated unchanged.
    fn on_invoke(&mut self, port: &str, msg: &mut P, out: &mut dyn Ports<P>) -> InvokeResult;

    /// Called once when the component starts (lifecycle hook).
    fn on_start(&mut self) {}

    /// Called once when the component stops (lifecycle hook).
    fn on_stop(&mut self) {}

    /// Approximate bytes of functional state, charged to the component's
    /// memory area at bootstrap.
    fn state_bytes(&self) -> usize {
        std::mem::size_of_val(self)
    }

    /// Opt-in **Checkpoint capability**: serializes the warm state worth
    /// carrying across a supervised restart into `image` and returns
    /// `true`. The default returns `false` — the component has no
    /// checkpointable state and restarts cold.
    ///
    /// The engine hands in a [`StateImage`] preallocated to the
    /// component's [`state_bytes`](Content::state_bytes) bound (the bytes
    /// are charged to the component's allocation area when checkpointing
    /// is enabled), already [cleared](StateImage::clear). Implementations
    /// write through the `StateImage` writers and must not allocate:
    /// captures run on the supervised-restart path and, on a configurable
    /// cadence, at healthy activation boundaries. Writes beyond the bound
    /// are refused and flag the image [overflowed](StateImage::overflowed)
    /// rather than growing it.
    fn checkpoint(&self, image: &mut StateImage) -> bool {
        let _ = image;
        false
    }

    /// The restore half of the Checkpoint capability: installs warm state
    /// captured by [`checkpoint`](Content::checkpoint) into a freshly
    /// constructed instance. Called by the engine after a supervised
    /// restart replaced the faulted instance; the image is either the one
    /// captured at the restart boundary (healthy faults) or the last
    /// healthy cadence capture (poisoned membranes, whose final state may
    /// be half-mutated by the panic's unwind).
    fn restore(&mut self, image: &StateImage) {
        let _ = image;
    }
}

/// A bounded, reusable byte image of a component's warm state — the wire
/// format of the [`Content::checkpoint`]/[`Content::restore`] capability.
///
/// Storage is allocated **once**, at the declared limit, when
/// checkpointing is enabled for a component; every later capture reuses
/// it, so cadence captures and restart-boundary captures are
/// allocation-free. Writes past the limit are refused and latch the
/// [`overflowed`](StateImage::overflowed) flag instead of growing the
/// buffer — a checkpoint must stay inside the state bytes charged to the
/// component's memory area.
///
/// ```
/// use soleil_membrane::content::StateImage;
///
/// let mut img = StateImage::with_limit(16);
/// assert!(img.write_u64(7));
/// assert!(img.write_u64(11));
/// assert!(!img.write_u64(13), "third word exceeds the 16-byte bound");
/// assert!(img.overflowed());
/// assert_eq!(img.read_u64(0), Some(7));
/// assert_eq!(img.read_u64(8), Some(11));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateImage {
    bytes: Vec<u8>,
    limit: usize,
    overflowed: bool,
}

impl StateImage {
    /// An empty image whose captures may hold up to `limit` bytes; the
    /// backing storage is fully preallocated here.
    pub fn with_limit(limit: usize) -> Self {
        StateImage {
            bytes: Vec::with_capacity(limit),
            limit,
            overflowed: false,
        }
    }

    /// The capture bound, in bytes.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Bytes written by the current capture.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// True once a write was refused for exceeding the limit (latched
    /// until the next [`clear`](StateImage::clear)).
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Resets the image for a fresh capture (storage is kept).
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.overflowed = false;
    }

    /// The captured bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Appends raw bytes; `false` (and the overflow latch) when the write
    /// would exceed the limit — the image is left unchanged in that case.
    pub fn write_bytes(&mut self, data: &[u8]) -> bool {
        if self.bytes.len() + data.len() > self.limit {
            self.overflowed = true;
            return false;
        }
        self.bytes.extend_from_slice(data);
        true
    }

    /// Appends one little-endian `u64`; same refusal contract as
    /// [`write_bytes`](StateImage::write_bytes).
    pub fn write_u64(&mut self, v: u64) -> bool {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Reads the little-endian `u64` at byte `offset`, if fully captured.
    pub fn read_u64(&self, offset: usize) -> Option<u64> {
        let end = offset.checked_add(8)?;
        let slice = self.bytes.get(offset..end)?;
        Some(u64::from_le_bytes(slice.try_into().expect("8-byte slice")))
    }

    /// Bytes of backing storage (footprint accounting).
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.bytes.capacity()
    }
}

/// A shared constructor for one content class.
///
/// `Arc` rather than `Box` so the runtime can keep a per-slot clone for
/// supervised restarts (a quarantined component is rebuilt from a *fresh*
/// instance); `Send + Sync` because the engine holding those clones moves
/// onto its own OS thread under the parallel runtime.
pub type ContentFactory<P> = Arc<dyn Fn() -> Box<dyn Content<P>> + Send + Sync>;

/// A factory registry mapping content-class names (the ADL's
/// `content class="..."` attribute) to constructors.
pub struct ContentRegistry<P: Payload> {
    entries: Vec<(String, ContentFactory<P>)>,
}

impl<P: Payload> ContentRegistry<P> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ContentRegistry {
            entries: Vec::new(),
        }
    }

    /// Registers a factory for `class` (later registrations shadow earlier
    /// ones).
    pub fn register(
        &mut self,
        class: impl Into<String>,
        factory: impl Fn() -> Box<dyn Content<P>> + Send + Sync + 'static,
    ) {
        self.entries.push((class.into(), Arc::new(factory)));
    }

    /// Instantiates the content class `class`.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] when no factory is registered.
    pub fn instantiate(&self, class: &str) -> Result<Box<dyn Content<P>>, FrameworkError> {
        self.entries
            .iter()
            .rev()
            .find(|(name, _)| name == class)
            .map(|(_, f)| f())
            .ok_or_else(|| {
                FrameworkError::Content(format!("no content factory registered for '{class}'"))
            })
    }

    /// The shared factory registered for `class` — the runtime clones it
    /// per slot at deploy time so supervised restarts can rebuild a fresh
    /// content instance without consulting the registry again.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] when no factory is registered.
    pub fn factory(&self, class: &str) -> Result<ContentFactory<P>, FrameworkError> {
        self.entries
            .iter()
            .rev()
            .find(|(name, _)| name == class)
            .map(|(_, f)| Arc::clone(f))
            .ok_or_else(|| {
                FrameworkError::Content(format!("no content factory registered for '{class}'"))
            })
    }

    /// Registered class names.
    pub fn classes(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }
}

impl<P: Payload> Default for ContentRegistry<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Payload> Debug for ContentRegistry<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContentRegistry")
            .field("classes", &self.classes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct Echo;
    impl Content<u32> for Echo {
        fn on_invoke(
            &mut self,
            _port: &str,
            msg: &mut u32,
            _out: &mut dyn Ports<u32>,
        ) -> InvokeResult {
            *msg += 1;
            Ok(())
        }
    }

    struct NullPorts;
    impl Ports<u32> for NullPorts {
        fn call(&mut self, port: &str, _msg: &mut u32) -> InvokeResult {
            Err(FrameworkError::Binding(format!("unbound port {port}")))
        }
        fn send(&mut self, port: &str, _msg: u32) -> InvokeResult {
            Err(FrameworkError::Binding(format!("unbound port {port}")))
        }
    }

    #[test]
    fn registry_instantiates_and_shadows() {
        let mut reg: ContentRegistry<u32> = ContentRegistry::new();
        reg.register("Echo", || Box::new(Echo));
        let mut c = reg.instantiate("Echo").unwrap();
        let mut v = 1u32;
        c.on_invoke("in", &mut v, &mut NullPorts).unwrap();
        assert_eq!(v, 2);
        assert!(reg.instantiate("Missing").is_err());
        assert_eq!(reg.classes(), vec!["Echo"]);
    }

    #[test]
    fn factory_clones_share_the_constructor() {
        let mut reg: ContentRegistry<u32> = ContentRegistry::new();
        reg.register("Echo", || Box::new(Echo));
        let f = reg.factory("Echo").unwrap();
        // Each call builds a fresh instance — the restart contract.
        let mut a = f();
        let mut b = f();
        let mut v = 0u32;
        a.on_invoke("in", &mut v, &mut NullPorts).unwrap();
        b.on_invoke("in", &mut v, &mut NullPorts).unwrap();
        assert_eq!(v, 2);
        assert!(reg.factory("Missing").is_err());
        // Factories are Send + Sync: engines move across threads.
        fn check<T: Send + Sync>(_t: &T) {}
        check(&f);
    }

    #[test]
    fn default_state_bytes_reflects_size() {
        let e = Echo;
        assert_eq!(Content::<u32>::state_bytes(&e), 0); // zero-sized struct
    }

    #[test]
    fn interned_port_falls_back_on_name_only_facades() {
        // NullPorts has no intern support: the handle must memoize the
        // fallback and keep dispatching by name.
        let port = InternedPort::new("out");
        assert_eq!(port.name(), "out");
        let mut v = 0u32;
        assert!(port.call(&mut NullPorts, &mut v).is_err());
        assert_eq!(port.state.get(), InternState::Fallback);
        assert!(port.send(&mut NullPorts, 1).is_err());
    }

    /// Counts interned vs. string dispatches.
    #[derive(Default)]
    struct CountingPorts {
        interned_calls: u32,
        string_calls: u32,
    }
    impl Ports<u32> for CountingPorts {
        fn call(&mut self, _port: &str, _msg: &mut u32) -> InvokeResult {
            self.string_calls += 1;
            Ok(())
        }
        fn send(&mut self, _port: &str, _msg: u32) -> InvokeResult {
            self.string_calls += 1;
            Ok(())
        }
        fn intern(&self, client_port: &str) -> Option<PortId> {
            (client_port == "out").then_some(PortId(7))
        }
        fn call_interned(&mut self, id: PortId, _msg: &mut u32) -> InvokeResult {
            assert_eq!(id, PortId(7));
            self.interned_calls += 1;
            Ok(())
        }
        fn send_interned(&mut self, id: PortId, _msg: u32) -> InvokeResult {
            assert_eq!(id, PortId(7));
            self.interned_calls += 1;
            Ok(())
        }
    }

    #[test]
    fn interned_port_memoizes_dense_id() {
        let port = InternedPort::new("out");
        let mut p = CountingPorts::default();
        let mut v = 0u32;
        port.call(&mut p, &mut v).unwrap();
        port.send(&mut p, 1).unwrap();
        assert_eq!(port.state.get(), InternState::Interned(PortId(7)));
        assert_eq!(p.interned_calls, 2);
        assert_eq!(p.string_calls, 0);

        // A name outside the intern universe memoizes the fallback.
        let stray = InternedPort::new("stray");
        stray.call(&mut p, &mut v).unwrap();
        assert_eq!(stray.state.get(), InternState::Fallback);
        assert_eq!(p.string_calls, 1);
    }

    /// A façade whose dispatch plan can be "recompiled": each generation
    /// interns the same name to a different id, and dispatch asserts the
    /// id belongs to the current generation.
    struct Regenerating {
        generation: u32,
        calls: u32,
    }
    impl Ports<u32> for Regenerating {
        fn call(&mut self, port: &str, _msg: &mut u32) -> InvokeResult {
            Err(FrameworkError::Binding(format!(
                "string dispatch of {port}"
            )))
        }
        fn send(&mut self, port: &str, _msg: u32) -> InvokeResult {
            Err(FrameworkError::Binding(format!(
                "string dispatch of {port}"
            )))
        }
        fn intern(&self, _client_port: &str) -> Option<PortId> {
            Some(PortId(self.generation as u16))
        }
        fn intern_generation(&self) -> u32 {
            self.generation
        }
        fn call_interned(&mut self, id: PortId, _msg: &mut u32) -> InvokeResult {
            assert_eq!(
                u32::from(id.0),
                self.generation,
                "memoized id from a stale generation reached dispatch"
            );
            self.calls += 1;
            Ok(())
        }
        fn send_interned(&mut self, id: PortId, msg: u32) -> InvokeResult {
            let mut m = msg;
            self.call_interned(id, &mut m)
        }
    }

    #[test]
    fn stale_memo_reinterns_when_the_plan_generation_changes() {
        let port = InternedPort::new("out");
        let mut p = Regenerating {
            generation: 1,
            calls: 0,
        };
        let mut v = 0u32;
        port.call(&mut p, &mut v).unwrap();
        assert_eq!(port.state.get(), InternState::Interned(PortId(1)));

        // "Rebind": the plan recompiles under a fresh generation. The memo
        // must be refused and re-interned, never replayed.
        p.generation = 2;
        port.call(&mut p, &mut v).unwrap();
        port.send(&mut p, 0).unwrap();
        assert_eq!(port.state.get(), InternState::Interned(PortId(2)));
        assert_eq!(p.calls, 3);

        // Same handle against a name-only façade (generation 0): the memo
        // from generation 2 is stale there too — it falls back to strings
        // instead of replaying id 2.
        assert!(port.call(&mut NullPorts, &mut v).is_err());
        assert_eq!(port.state.get(), InternState::Fallback);

        // And back: generation 2 is re-interned, not trusted.
        port.call(&mut p, &mut v).unwrap();
        assert_eq!(port.state.get(), InternState::Interned(PortId(2)));
    }

    #[test]
    fn default_interned_dispatch_refuses_with_id_in_message() {
        let mut v = 0u32;
        let err = Ports::call_interned(&mut NullPorts, PortId(3), &mut v).unwrap_err();
        assert!(err.to_string().contains("port id 3"));
        assert!(Ports::send_interned(&mut NullPorts, PortId(3), 0).is_err());
    }
}
