//! The contract between the framework and functional code.
//!
//! Developers "implement only component content classes" (§3.3). In this
//! reproduction a content class is a type implementing [`Content`]: it
//! receives invocations on its server interfaces and emits calls on its
//! client interfaces through the [`Ports`] façade — never holding direct
//! references to other components. Everything else (activation, buffering,
//! memory-area choreography) is the membrane's and engine's business.

use std::any::Any;
use std::fmt::Debug;

use crate::error::FrameworkError;

/// Message payload moved along bindings.
///
/// Blanket-implemented: any `'static` type that is `Clone + Default +
/// Debug + Send` qualifies. `Clone` enables the handoff (deep-copy)
/// pattern; `Default` gives the engine a neutral value for buffer priming;
/// `Send` lets messages cross thread-domain shards — under the parallel
/// runtime every domain ticks on its own OS thread and cross-domain
/// messages move through wait-free SPSC rings, so a payload must be safe
/// to hand to another thread by value.
pub trait Payload: Any + Clone + Default + Debug + Send + 'static {}

impl<T: Any + Clone + Default + Debug + Send + 'static> Payload for T {}

/// Result of a content invocation.
pub type InvokeResult = Result<(), FrameworkError>;

/// The outgoing-call façade handed to content during an invocation.
///
/// `call` performs a synchronous, nested, run-to-completion invocation
/// through the named *client* interface; `send` enqueues a message on an
/// asynchronous binding. Both resolve the actual target through the
/// binding infrastructure of the active generation mode.
pub trait Ports<P: Payload> {
    /// Synchronous call through `client_port`. The message is passed by
    /// mutable reference so the callee can write results into it.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Binding`] for unbound ports; callee errors
    /// propagate.
    fn call(&mut self, client_port: &str, msg: &mut P) -> InvokeResult;

    /// Asynchronous send through `client_port`: the message is moved into
    /// the binding's bounded buffer; the consumer activates later.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Binding`] for unbound or synchronous ports.
    fn send(&mut self, client_port: &str, msg: P) -> InvokeResult;
}

/// A functional implementation ("content class").
///
/// ```
/// use soleil_membrane::content::{Content, InvokeResult, Ports};
///
/// /// Doubles every sample and forwards it.
/// #[derive(Debug, Default)]
/// struct Doubler;
///
/// impl Content<i64> for Doubler {
///     fn on_invoke(&mut self, port: &str, msg: &mut i64, out: &mut dyn Ports<i64>) -> InvokeResult {
///         assert_eq!(port, "in");
///         *msg *= 2;
///         out.send("out", *msg)
///     }
/// }
/// ```
///
/// Content is `Send`: a component instance lives inside exactly one
/// thread-domain engine, and the parallel runtime moves that engine (and
/// everything in it) onto its own OS thread. Shared observation state in a
/// content class therefore uses `Arc` + atomics, not `Rc<Cell<_>>`.
pub trait Content<P: Payload>: Debug + Send {
    /// Handles an invocation arriving on server interface `port`.
    ///
    /// # Errors
    ///
    /// Implementations report business failures as
    /// [`FrameworkError::Content`]; framework failures from `out` calls
    /// should be propagated unchanged.
    fn on_invoke(&mut self, port: &str, msg: &mut P, out: &mut dyn Ports<P>) -> InvokeResult;

    /// Called once when the component starts (lifecycle hook).
    fn on_start(&mut self) {}

    /// Called once when the component stops (lifecycle hook).
    fn on_stop(&mut self) {}

    /// Approximate bytes of functional state, charged to the component's
    /// memory area at bootstrap.
    fn state_bytes(&self) -> usize {
        std::mem::size_of_val(self)
    }
}

/// A boxed constructor for one content class.
pub type ContentFactory<P> = Box<dyn Fn() -> Box<dyn Content<P>>>;

/// A factory registry mapping content-class names (the ADL's
/// `content class="..."` attribute) to constructors.
pub struct ContentRegistry<P: Payload> {
    entries: Vec<(String, ContentFactory<P>)>,
}

impl<P: Payload> ContentRegistry<P> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ContentRegistry {
            entries: Vec::new(),
        }
    }

    /// Registers a factory for `class` (later registrations shadow earlier
    /// ones).
    pub fn register(
        &mut self,
        class: impl Into<String>,
        factory: impl Fn() -> Box<dyn Content<P>> + 'static,
    ) {
        self.entries.push((class.into(), Box::new(factory)));
    }

    /// Instantiates the content class `class`.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] when no factory is registered.
    pub fn instantiate(&self, class: &str) -> Result<Box<dyn Content<P>>, FrameworkError> {
        self.entries
            .iter()
            .rev()
            .find(|(name, _)| name == class)
            .map(|(_, f)| f())
            .ok_or_else(|| {
                FrameworkError::Content(format!("no content factory registered for '{class}'"))
            })
    }

    /// Registered class names.
    pub fn classes(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }
}

impl<P: Payload> Default for ContentRegistry<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Payload> Debug for ContentRegistry<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContentRegistry")
            .field("classes", &self.classes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct Echo;
    impl Content<u32> for Echo {
        fn on_invoke(
            &mut self,
            _port: &str,
            msg: &mut u32,
            _out: &mut dyn Ports<u32>,
        ) -> InvokeResult {
            *msg += 1;
            Ok(())
        }
    }

    struct NullPorts;
    impl Ports<u32> for NullPorts {
        fn call(&mut self, port: &str, _msg: &mut u32) -> InvokeResult {
            Err(FrameworkError::Binding(format!("unbound port {port}")))
        }
        fn send(&mut self, port: &str, _msg: u32) -> InvokeResult {
            Err(FrameworkError::Binding(format!("unbound port {port}")))
        }
    }

    #[test]
    fn registry_instantiates_and_shadows() {
        let mut reg: ContentRegistry<u32> = ContentRegistry::new();
        reg.register("Echo", || Box::new(Echo));
        let mut c = reg.instantiate("Echo").unwrap();
        let mut v = 1u32;
        c.on_invoke("in", &mut v, &mut NullPorts).unwrap();
        assert_eq!(v, 2);
        assert!(reg.instantiate("Missing").is_err());
        assert_eq!(reg.classes(), vec!["Echo"]);
    }

    #[test]
    fn default_state_bytes_reflects_size() {
        let e = Echo;
        assert_eq!(Content::<u32>::state_bytes(&e), 0); // zero-sized struct
    }
}
