//! RTSJ-oriented interceptors (§4.1).
//!
//! Interceptors are "special control components deployed on component
//! interfaces to arbitrate communication". Two are RTSJ-specific:
//!
//! * [`ActiveInterceptor`] — enforces the run-to-completion execution model
//!   of active components (no re-entrant activation) and counts
//!   activations;
//! * [`MemoryInterceptor`] — deployed on every binding that crosses
//!   MemoryAreas; executes the [`PatternKind`] selected at design time
//!   (scope entry, allocation-context switching, transient scopes for
//!   per-invocation temporaries).
//!
//! Interceptors expose a split `pre`/`post` protocol so the membrane can
//! run them around the content invocation.

use std::fmt::Debug;

use rtsj::memory::{AreaId, MemoryContext, MemoryManager};
use soleil_patterns::PatternKind;

use crate::error::FrameworkError;

/// A control component deployed on a component interface.
///
/// `Send` is a supertrait: interceptors live inside a membrane, membranes
/// live inside a thread-domain engine, and the parallel runtime moves each
/// engine onto its own OS thread.
pub trait Interceptor: Debug + Send {
    /// Stable name for introspection.
    fn name(&self) -> &str;

    /// Downcast support, so membrane-level reconfiguration can reach a
    /// concrete interceptor installed at runtime.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Owned downcast support: surrenders the interceptor to the plan
    /// compiler, which flattens known types into [`InterceptStep`] enum
    /// variants (unknown types stay behind the `Dyn` fallback). Every
    /// implementation is `fn into_any(self: Box<Self>) -> … { self }`.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any + Send>;

    /// Runs before the content invocation.
    ///
    /// # Errors
    ///
    /// Implementation-specific; a failing `pre` aborts the invocation.
    fn pre(
        &mut self,
        mm: &mut MemoryManager,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError>;

    /// Runs after the content invocation (also on unwind).
    ///
    /// # Errors
    ///
    /// Implementation-specific.
    fn post(
        &mut self,
        mm: &mut MemoryManager,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError>;

    /// Estimated bytes of interceptor state (Fig. 7(c) accounting).
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of_val(self)
    }
}

// ---------------------------------------------------------------------------
// ActiveInterceptor
// ---------------------------------------------------------------------------

/// Run-to-completion guard for active components.
///
/// The paper: active interceptors "implement a run-to-completion execution
/// model for each incoming invocation from their server interfaces" —
/// i.e. an activation must finish before the next may begin.
#[derive(Debug, Default)]
pub struct ActiveInterceptor {
    busy: bool,
    activations: u64,
}

impl ActiveInterceptor {
    /// Creates an idle guard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total completed or in-flight activations.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Clears the busy flag without running `post` — the supervised-restart
    /// path for a guard left busy by a panic that skipped the unwind.
    pub fn reset(&mut self) {
        self.busy = false;
    }
}

impl Interceptor for ActiveInterceptor {
    fn name(&self) -> &str {
        "active-interceptor"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any + Send> {
        self
    }

    fn pre(
        &mut self,
        _mm: &mut MemoryManager,
        _ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        if self.busy {
            return Err(FrameworkError::RunToCompletion(
                "re-entrant activation of an active component".into(),
            ));
        }
        self.busy = true;
        self.activations += 1;
        Ok(())
    }

    fn post(
        &mut self,
        _mm: &mut MemoryManager,
        _ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        self.busy = false;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// MemoryInterceptor
// ---------------------------------------------------------------------------

/// What the memory interceptor must do around an invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryPlan {
    /// The design-time pattern for this binding.
    pub pattern: PatternKind,
    /// The server component's area (switched to by `ExecuteInOuter`).
    pub server_area: AreaId,
    /// For `EnterInner`: the scoped areas to enter, outermost first,
    /// *relative* to the caller's scope stack (common ancestors excluded —
    /// re-entering a scope already on the stack would violate the single
    /// parent rule).
    pub enter_path: Vec<AreaId>,
    /// Optional transient scope entered per invocation for temporaries;
    /// reclaimed on exit (the classic scoped-memory usage).
    pub transient_scope: Option<AreaId>,
    /// Build-time proof that `server_area` is always on the invoking
    /// component's scope stack when this plan runs (`ExecuteInOuter` only).
    /// When set, the per-crossing scope-stack containment walk is replaced
    /// by the substrate's prechecked entry — the design-time validation
    /// licensing the removal of a runtime check, exactly as the paper's
    /// generator does for its merged modes.
    pub outer_on_stack: bool,
}

impl MemoryPlan {
    /// A plan that performs no memory choreography (same-area binding).
    pub fn direct(server_area: AreaId) -> Self {
        MemoryPlan {
            pattern: PatternKind::Direct,
            server_area,
            enter_path: Vec::new(),
            transient_scope: None,
            outer_on_stack: false,
        }
    }

    /// An `EnterInner` plan entering `path` (outermost first).
    pub fn enter_inner(server_area: AreaId, path: Vec<AreaId>) -> Self {
        MemoryPlan {
            pattern: PatternKind::EnterInner,
            server_area,
            enter_path: path,
            transient_scope: None,
            outer_on_stack: false,
        }
    }

    /// Compiles this plan's per-invocation **fused gate**: the cross-scope
    /// pattern selector collapsed into two bits settled at deploy/rebind
    /// time. When `skip_choreography` holds, the plan *proves* that
    /// [`MemoryInterceptor::pre`]/[`post`](MemoryInterceptor::post) are
    /// no-ops (no scope entry, no allocation-context switch, no transient
    /// scope), so the engine may skip both calls entirely — the same
    /// design-time-proof-removes-runtime-work idiom as
    /// `begin_execute_in_area_prechecked`.
    pub fn fast_gate(&self) -> FastGate {
        FastGate {
            skip_choreography: self.transient_scope.is_none()
                && (self.pattern == PatternKind::Direct || self.needs_copy()),
            copy: self.needs_copy(),
        }
    }

    /// True when the pattern requires the engine to deep-copy the payload
    /// across the boundary (handoff / immortal-exchange) — the single
    /// source of the copy decision for both the compiled [`FastGate`] and
    /// the full interceptor path.
    pub fn needs_copy(&self) -> bool {
        matches!(
            self.pattern,
            PatternKind::HandoffThroughParent | PatternKind::ImmortalExchange
        )
    }
}

/// A per-binding gate precomputed from the binding's [`MemoryPlan`] when
/// the membrane plan is compiled (deploy/rebind time, never per call).
///
/// The engine checks it in a single pass before a synchronous call: when
/// `skip_choreography` is set the memory interceptor's `pre`/`post` are
/// provably no-ops and both calls are elided from the hot path; `copy`
/// carries the (equally static) payload-copy decision so the fast path
/// never consults the interceptor at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastGate {
    /// Plan-time proof that `pre`/`post` perform no scope choreography.
    pub skip_choreography: bool,
    /// The engine must deep-copy the payload across the boundary
    /// (handoff / immortal-exchange patterns).
    pub copy: bool,
}

/// Executes the cross-scope pattern around each invocation (§4.1's
/// "Memory Interceptors … deployed on each binding between different
/// MemoryAreas").
#[derive(Debug)]
pub struct MemoryInterceptor {
    plan: MemoryPlan,
    crossings: u64,
}

impl MemoryInterceptor {
    /// Creates an interceptor for `plan`.
    pub fn new(plan: MemoryPlan) -> Self {
        MemoryInterceptor { plan, crossings: 0 }
    }

    /// The configured plan.
    pub fn plan(&self) -> &MemoryPlan {
        &self.plan
    }

    /// Number of boundary crossings executed.
    pub fn crossings(&self) -> u64 {
        self.crossings
    }

    /// Counts a boundary crossing executed by the engine's fused fast
    /// path, which skips `pre`/`post` entirely when the compiled
    /// [`FastGate`] proves them no-ops — the introspection counter stays
    /// truthful without the calls.
    pub fn record_crossing(&mut self) {
        self.crossings += 1;
    }

    /// True when the engine must deep-copy the payload (handoff pattern).
    pub fn needs_copy(&self) -> bool {
        self.plan.needs_copy()
    }
}

impl Interceptor for MemoryInterceptor {
    fn name(&self) -> &str {
        "memory-interceptor"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any + Send> {
        self
    }

    fn pre(
        &mut self,
        mm: &mut MemoryManager,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        self.crossings += 1;
        match self.plan.pattern {
            PatternKind::Direct => {}
            PatternKind::ExecuteInOuter => {
                if self.plan.outer_on_stack {
                    mm.begin_execute_in_area_prechecked(ctx, self.plan.server_area)?;
                } else {
                    mm.begin_execute_in_area(ctx, self.plan.server_area)?;
                }
            }
            PatternKind::EnterInner => {
                for (i, &scope) in self.plan.enter_path.iter().enumerate() {
                    if let Err(e) = mm.enter(ctx, scope) {
                        for _ in 0..i {
                            let _ = mm.exit(ctx);
                        }
                        return Err(e.into());
                    }
                }
            }
            // Copy-based patterns need no scope choreography here: the
            // engine copies the payload; buffers live in their own area.
            PatternKind::HandoffThroughParent | PatternKind::ImmortalExchange => {}
        }
        if let Some(scope) = self.plan.transient_scope {
            mm.enter(ctx, scope)?;
        }
        Ok(())
    }

    fn post(
        &mut self,
        mm: &mut MemoryManager,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        if self.plan.transient_scope.is_some() {
            mm.exit(ctx)?;
        }
        match self.plan.pattern {
            PatternKind::Direct
            | PatternKind::HandoffThroughParent
            | PatternKind::ImmortalExchange => {}
            PatternKind::ExecuteInOuter => {
                mm.end_execute_in_area(ctx)?;
            }
            PatternKind::EnterInner => {
                for _ in &self.plan.enter_path {
                    mm.exit(ctx)?;
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// JitterMonitor
// ---------------------------------------------------------------------------

/// An optional interceptor measuring inter-activation gaps in wall-clock
/// time — the "additional functionality" (§3.3) the framework can inject
/// into a membrane, and the show-piece of *membrane-level* runtime
/// reconfiguration: SOLEIL-mode systems can install it on a live component.
#[derive(Debug, Default)]
pub struct JitterMonitor {
    last: Option<std::time::Instant>,
    gaps_ns: Vec<u64>,
}

impl JitterMonitor {
    /// Creates an idle monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observed inter-activation gaps, in nanoseconds.
    pub fn gaps_ns(&self) -> &[u64] {
        &self.gaps_ns
    }

    /// Number of activations observed (gaps + 1, once started).
    pub fn observations(&self) -> usize {
        self.gaps_ns.len() + usize::from(self.last.is_some())
    }
}

impl Interceptor for JitterMonitor {
    fn name(&self) -> &str {
        "jitter-monitor"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any + Send> {
        self
    }

    fn pre(
        &mut self,
        _mm: &mut MemoryManager,
        _ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        let now = std::time::Instant::now();
        if let Some(last) = self.last.replace(now) {
            self.gaps_ns
                .push(now.duration_since(last).as_nanos() as u64);
        }
        Ok(())
    }

    fn post(
        &mut self,
        _mm: &mut MemoryManager,
        _ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

/// The fault a [`FaultInjector`] manufactured on a given activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// A content-style error returned from `pre`.
    Error,
    /// A real `panic!` raised from `pre` — exercises the activation
    /// boundary's `catch_unwind` and the membrane poison protocol.
    Panic,
    /// A busy-wait long enough to trip latency contracts, then success.
    LatencySpike,
    /// The invocation is refused with a countable drop fault.
    Drop,
}

/// Deterministic fault-injection interceptor: a seeded schedule keyed by
/// the component's activation count decides, with no wall-clock or OS
/// randomness, whether an activation faults and how. Replaying the same
/// seed against the same activation sequence reproduces the exact same
/// fault storm — the property chaos tests and the `chaos-gate` CI artifact
/// are built on.
///
/// With `rate == 0` the injector is **idle**: the `pre` hook costs one
/// branch and allocates nothing, so it can stay compiled into a production
/// plan (the zero-alloc gate deploys exactly that shape).
#[derive(Debug)]
pub struct FaultInjector {
    component: String,
    seed: u64,
    /// Fires on roughly one in `rate` activations; `0` disables.
    rate: u32,
    /// Bitmask of enabled fault kinds (see the `MENU_*` consts).
    menu: u8,
    latency_spike_ns: u64,
    /// When set, latency spikes are *recorded* instead of busy-waited:
    /// the host engine drains them via
    /// [`take_pending_spike_ns`](FaultInjector::take_pending_spike_ns)
    /// and advances its virtual clock, so simulated timelines never
    /// depend on the OS clock.
    virtual_clock: bool,
    pending_spike_ns: u64,
    activations: u64,
    injected: u64,
}

impl FaultInjector {
    /// Menu bit: injected [`InjectedFault::Error`] faults.
    pub const MENU_ERROR: u8 = 1;
    /// Menu bit: injected [`InjectedFault::Panic`] faults.
    pub const MENU_PANIC: u8 = 2;
    /// Menu bit: injected [`InjectedFault::LatencySpike`] faults.
    pub const MENU_LATENCY: u8 = 4;
    /// Menu bit: injected [`InjectedFault::Drop`] faults.
    pub const MENU_DROP: u8 = 8;
    /// Menu with every fault kind enabled.
    pub const MENU_ALL: u8 = 15;

    /// Creates an injector for `component` firing about one in `rate`
    /// activations (`0` = idle) on a seeded deterministic schedule, with
    /// every fault kind enabled.
    pub fn new(component: impl Into<String>, seed: u64, rate: u32) -> Self {
        FaultInjector {
            component: component.into(),
            seed,
            rate,
            menu: Self::MENU_ALL,
            latency_spike_ns: 50_000,
            virtual_clock: false,
            pending_spike_ns: 0,
            activations: 0,
            injected: 0,
        }
    }

    /// Restricts the fault menu to the given `MENU_*` bits.
    #[must_use]
    pub fn with_menu(mut self, menu: u8) -> Self {
        self.menu = menu & Self::MENU_ALL;
        self
    }

    /// Sets the busy-wait length of latency-spike faults.
    #[must_use]
    pub fn with_latency_spike_ns(mut self, ns: u64) -> Self {
        self.latency_spike_ns = ns;
        self
    }

    /// Routes latency spikes through the host engine's **virtual clock**
    /// instead of busy-waiting the OS clock: a spike is accumulated in the
    /// injector and drained by the engine via
    /// [`take_pending_spike_ns`](FaultInjector::take_pending_spike_ns),
    /// which advances virtual time by the spike. Use for engine-level
    /// injectors under simulated deployments — a busy-wait there would
    /// pollute the simulated timeline with wall-clock noise. (Membrane
    /// chain injectors have no engine clock in reach; leave those on the
    /// default wall-clock spike.)
    #[must_use]
    pub fn with_virtual_clock(mut self) -> Self {
        self.virtual_clock = true;
        self
    }

    /// True when latency spikes advance virtual time instead of
    /// busy-waiting.
    pub fn virtual_clock(&self) -> bool {
        self.virtual_clock
    }

    /// Drains the virtual-time spike accumulated since the last drain
    /// (zero on wall-clock injectors). The host engine calls this after
    /// every draw and advances its clock by the returned nanoseconds.
    pub fn take_pending_spike_ns(&mut self) -> u64 {
        std::mem::take(&mut self.pending_spike_ns)
    }

    /// The injector's seed (replay key).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Activations observed so far.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The deterministic schedule: what (if anything) this injector does
    /// on activation `n` (1-based). Pure — tests and replay tooling can
    /// predict a storm without running it.
    pub fn fault_at(&self, n: u64) -> Option<InjectedFault> {
        if self.rate == 0 || self.menu == 0 {
            return None;
        }
        let roll = splitmix(self.seed, n);
        if !roll.is_multiple_of(u64::from(self.rate)) {
            return None;
        }
        // Pick among the enabled kinds with the high bits of the roll.
        let mut enabled = [InjectedFault::Error; 4];
        let mut count = 0usize;
        for (bit, kind) in [
            (Self::MENU_ERROR, InjectedFault::Error),
            (Self::MENU_PANIC, InjectedFault::Panic),
            (Self::MENU_LATENCY, InjectedFault::LatencySpike),
            (Self::MENU_DROP, InjectedFault::Drop),
        ] {
            if self.menu & bit != 0 {
                enabled[count] = kind;
                count += 1;
            }
        }
        Some(enabled[((roll >> 32) % count as u64) as usize])
    }

    /// Draws the next activation from the schedule and manufactures its
    /// fault: `Ok(())` on a clean draw (or an idle injector), a typed
    /// [`FrameworkError::Faulted`] for error/drop faults, a real `panic!`
    /// for panic faults, a busy-wait then `Ok(())` for latency spikes.
    /// This is the whole injector — the [`Interceptor`] `pre` hook and the
    /// engine-level activation-boundary injector both delegate here (the
    /// latter has no memory context in hand, which is why the draw does
    /// not take one).
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Faulted`] when the schedule fires an error or
    /// drop fault on this activation.
    pub fn draw(&mut self) -> Result<(), FrameworkError> {
        self.activations += 1;
        let Some(fault) = self.fault_at(self.activations) else {
            return Ok(());
        };
        self.injected += 1;
        let n = self.activations;
        match fault {
            InjectedFault::Error => Err(FrameworkError::Faulted {
                component: self.component.clone(),
                kind: crate::error::FaultKind::Error,
                detail: format!("injected error (seed {}, activation {n})", self.seed),
            }),
            InjectedFault::Panic => {
                panic!(
                    "injected panic in '{}' (seed {}, activation {n})",
                    self.component, self.seed
                );
            }
            InjectedFault::Drop => Err(FrameworkError::Faulted {
                component: self.component.clone(),
                kind: crate::error::FaultKind::Drop,
                detail: format!("injected drop (seed {}, activation {n})", self.seed),
            }),
            InjectedFault::LatencySpike => {
                if self.virtual_clock {
                    // Recorded, not waited: the engine drains the spike
                    // and advances its virtual clock by it.
                    self.pending_spike_ns =
                        self.pending_spike_ns.saturating_add(self.latency_spike_ns);
                    return Ok(());
                }
                let start = std::time::Instant::now();
                while (start.elapsed().as_nanos() as u64) < self.latency_spike_ns {
                    std::hint::spin_loop();
                }
                Ok(())
            }
        }
    }
}

/// SplitMix64 finalizer over `(seed, n)` — a stateless, allocation-free
/// mix whose low bits are well distributed for the 1-in-`rate` draw.
fn splitmix(seed: u64, n: u64) -> u64 {
    let mut z = seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Interceptor for FaultInjector {
    fn name(&self) -> &str {
        "fault-injector"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any + Send> {
        self
    }

    fn pre(
        &mut self,
        _mm: &mut MemoryManager,
        _ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        self.draw()
    }

    fn post(
        &mut self,
        _mm: &mut MemoryManager,
        _ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        Ok(())
    }

    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.component.capacity()
    }
}

// ---------------------------------------------------------------------------
// InterceptStep — the compiled interceptor plan
// ---------------------------------------------------------------------------

/// One step of a membrane's **compiled interceptor plan**.
///
/// At build/rebind time the membrane flattens its interceptor chain into a
/// dense array of these steps: the framework's own interceptors become
/// plain enum variants dispatched by a branch-predictable `match`, so no
/// `Box<dyn Interceptor>` virtual call remains on the steady-state invoke
/// path. Interceptors the compiler does not recognize keep exactly the old
/// dynamic behavior behind the [`Dyn`](InterceptStep::Dyn) fallback — the
/// open-ended extension point the paper's membranes promise.
#[derive(Debug)]
pub enum InterceptStep {
    /// A compiled run-to-completion guard.
    Active(ActiveInterceptor),
    /// A compiled cross-scope pattern executor.
    Memory(MemoryInterceptor),
    /// A compiled jitter monitor.
    Jitter(JitterMonitor),
    /// A compiled deterministic fault injector.
    Fault(FaultInjector),
    /// An interceptor unknown to the plan compiler: dynamic dispatch, the
    /// pre-flattening price.
    Dyn(Box<dyn Interceptor>),
}

impl InterceptStep {
    /// Compiles a boxed interceptor into its flattened step: known types
    /// are unboxed into enum variants, anything else falls back to
    /// [`InterceptStep::Dyn`].
    pub fn compile(interceptor: Box<dyn Interceptor>) -> InterceptStep {
        if interceptor.as_any().is::<ActiveInterceptor>() {
            let a = interceptor
                .into_any()
                .downcast::<ActiveInterceptor>()
                .expect("type checked above");
            return InterceptStep::Active(*a);
        }
        if interceptor.as_any().is::<MemoryInterceptor>() {
            let m = interceptor
                .into_any()
                .downcast::<MemoryInterceptor>()
                .expect("type checked above");
            return InterceptStep::Memory(*m);
        }
        if interceptor.as_any().is::<JitterMonitor>() {
            let j = interceptor
                .into_any()
                .downcast::<JitterMonitor>()
                .expect("type checked above");
            return InterceptStep::Jitter(*j);
        }
        if interceptor.as_any().is::<FaultInjector>() {
            let fi = interceptor
                .into_any()
                .downcast::<FaultInjector>()
                .expect("type checked above");
            return InterceptStep::Fault(*fi);
        }
        InterceptStep::Dyn(interceptor)
    }

    /// The step's interceptor name (same names as the dynamic chain).
    pub fn name(&self) -> &str {
        match self {
            InterceptStep::Active(a) => a.name(),
            InterceptStep::Memory(m) => m.name(),
            InterceptStep::Jitter(j) => j.name(),
            InterceptStep::Fault(fi) => fi.name(),
            InterceptStep::Dyn(d) => d.name(),
        }
    }

    /// True when the step dispatches without a virtual call (every variant
    /// except the `Dyn` fallback).
    pub fn is_compiled(&self) -> bool {
        !matches!(self, InterceptStep::Dyn(_))
    }

    /// The step viewed as an interceptor (introspection / downcasting).
    pub fn as_interceptor(&self) -> &dyn Interceptor {
        match self {
            InterceptStep::Active(a) => a,
            InterceptStep::Memory(m) => m,
            InterceptStep::Jitter(j) => j,
            InterceptStep::Fault(fi) => fi,
            InterceptStep::Dyn(d) => d.as_ref(),
        }
    }

    /// Runs the step's pre-invocation action (match dispatch; direct,
    /// inlinable calls for compiled variants).
    ///
    /// # Errors
    ///
    /// The underlying interceptor's error.
    pub fn pre(
        &mut self,
        mm: &mut MemoryManager,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        match self {
            InterceptStep::Active(a) => a.pre(mm, ctx),
            InterceptStep::Memory(m) => m.pre(mm, ctx),
            InterceptStep::Jitter(j) => j.pre(mm, ctx),
            InterceptStep::Fault(fi) => fi.pre(mm, ctx),
            InterceptStep::Dyn(d) => d.pre(mm, ctx),
        }
    }

    /// Runs the step's post-invocation action (match dispatch).
    ///
    /// # Errors
    ///
    /// The underlying interceptor's error.
    pub fn post(
        &mut self,
        mm: &mut MemoryManager,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        match self {
            InterceptStep::Active(a) => a.post(mm, ctx),
            InterceptStep::Memory(m) => m.post(mm, ctx),
            InterceptStep::Jitter(j) => j.post(mm, ctx),
            InterceptStep::Fault(fi) => fi.post(mm, ctx),
            InterceptStep::Dyn(d) => d.post(mm, ctx),
        }
    }

    /// Estimated bytes of step machinery (Fig. 7(c) accounting): the enum
    /// slot plus any heap the variant owns.
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + match self {
                InterceptStep::Active(_) => 0,
                InterceptStep::Memory(m) => {
                    m.plan().enter_path.capacity() * std::mem::size_of::<AreaId>()
                }
                InterceptStep::Jitter(j) => std::mem::size_of_val(j.gaps_ns()),
                InterceptStep::Fault(fi) => fi.component.capacity(),
                InterceptStep::Dyn(d) => d.footprint_bytes(),
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsj::memory::ScopedMemoryParams;
    use rtsj::thread::ThreadKind;

    #[test]
    fn jitter_monitor_records_gaps() {
        let mut mm = MemoryManager::default();
        let mut ctx = mm.context(ThreadKind::Realtime);
        let mut jm = JitterMonitor::new();
        assert_eq!(jm.observations(), 0);
        for _ in 0..5 {
            jm.pre(&mut mm, &mut ctx).unwrap();
            jm.post(&mut mm, &mut ctx).unwrap();
        }
        assert_eq!(jm.observations(), 5);
        assert_eq!(jm.gaps_ns().len(), 4);
        // Downcast through the trait object works.
        let boxed: Box<dyn Interceptor> = Box::new(jm);
        assert!(boxed.as_any().downcast_ref::<JitterMonitor>().is_some());
        assert!(boxed.as_any().downcast_ref::<ActiveInterceptor>().is_none());
    }

    #[test]
    fn active_interceptor_guards_reentrancy() {
        let mut mm = MemoryManager::default();
        let mut ctx = mm.context(ThreadKind::Realtime);
        let mut ai = ActiveInterceptor::new();
        ai.pre(&mut mm, &mut ctx).unwrap();
        let err = ai.pre(&mut mm, &mut ctx).unwrap_err();
        assert!(matches!(err, FrameworkError::RunToCompletion(_)));
        ai.post(&mut mm, &mut ctx).unwrap();
        ai.pre(&mut mm, &mut ctx).unwrap();
        assert_eq!(ai.activations(), 2);
    }

    #[test]
    fn memory_interceptor_enter_inner_roundtrip() {
        let mut mm = MemoryManager::default();
        let scope = mm
            .create_scoped(ScopedMemoryParams::new("s", 4096))
            .unwrap();
        let mut ctx = mm.context(ThreadKind::Realtime);
        let mut mi = MemoryInterceptor::new(MemoryPlan::enter_inner(scope, vec![scope]));
        mi.pre(&mut mm, &mut ctx).unwrap();
        assert_eq!(ctx.allocation_area(), scope);
        mi.post(&mut mm, &mut ctx).unwrap();
        assert_eq!(ctx.depth(), 0);
        assert_eq!(mi.crossings(), 1);
    }

    #[test]
    fn memory_interceptor_enters_nested_chains() {
        let mut mm = MemoryManager::default();
        let outer = mm
            .create_scoped(ScopedMemoryParams::new("o", 4096))
            .unwrap();
        let inner = mm
            .create_scoped(ScopedMemoryParams::new("i", 4096))
            .unwrap();
        // Pin the chain so `inner`'s parent is fixed to `outer`.
        let mut pin_ctx = mm.context(ThreadKind::Realtime);
        mm.enter(&mut pin_ctx, outer).unwrap();
        mm.enter(&mut pin_ctx, inner).unwrap();

        let mut ctx = mm.context(ThreadKind::Realtime);
        let mut mi = MemoryInterceptor::new(MemoryPlan::enter_inner(inner, vec![outer, inner]));
        mi.pre(&mut mm, &mut ctx).unwrap();
        assert_eq!(ctx.depth(), 2);
        assert_eq!(ctx.allocation_area(), inner);
        mi.post(&mut mm, &mut ctx).unwrap();
        assert_eq!(ctx.depth(), 0);

        // A wrong chain (skipping `outer`) is rejected and unwound.
        let mut bad = MemoryInterceptor::new(MemoryPlan::enter_inner(inner, vec![inner]));
        let err = bad.pre(&mut mm, &mut ctx).unwrap_err();
        assert!(matches!(
            err,
            FrameworkError::Rtsj(rtsj::RtsjError::ScopedCycle { .. })
        ));
        assert_eq!(ctx.depth(), 0, "failed pre leaves the stack balanced");
    }

    #[test]
    fn memory_interceptor_execute_in_outer_roundtrip() {
        let mut mm = MemoryManager::default();
        let outer = mm
            .create_scoped(ScopedMemoryParams::new("o", 4096))
            .unwrap();
        let inner = mm
            .create_scoped(ScopedMemoryParams::new("i", 4096))
            .unwrap();
        let mut ctx = mm.context(ThreadKind::Realtime);
        mm.enter(&mut ctx, outer).unwrap();
        mm.enter(&mut ctx, inner).unwrap();
        let mut mi = MemoryInterceptor::new(MemoryPlan {
            pattern: PatternKind::ExecuteInOuter,
            server_area: outer,
            enter_path: Vec::new(),
            transient_scope: None,
            outer_on_stack: false,
        });
        mi.pre(&mut mm, &mut ctx).unwrap();
        assert_eq!(ctx.allocation_area(), outer);
        mi.post(&mut mm, &mut ctx).unwrap();
        assert_eq!(ctx.allocation_area(), inner);

        // The prechecked variant (build-time proof) behaves identically on
        // the legal path.
        let mut fast = MemoryInterceptor::new(MemoryPlan {
            pattern: PatternKind::ExecuteInOuter,
            server_area: outer,
            enter_path: Vec::new(),
            transient_scope: None,
            outer_on_stack: true,
        });
        fast.pre(&mut mm, &mut ctx).unwrap();
        assert_eq!(ctx.allocation_area(), outer);
        fast.post(&mut mm, &mut ctx).unwrap();
        assert_eq!(ctx.allocation_area(), inner);
    }

    #[test]
    fn transient_scope_reclaims_temporaries() {
        let mut mm = MemoryManager::default();
        let temp = mm
            .create_scoped(ScopedMemoryParams::new("tmp", 4096))
            .unwrap();
        let mut ctx = mm.context(ThreadKind::Realtime);
        let mut mi = MemoryInterceptor::new(MemoryPlan {
            pattern: PatternKind::Direct,
            server_area: AreaId::IMMORTAL,
            enter_path: Vec::new(),
            transient_scope: Some(temp),
            outer_on_stack: false,
        });
        mi.pre(&mut mm, &mut ctx).unwrap();
        mm.alloc_current(&ctx, [0u8; 128]).unwrap();
        assert!(mm.stats(temp).unwrap().consumed > 0);
        mi.post(&mut mm, &mut ctx).unwrap();
        assert_eq!(mm.stats(temp).unwrap().consumed, 0, "temporaries reclaimed");
        assert_eq!(mm.stats(temp).unwrap().reclaim_count, 1);
    }

    #[test]
    fn known_interceptors_compile_to_flat_steps() {
        let steps = [
            InterceptStep::compile(Box::new(ActiveInterceptor::new())),
            InterceptStep::compile(Box::new(MemoryInterceptor::new(MemoryPlan::direct(
                AreaId::HEAP,
            )))),
            InterceptStep::compile(Box::new(JitterMonitor::new())),
        ];
        assert!(steps.iter().all(InterceptStep::is_compiled));
        assert_eq!(
            steps.iter().map(|s| s.name()).collect::<Vec<_>>(),
            vec!["active-interceptor", "memory-interceptor", "jitter-monitor"]
        );
        // Introspection still reaches the concrete type through the step.
        assert!(steps[0]
            .as_interceptor()
            .as_any()
            .downcast_ref::<ActiveInterceptor>()
            .is_some());

        // An unknown type stays dynamic — and keeps working.
        #[derive(Debug)]
        struct Opaque;
        impl Interceptor for Opaque {
            fn name(&self) -> &str {
                "opaque"
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any + Send> {
                self
            }
            fn pre(
                &mut self,
                _mm: &mut MemoryManager,
                _ctx: &mut MemoryContext,
            ) -> Result<(), FrameworkError> {
                Ok(())
            }
            fn post(
                &mut self,
                _mm: &mut MemoryManager,
                _ctx: &mut MemoryContext,
            ) -> Result<(), FrameworkError> {
                Ok(())
            }
        }
        let mut dynamic = InterceptStep::compile(Box::new(Opaque));
        assert!(!dynamic.is_compiled());
        assert_eq!(dynamic.name(), "opaque");
        let mut mm = MemoryManager::default();
        let mut ctx = mm.context(ThreadKind::Realtime);
        dynamic.pre(&mut mm, &mut ctx).unwrap();
        dynamic.post(&mut mm, &mut ctx).unwrap();
        assert!(dynamic.footprint_bytes() > 0);
    }

    #[test]
    fn compiled_step_behaves_like_the_interceptor_it_flattens() {
        let mut mm = MemoryManager::default();
        let mut ctx = mm.context(ThreadKind::Realtime);
        let mut step = InterceptStep::compile(Box::new(ActiveInterceptor::new()));
        step.pre(&mut mm, &mut ctx).unwrap();
        let err = step.pre(&mut mm, &mut ctx).unwrap_err();
        assert!(matches!(err, FrameworkError::RunToCompletion(_)));
        step.post(&mut mm, &mut ctx).unwrap();
        step.pre(&mut mm, &mut ctx).unwrap();
        let InterceptStep::Active(a) = &step else {
            panic!("ActiveInterceptor must compile to the Active variant");
        };
        assert_eq!(a.activations(), 2);
    }

    #[test]
    fn fault_injector_schedule_is_deterministic_and_replayable() {
        let a = FaultInjector::new("c", 42, 7);
        let b = FaultInjector::new("c", 42, 7);
        let schedule_a: Vec<_> = (1..=500).map(|n| a.fault_at(n)).collect();
        let schedule_b: Vec<_> = (1..=500).map(|n| b.fault_at(n)).collect();
        assert_eq!(schedule_a, schedule_b, "same seed, same storm");
        let fired = schedule_a.iter().filter(|f| f.is_some()).count();
        assert!(fired > 20, "rate 7 over 500 draws fires often: {fired}");
        assert!(fired < 200, "but far from always: {fired}");
        // A different seed yields a different storm.
        let c = FaultInjector::new("c", 43, 7);
        let schedule_c: Vec<_> = (1..=500).map(|n| c.fault_at(n)).collect();
        assert_ne!(schedule_a, schedule_c);
        // Idle injectors never fire.
        let idle = FaultInjector::new("c", 42, 0);
        assert!((1..=500).all(|n| idle.fault_at(n).is_none()));
    }

    #[test]
    fn fault_injector_menu_restricts_kinds() {
        let drops = FaultInjector::new("c", 9, 2).with_menu(FaultInjector::MENU_DROP);
        for n in 1..=200 {
            if let Some(f) = drops.fault_at(n) {
                assert_eq!(f, InjectedFault::Drop);
            }
        }
        let no_menu = FaultInjector::new("c", 9, 2).with_menu(0);
        assert!((1..=200).all(|n| no_menu.fault_at(n).is_none()));
    }

    #[test]
    fn fault_injector_pre_raises_typed_faults() {
        let mut mm = MemoryManager::default();
        let mut ctx = mm.context(ThreadKind::Realtime);
        // Error-only menu at rate 1: every activation faults.
        let mut fi = FaultInjector::new("Det", 5, 1).with_menu(FaultInjector::MENU_ERROR);
        let err = fi.pre(&mut mm, &mut ctx).unwrap_err();
        let FrameworkError::Faulted {
            component, kind, ..
        } = &err
        else {
            panic!("expected Faulted, got {err}");
        };
        assert_eq!(component, "Det");
        assert_eq!(*kind, crate::error::FaultKind::Error);
        assert_eq!(fi.injected(), 1);
        assert_eq!(fi.activations(), 1);

        // Panic faults really panic (the engine catches at the boundary).
        let mut pi = FaultInjector::new("Det", 5, 1).with_menu(FaultInjector::MENU_PANIC);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = pi.pre(&mut mm, &mut ctx);
        }));
        assert!(caught.is_err(), "panic fault must unwind");

        // Latency-spike faults succeed after the spin.
        let mut li = FaultInjector::new("Det", 5, 1)
            .with_menu(FaultInjector::MENU_LATENCY)
            .with_latency_spike_ns(1_000);
        li.pre(&mut mm, &mut ctx).unwrap();
        assert_eq!(li.injected(), 1);
    }

    #[test]
    fn fault_injector_compiles_to_a_flat_step() {
        let step = InterceptStep::compile(Box::new(FaultInjector::new("c", 1, 0)));
        assert!(step.is_compiled());
        assert_eq!(step.name(), "fault-injector");
        assert!(matches!(step, InterceptStep::Fault(_)));
        assert!(step.footprint_bytes() > 0);
        assert!(step
            .as_interceptor()
            .as_any()
            .downcast_ref::<FaultInjector>()
            .is_some());
    }

    #[test]
    fn fast_gate_mirrors_the_plan() {
        // Direct, no transient scope: pre/post provably no-ops.
        let direct = MemoryPlan::direct(AreaId::HEAP).fast_gate();
        assert!(direct.skip_choreography && !direct.copy);
        // Copy patterns skip choreography but demand the payload copy.
        let handoff = MemoryPlan {
            pattern: PatternKind::HandoffThroughParent,
            server_area: AreaId::IMMORTAL,
            enter_path: Vec::new(),
            transient_scope: None,
            outer_on_stack: false,
        }
        .fast_gate();
        assert!(handoff.skip_choreography && handoff.copy);
        // Scope choreography keeps the full interceptor on the path.
        let enter = MemoryPlan::enter_inner(AreaId::HEAP, vec![AreaId::HEAP]).fast_gate();
        assert!(!enter.skip_choreography);
        // A transient scope always needs pre/post, whatever the pattern.
        let transient = MemoryPlan {
            transient_scope: Some(AreaId::IMMORTAL),
            ..MemoryPlan::direct(AreaId::HEAP)
        }
        .fast_gate();
        assert!(!transient.skip_choreography);
    }

    #[test]
    fn copy_requirements_by_pattern() {
        let direct = MemoryInterceptor::new(MemoryPlan::direct(AreaId::HEAP));
        assert!(!direct.needs_copy());
        let handoff = MemoryInterceptor::new(MemoryPlan {
            pattern: PatternKind::HandoffThroughParent,
            server_area: AreaId::IMMORTAL,
            enter_path: Vec::new(),
            transient_scope: None,
            outer_on_stack: false,
        });
        assert!(handoff.needs_copy());
    }
}
