//! RTSJ-oriented interceptors (§4.1).
//!
//! Interceptors are "special control components deployed on component
//! interfaces to arbitrate communication". Two are RTSJ-specific:
//!
//! * [`ActiveInterceptor`] — enforces the run-to-completion execution model
//!   of active components (no re-entrant activation) and counts
//!   activations;
//! * [`MemoryInterceptor`] — deployed on every binding that crosses
//!   MemoryAreas; executes the [`PatternKind`] selected at design time
//!   (scope entry, allocation-context switching, transient scopes for
//!   per-invocation temporaries).
//!
//! Interceptors expose a split `pre`/`post` protocol so the membrane can
//! run them around the content invocation.

use std::fmt::Debug;

use rtsj::memory::{AreaId, MemoryContext, MemoryManager};
use soleil_patterns::PatternKind;

use crate::error::FrameworkError;

/// A control component deployed on a component interface.
///
/// `Send` is a supertrait: interceptors live inside a membrane, membranes
/// live inside a thread-domain engine, and the parallel runtime moves each
/// engine onto its own OS thread.
pub trait Interceptor: Debug + Send {
    /// Stable name for introspection.
    fn name(&self) -> &str;

    /// Downcast support, so membrane-level reconfiguration can reach a
    /// concrete interceptor installed at runtime.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Runs before the content invocation.
    ///
    /// # Errors
    ///
    /// Implementation-specific; a failing `pre` aborts the invocation.
    fn pre(
        &mut self,
        mm: &mut MemoryManager,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError>;

    /// Runs after the content invocation (also on unwind).
    ///
    /// # Errors
    ///
    /// Implementation-specific.
    fn post(
        &mut self,
        mm: &mut MemoryManager,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError>;

    /// Estimated bytes of interceptor state (Fig. 7(c) accounting).
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of_val(self)
    }
}

// ---------------------------------------------------------------------------
// ActiveInterceptor
// ---------------------------------------------------------------------------

/// Run-to-completion guard for active components.
///
/// The paper: active interceptors "implement a run-to-completion execution
/// model for each incoming invocation from their server interfaces" —
/// i.e. an activation must finish before the next may begin.
#[derive(Debug, Default)]
pub struct ActiveInterceptor {
    busy: bool,
    activations: u64,
}

impl ActiveInterceptor {
    /// Creates an idle guard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total completed or in-flight activations.
    pub fn activations(&self) -> u64 {
        self.activations
    }
}

impl Interceptor for ActiveInterceptor {
    fn name(&self) -> &str {
        "active-interceptor"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn pre(
        &mut self,
        _mm: &mut MemoryManager,
        _ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        if self.busy {
            return Err(FrameworkError::RunToCompletion(
                "re-entrant activation of an active component".into(),
            ));
        }
        self.busy = true;
        self.activations += 1;
        Ok(())
    }

    fn post(
        &mut self,
        _mm: &mut MemoryManager,
        _ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        self.busy = false;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// MemoryInterceptor
// ---------------------------------------------------------------------------

/// What the memory interceptor must do around an invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryPlan {
    /// The design-time pattern for this binding.
    pub pattern: PatternKind,
    /// The server component's area (switched to by `ExecuteInOuter`).
    pub server_area: AreaId,
    /// For `EnterInner`: the scoped areas to enter, outermost first,
    /// *relative* to the caller's scope stack (common ancestors excluded —
    /// re-entering a scope already on the stack would violate the single
    /// parent rule).
    pub enter_path: Vec<AreaId>,
    /// Optional transient scope entered per invocation for temporaries;
    /// reclaimed on exit (the classic scoped-memory usage).
    pub transient_scope: Option<AreaId>,
    /// Build-time proof that `server_area` is always on the invoking
    /// component's scope stack when this plan runs (`ExecuteInOuter` only).
    /// When set, the per-crossing scope-stack containment walk is replaced
    /// by the substrate's prechecked entry — the design-time validation
    /// licensing the removal of a runtime check, exactly as the paper's
    /// generator does for its merged modes.
    pub outer_on_stack: bool,
}

impl MemoryPlan {
    /// A plan that performs no memory choreography (same-area binding).
    pub fn direct(server_area: AreaId) -> Self {
        MemoryPlan {
            pattern: PatternKind::Direct,
            server_area,
            enter_path: Vec::new(),
            transient_scope: None,
            outer_on_stack: false,
        }
    }

    /// An `EnterInner` plan entering `path` (outermost first).
    pub fn enter_inner(server_area: AreaId, path: Vec<AreaId>) -> Self {
        MemoryPlan {
            pattern: PatternKind::EnterInner,
            server_area,
            enter_path: path,
            transient_scope: None,
            outer_on_stack: false,
        }
    }
}

/// Executes the cross-scope pattern around each invocation (§4.1's
/// "Memory Interceptors … deployed on each binding between different
/// MemoryAreas").
#[derive(Debug)]
pub struct MemoryInterceptor {
    plan: MemoryPlan,
    crossings: u64,
}

impl MemoryInterceptor {
    /// Creates an interceptor for `plan`.
    pub fn new(plan: MemoryPlan) -> Self {
        MemoryInterceptor { plan, crossings: 0 }
    }

    /// The configured plan.
    pub fn plan(&self) -> &MemoryPlan {
        &self.plan
    }

    /// Number of boundary crossings executed.
    pub fn crossings(&self) -> u64 {
        self.crossings
    }

    /// True when the engine must deep-copy the payload (handoff pattern).
    pub fn needs_copy(&self) -> bool {
        matches!(
            self.plan.pattern,
            PatternKind::HandoffThroughParent | PatternKind::ImmortalExchange
        )
    }
}

impl Interceptor for MemoryInterceptor {
    fn name(&self) -> &str {
        "memory-interceptor"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn pre(
        &mut self,
        mm: &mut MemoryManager,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        self.crossings += 1;
        match self.plan.pattern {
            PatternKind::Direct => {}
            PatternKind::ExecuteInOuter => {
                if self.plan.outer_on_stack {
                    mm.begin_execute_in_area_prechecked(ctx, self.plan.server_area)?;
                } else {
                    mm.begin_execute_in_area(ctx, self.plan.server_area)?;
                }
            }
            PatternKind::EnterInner => {
                for (i, &scope) in self.plan.enter_path.iter().enumerate() {
                    if let Err(e) = mm.enter(ctx, scope) {
                        for _ in 0..i {
                            let _ = mm.exit(ctx);
                        }
                        return Err(e.into());
                    }
                }
            }
            // Copy-based patterns need no scope choreography here: the
            // engine copies the payload; buffers live in their own area.
            PatternKind::HandoffThroughParent | PatternKind::ImmortalExchange => {}
        }
        if let Some(scope) = self.plan.transient_scope {
            mm.enter(ctx, scope)?;
        }
        Ok(())
    }

    fn post(
        &mut self,
        mm: &mut MemoryManager,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        if self.plan.transient_scope.is_some() {
            mm.exit(ctx)?;
        }
        match self.plan.pattern {
            PatternKind::Direct
            | PatternKind::HandoffThroughParent
            | PatternKind::ImmortalExchange => {}
            PatternKind::ExecuteInOuter => {
                mm.end_execute_in_area(ctx)?;
            }
            PatternKind::EnterInner => {
                for _ in &self.plan.enter_path {
                    mm.exit(ctx)?;
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// JitterMonitor
// ---------------------------------------------------------------------------

/// An optional interceptor measuring inter-activation gaps in wall-clock
/// time — the "additional functionality" (§3.3) the framework can inject
/// into a membrane, and the show-piece of *membrane-level* runtime
/// reconfiguration: SOLEIL-mode systems can install it on a live component.
#[derive(Debug, Default)]
pub struct JitterMonitor {
    last: Option<std::time::Instant>,
    gaps_ns: Vec<u64>,
}

impl JitterMonitor {
    /// Creates an idle monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observed inter-activation gaps, in nanoseconds.
    pub fn gaps_ns(&self) -> &[u64] {
        &self.gaps_ns
    }

    /// Number of activations observed (gaps + 1, once started).
    pub fn observations(&self) -> usize {
        self.gaps_ns.len() + usize::from(self.last.is_some())
    }
}

impl Interceptor for JitterMonitor {
    fn name(&self) -> &str {
        "jitter-monitor"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn pre(
        &mut self,
        _mm: &mut MemoryManager,
        _ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        let now = std::time::Instant::now();
        if let Some(last) = self.last.replace(now) {
            self.gaps_ns
                .push(now.duration_since(last).as_nanos() as u64);
        }
        Ok(())
    }

    fn post(
        &mut self,
        _mm: &mut MemoryManager,
        _ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsj::memory::ScopedMemoryParams;
    use rtsj::thread::ThreadKind;

    #[test]
    fn jitter_monitor_records_gaps() {
        let mut mm = MemoryManager::default();
        let mut ctx = mm.context(ThreadKind::Realtime);
        let mut jm = JitterMonitor::new();
        assert_eq!(jm.observations(), 0);
        for _ in 0..5 {
            jm.pre(&mut mm, &mut ctx).unwrap();
            jm.post(&mut mm, &mut ctx).unwrap();
        }
        assert_eq!(jm.observations(), 5);
        assert_eq!(jm.gaps_ns().len(), 4);
        // Downcast through the trait object works.
        let boxed: Box<dyn Interceptor> = Box::new(jm);
        assert!(boxed.as_any().downcast_ref::<JitterMonitor>().is_some());
        assert!(boxed.as_any().downcast_ref::<ActiveInterceptor>().is_none());
    }

    #[test]
    fn active_interceptor_guards_reentrancy() {
        let mut mm = MemoryManager::default();
        let mut ctx = mm.context(ThreadKind::Realtime);
        let mut ai = ActiveInterceptor::new();
        ai.pre(&mut mm, &mut ctx).unwrap();
        let err = ai.pre(&mut mm, &mut ctx).unwrap_err();
        assert!(matches!(err, FrameworkError::RunToCompletion(_)));
        ai.post(&mut mm, &mut ctx).unwrap();
        ai.pre(&mut mm, &mut ctx).unwrap();
        assert_eq!(ai.activations(), 2);
    }

    #[test]
    fn memory_interceptor_enter_inner_roundtrip() {
        let mut mm = MemoryManager::default();
        let scope = mm
            .create_scoped(ScopedMemoryParams::new("s", 4096))
            .unwrap();
        let mut ctx = mm.context(ThreadKind::Realtime);
        let mut mi = MemoryInterceptor::new(MemoryPlan::enter_inner(scope, vec![scope]));
        mi.pre(&mut mm, &mut ctx).unwrap();
        assert_eq!(ctx.allocation_area(), scope);
        mi.post(&mut mm, &mut ctx).unwrap();
        assert_eq!(ctx.depth(), 0);
        assert_eq!(mi.crossings(), 1);
    }

    #[test]
    fn memory_interceptor_enters_nested_chains() {
        let mut mm = MemoryManager::default();
        let outer = mm
            .create_scoped(ScopedMemoryParams::new("o", 4096))
            .unwrap();
        let inner = mm
            .create_scoped(ScopedMemoryParams::new("i", 4096))
            .unwrap();
        // Pin the chain so `inner`'s parent is fixed to `outer`.
        let mut pin_ctx = mm.context(ThreadKind::Realtime);
        mm.enter(&mut pin_ctx, outer).unwrap();
        mm.enter(&mut pin_ctx, inner).unwrap();

        let mut ctx = mm.context(ThreadKind::Realtime);
        let mut mi = MemoryInterceptor::new(MemoryPlan::enter_inner(inner, vec![outer, inner]));
        mi.pre(&mut mm, &mut ctx).unwrap();
        assert_eq!(ctx.depth(), 2);
        assert_eq!(ctx.allocation_area(), inner);
        mi.post(&mut mm, &mut ctx).unwrap();
        assert_eq!(ctx.depth(), 0);

        // A wrong chain (skipping `outer`) is rejected and unwound.
        let mut bad = MemoryInterceptor::new(MemoryPlan::enter_inner(inner, vec![inner]));
        let err = bad.pre(&mut mm, &mut ctx).unwrap_err();
        assert!(matches!(
            err,
            FrameworkError::Rtsj(rtsj::RtsjError::ScopedCycle { .. })
        ));
        assert_eq!(ctx.depth(), 0, "failed pre leaves the stack balanced");
    }

    #[test]
    fn memory_interceptor_execute_in_outer_roundtrip() {
        let mut mm = MemoryManager::default();
        let outer = mm
            .create_scoped(ScopedMemoryParams::new("o", 4096))
            .unwrap();
        let inner = mm
            .create_scoped(ScopedMemoryParams::new("i", 4096))
            .unwrap();
        let mut ctx = mm.context(ThreadKind::Realtime);
        mm.enter(&mut ctx, outer).unwrap();
        mm.enter(&mut ctx, inner).unwrap();
        let mut mi = MemoryInterceptor::new(MemoryPlan {
            pattern: PatternKind::ExecuteInOuter,
            server_area: outer,
            enter_path: Vec::new(),
            transient_scope: None,
            outer_on_stack: false,
        });
        mi.pre(&mut mm, &mut ctx).unwrap();
        assert_eq!(ctx.allocation_area(), outer);
        mi.post(&mut mm, &mut ctx).unwrap();
        assert_eq!(ctx.allocation_area(), inner);

        // The prechecked variant (build-time proof) behaves identically on
        // the legal path.
        let mut fast = MemoryInterceptor::new(MemoryPlan {
            pattern: PatternKind::ExecuteInOuter,
            server_area: outer,
            enter_path: Vec::new(),
            transient_scope: None,
            outer_on_stack: true,
        });
        fast.pre(&mut mm, &mut ctx).unwrap();
        assert_eq!(ctx.allocation_area(), outer);
        fast.post(&mut mm, &mut ctx).unwrap();
        assert_eq!(ctx.allocation_area(), inner);
    }

    #[test]
    fn transient_scope_reclaims_temporaries() {
        let mut mm = MemoryManager::default();
        let temp = mm
            .create_scoped(ScopedMemoryParams::new("tmp", 4096))
            .unwrap();
        let mut ctx = mm.context(ThreadKind::Realtime);
        let mut mi = MemoryInterceptor::new(MemoryPlan {
            pattern: PatternKind::Direct,
            server_area: AreaId::IMMORTAL,
            enter_path: Vec::new(),
            transient_scope: Some(temp),
            outer_on_stack: false,
        });
        mi.pre(&mut mm, &mut ctx).unwrap();
        mm.alloc_current(&ctx, [0u8; 128]).unwrap();
        assert!(mm.stats(temp).unwrap().consumed > 0);
        mi.post(&mut mm, &mut ctx).unwrap();
        assert_eq!(mm.stats(temp).unwrap().consumed, 0, "temporaries reclaimed");
        assert_eq!(mm.stats(temp).unwrap().reclaim_count, 1);
    }

    #[test]
    fn copy_requirements_by_pattern() {
        let direct = MemoryInterceptor::new(MemoryPlan::direct(AreaId::HEAP));
        assert!(!direct.needs_copy());
        let handoff = MemoryInterceptor::new(MemoryPlan {
            pattern: PatternKind::HandoffThroughParent,
            server_area: AreaId::IMMORTAL,
            enter_path: Vec::new(),
            transient_scope: None,
            outer_on_stack: false,
        });
        assert!(handoff.needs_copy());
    }
}
