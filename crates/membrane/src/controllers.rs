//! Control components: the membrane's controllers.
//!
//! The paper distinguishes controllers that implement non-functional logic
//! the component cannot run without, from optional units providing
//! introspection and reconfiguration (§4.2): **LifecycleController** and
//! **BindingController** belong to the optional group (present in SOLEIL
//! mode, merged away otherwise); **ThreadDomainController** and
//! **MemoryAreaController** sit in the membranes of non-functional
//! components and superimpose RTSJ concerns over their members.

use std::fmt;

use rtsj::memory::AreaId;
use rtsj::thread::{Priority, ReleaseParameters, RtThread, ThreadKind};
use rtsj::time::RelativeTime;
use soleil_patterns::ScopePin;

use crate::content::PortId;
use crate::error::FrameworkError;

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

/// The component lifecycle state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleState {
    /// Not started (or stopped): invocations are refused.
    Stopped,
    /// Running: invocations flow.
    Started,
    /// Faulted and isolated by supervision: invocations are refused until
    /// the component is restarted (a plain `start` is not enough — the
    /// membrane may be poisoned by a mid-activation panic).
    Quarantined,
}

/// Start/stop controller, the reconfiguration gate of the membrane.
#[derive(Debug, Clone)]
pub struct LifecycleController {
    state: LifecycleState,
    transitions: u64,
    recoveries: u64,
}

impl LifecycleController {
    /// Creates a controller in the `Stopped` state.
    pub fn new() -> Self {
        LifecycleController {
            state: LifecycleState::Stopped,
            transitions: 0,
            recoveries: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> LifecycleState {
        self.state
    }

    /// Moves to `Started` (idempotent).
    pub fn start(&mut self) {
        if self.state != LifecycleState::Started {
            self.state = LifecycleState::Started;
            self.transitions += 1;
        }
    }

    /// Moves to `Stopped` (idempotent).
    pub fn stop(&mut self) {
        if self.state != LifecycleState::Stopped {
            self.state = LifecycleState::Stopped;
            self.transitions += 1;
        }
    }

    /// Moves to `Quarantined` (idempotent). Supervision calls this when a
    /// fault is contained; only a restart (not a plain `start`) should
    /// bring the component back.
    pub fn quarantine(&mut self) {
        if self.state != LifecycleState::Quarantined {
            self.state = LifecycleState::Quarantined;
            self.transitions += 1;
        }
    }

    /// Brings a `Quarantined` component back to `Started` through the
    /// supervised-restart path, counting the recovery. A plain `start`
    /// deliberately does not leave quarantine — the membrane may be
    /// poisoned by a mid-activation panic and must go through the restart
    /// protocol (fresh content instance, poison cleared) first.
    pub fn recover(&mut self) {
        if self.state == LifecycleState::Quarantined {
            self.recoveries += 1;
        }
        self.start();
    }

    /// Number of state transitions (introspection).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Supervised recoveries completed (quarantine → restart transitions).
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Errors unless started.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Lifecycle`] when stopped or quarantined.
    pub fn assert_started(&self, component: &str) -> Result<(), FrameworkError> {
        match self.state {
            LifecycleState::Started => Ok(()),
            LifecycleState::Stopped => Err(FrameworkError::Lifecycle(format!(
                "component '{component}' is stopped"
            ))),
            LifecycleState::Quarantined => Err(FrameworkError::Lifecycle(format!(
                "component '{component}' is quarantined pending restart"
            ))),
        }
    }
}

impl Default for LifecycleController {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// Binding
// ---------------------------------------------------------------------------

/// Where a client interface is bound: a target component slot and server
/// port, plus the wire protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindingTarget {
    /// Engine slot of the server component.
    pub target_slot: usize,
    /// Server interface name on the target (introspection).
    pub server_port: String,
    /// Compiled index of that interface in the target's port table.
    pub server_port_ix: u16,
    /// True for asynchronous (buffered) bindings.
    pub is_async: bool,
    /// Index of the engine-managed buffer for async bindings.
    pub buffer_index: Option<usize>,
    /// Index of this binding in the engine's binding table (used to locate
    /// the binding's memory interceptor).
    pub binding_ix: usize,
    /// True when the binding leaves this engine's thread domain:
    /// `buffer_index` then addresses a wait-free cross-domain SPSC ring
    /// instead of an engine-managed exchange buffer. Chosen at build time
    /// by the deployment plan; cross bindings are asynchronous by
    /// construction.
    pub cross: bool,
}

/// Name-keyed binding table supporting runtime rebinding — the SOLEIL-mode
/// `BindingController`.
///
/// Name lookups resolve by string scan; the table is a dense array scanned
/// with short-circuit compares — for the handful of ports a component
/// carries, this beats hashing the name on every invocation while keeping
/// the table fully dynamic (rebindable, introspectable,
/// insertion-ordered). On top of that, [`BindingController::compile_jump`]
/// settles the deployment's interned port ids into a jump table so the
/// steady state resolves by a single index instead of a scan; rebinding
/// replaces entries in place, keeping compiled indices stable.
#[derive(Debug, Clone, Default)]
pub struct BindingController {
    table: Vec<(Box<str>, BindingTarget)>,
    /// Deployment-interned port id → index into `table`; `u32::MAX` for
    /// ids this component has no binding for.
    jump: Vec<u32>,
    rebinds: u64,
}

impl BindingController {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or replaces) the binding for `client_port`.
    pub fn bind(&mut self, client_port: impl Into<String>, target: BindingTarget) {
        let name: Box<str> = client_port.into().into();
        match self.table.iter_mut().find(|(k, _)| *k == name) {
            Some(entry) => {
                entry.1 = target;
                self.rebinds += 1;
            }
            None => self.table.push((name, target)),
        }
    }

    /// Removes the binding for `client_port`; true when one existed.
    pub fn unbind(&mut self, client_port: &str) -> bool {
        match self
            .table
            .iter()
            .position(|(k, _)| k.as_ref() == client_port)
        {
            Some(ix) => {
                self.table.remove(ix);
                // Removal shifts table indices: drop the jump table so
                // interned lookups fall back cold until recompiled.
                self.jump.clear();
                true
            }
            None => false,
        }
    }

    /// Compiles the jump table for the deployment's interned port-name
    /// universe: `names[id]` is the client-port name behind `PortId(id)`.
    /// Ids outside this controller's table resolve to "unbound".
    pub fn compile_jump(&mut self, names: &[Box<str>]) {
        let jump = names
            .iter()
            .map(|n| {
                self.table
                    .iter()
                    .position(|(k, _)| k == n)
                    .map_or(u32::MAX, |i| i as u32)
            })
            .collect();
        self.jump = jump;
    }

    /// Resolves an interned port id through the compiled jump table;
    /// `None` when the id is unbound here or the table is not compiled.
    pub fn resolve_id(&self, id: PortId) -> Option<&BindingTarget> {
        let ix = *self.jump.get(id.0 as usize)?;
        self.table.get(ix as usize).map(|(_, t)| t)
    }

    /// Resolves `client_port`.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Binding`] when unbound.
    pub fn resolve(&self, client_port: &str) -> Result<&BindingTarget, FrameworkError> {
        self.table
            .iter()
            .find(|(k, _)| k.as_ref() == client_port)
            .map(|(_, t)| t)
            .ok_or_else(|| {
                FrameworkError::Binding(format!("client port '{client_port}' is unbound"))
            })
    }

    /// Bound client-port names, in binding order (introspection).
    pub fn ports(&self) -> Vec<&str> {
        self.table.iter().map(|(k, _)| k.as_ref()).collect()
    }

    /// Iterates every `(client port, target)` entry in binding order — the
    /// recompile paths walk this after a reconfiguration moved a component
    /// between memory areas and every dispatch plan touching it must be
    /// recomputed.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &BindingTarget)> {
        self.table.iter().map(|(k, t)| (k.as_ref(), t))
    }

    /// Times an existing binding was replaced (introspection).
    pub fn rebind_count(&self) -> u64 {
        self.rebinds
    }

    /// Estimated bytes of table machinery (Fig. 7(c) accounting).
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.jump.len() * std::mem::size_of::<u32>()
            + self
                .table
                .iter()
                .map(|(k, v)| {
                    k.len()
                        + std::mem::size_of::<(Box<str>, BindingTarget)>()
                        + v.server_port.capacity()
                })
                .sum::<usize>()
    }
}

// ---------------------------------------------------------------------------
// Content controller
// ---------------------------------------------------------------------------

/// Lists a composite's sub-components (pure introspection).
#[derive(Debug, Clone, Default)]
pub struct ContentController {
    subs: Vec<String>,
}

impl ContentController {
    /// Creates a controller listing `subs`.
    pub fn new(subs: Vec<String>) -> Self {
        ContentController { subs }
    }

    /// The sub-component names.
    pub fn sub_components(&self) -> &[String] {
        &self.subs
    }
}

// ---------------------------------------------------------------------------
// ThreadDomain controller
// ---------------------------------------------------------------------------

/// The membrane of a ThreadDomain component: holds the thread policy its
/// members execute under and manufactures their [`RtThread`] descriptors.
#[derive(Debug, Clone)]
pub struct ThreadDomainController {
    /// Domain name.
    pub name: String,
    /// Thread class for every member.
    pub kind: ThreadKind,
    /// Dispatch priority for every member.
    pub priority: Priority,
    members: Vec<String>,
}

impl ThreadDomainController {
    /// Creates the controller.
    pub fn new(
        name: impl Into<String>,
        kind: ThreadKind,
        priority: Priority,
        members: Vec<String>,
    ) -> Self {
        ThreadDomainController {
            name: name.into(),
            kind,
            priority,
            members,
        }
    }

    /// The member component names.
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// Builds the thread descriptor for a member with the given release
    /// pattern (periodic members pass their period; sporadic members a
    /// minimum interarrival; `None` gives an aperiodic server thread).
    pub fn thread_for(
        &self,
        member: &str,
        period: Option<RelativeTime>,
        cost: RelativeTime,
    ) -> RtThread {
        let release = match period {
            Some(p) => ReleaseParameters::periodic(p, cost),
            None => ReleaseParameters::aperiodic(cost),
        };
        RtThread::new(
            format!("{}/{}", self.name, member),
            self.kind,
            self.priority,
            release,
        )
    }
}

// ---------------------------------------------------------------------------
// MemoryArea controller
// ---------------------------------------------------------------------------

/// The membrane of a MemoryArea component: owns the substrate area and, for
/// scoped areas, the wedge pin that keeps component state alive between
/// transactions.
pub struct MemoryAreaController {
    /// Area component name.
    pub name: String,
    /// The substrate area backing this component.
    pub area: AreaId,
    pin: Option<ScopePin>,
}

impl MemoryAreaController {
    /// Creates a controller for an unpinned area.
    pub fn new(name: impl Into<String>, area: AreaId) -> Self {
        MemoryAreaController {
            name: name.into(),
            area,
            pin: None,
        }
    }

    /// Installs the wedge pin (bootstrap of scoped areas holding state).
    pub fn set_pin(&mut self, pin: ScopePin) {
        self.pin = Some(pin);
    }

    /// The wedge pin, if installed.
    pub fn pin(&self) -> Option<&ScopePin> {
        self.pin.as_ref()
    }

    /// Removes and returns the pin (teardown).
    pub fn take_pin(&mut self) -> Option<ScopePin> {
        self.pin.take()
    }
}

impl fmt::Debug for MemoryAreaController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryAreaController")
            .field("name", &self.name)
            .field("area", &self.area)
            .field("pinned", &self.pin.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_transitions() {
        let mut lc = LifecycleController::new();
        assert_eq!(lc.state(), LifecycleState::Stopped);
        assert!(lc.assert_started("c").is_err());
        lc.start();
        lc.start(); // idempotent
        assert_eq!(lc.transitions(), 1);
        lc.assert_started("c").unwrap();
        lc.stop();
        assert_eq!(lc.transitions(), 2);
        assert!(lc.assert_started("c").is_err());
    }

    #[test]
    fn quarantine_refuses_invocations_until_restarted() {
        let mut lc = LifecycleController::new();
        lc.start();
        lc.quarantine();
        lc.quarantine(); // idempotent
        assert_eq!(lc.state(), LifecycleState::Quarantined);
        assert_eq!(lc.transitions(), 2);
        let err = lc.assert_started("Detector").unwrap_err();
        assert_eq!(
            err.to_string(),
            "lifecycle error: component 'Detector' is quarantined pending restart"
        );
        lc.start();
        assert_eq!(lc.state(), LifecycleState::Started);
        lc.assert_started("Detector").unwrap();
    }

    #[test]
    fn binding_table_resolve_and_rebind() {
        let mut bc = BindingController::new();
        assert!(bc.resolve("out").is_err());
        bc.bind(
            "out",
            BindingTarget {
                target_slot: 3,
                server_port: "in".into(),
                server_port_ix: 0,
                is_async: true,
                buffer_index: Some(0),
                binding_ix: 0,
                cross: false,
            },
        );
        assert_eq!(bc.resolve("out").unwrap().target_slot, 3);
        assert_eq!(bc.rebind_count(), 0);
        bc.bind(
            "out",
            BindingTarget {
                target_slot: 5,
                server_port: "in".into(),
                server_port_ix: 0,
                is_async: true,
                buffer_index: Some(1),
                binding_ix: 0,
                cross: false,
            },
        );
        assert_eq!(bc.rebind_count(), 1);
        assert_eq!(bc.resolve("out").unwrap().target_slot, 5);
        assert!(bc.unbind("out"));
        assert!(!bc.unbind("out"));
        assert!(bc.footprint_bytes() > 0);
    }

    #[test]
    fn jump_table_resolves_interned_ids_and_survives_rebind() {
        let mut bc = BindingController::new();
        let target = |slot: usize| BindingTarget {
            target_slot: slot,
            server_port: "in".into(),
            server_port_ix: 0,
            is_async: true,
            buffer_index: Some(0),
            binding_ix: 0,
            cross: false,
        };
        bc.bind("out", target(3));
        bc.bind("log", target(4));
        // The deployment universe: ids 0="log", 1="out", 2="ghost".
        let names: Vec<Box<str>> = vec!["log".into(), "out".into(), "ghost".into()];
        bc.compile_jump(&names);
        assert_eq!(bc.resolve_id(PortId(0)).unwrap().target_slot, 4);
        assert_eq!(bc.resolve_id(PortId(1)).unwrap().target_slot, 3);
        assert!(bc.resolve_id(PortId(2)).is_none(), "unbound id");
        assert!(bc.resolve_id(PortId(9)).is_none(), "out-of-universe id");

        // Rebind replaces in place: compiled indices stay valid.
        bc.bind("out", target(7));
        assert_eq!(bc.resolve_id(PortId(1)).unwrap().target_slot, 7);

        // Unbind shifts the table: the jump table is invalidated, not
        // left dangling.
        assert!(bc.unbind("log"));
        assert!(bc.resolve_id(PortId(1)).is_none());
        bc.compile_jump(&names);
        assert_eq!(bc.resolve_id(PortId(1)).unwrap().target_slot, 7);
    }

    #[test]
    fn thread_domain_builds_descriptors() {
        let td = ThreadDomainController::new(
            "NHRT1",
            ThreadKind::NoHeapRealtime,
            Priority::new(30),
            vec!["ProductionLine".into()],
        );
        let t = td.thread_for(
            "ProductionLine",
            Some(RelativeTime::from_millis(10)),
            RelativeTime::from_micros(40),
        );
        assert_eq!(t.name, "NHRT1/ProductionLine");
        assert!(t.is_consistent());
        assert!(t.release.is_periodic());
        let s = td.thread_for("X", None, RelativeTime::from_micros(10));
        assert!(!s.release.is_periodic());
    }

    #[test]
    fn memory_area_controller_pin_lifecycle() {
        use rtsj::memory::{MemoryManager, ScopedMemoryParams};
        let mut mm = MemoryManager::default();
        let s = mm
            .create_scoped(ScopedMemoryParams::new("s", 1024))
            .unwrap();
        let mut mac = MemoryAreaController::new("S1", s);
        assert!(mac.pin().is_none());
        let pin = ScopePin::new(&mut mm, s, &[]).unwrap();
        mac.set_pin(pin);
        assert!(mac.pin().is_some());
        let mut pin = mac.take_pin().unwrap();
        pin.release(&mut mm).unwrap();
        assert!(mac.pin().is_none());
    }

    #[test]
    fn content_controller_lists_subs() {
        let cc = ContentController::new(vec!["a".into(), "b".into()]);
        assert_eq!(cc.sub_components().len(), 2);
    }
}
