//! Property tests for soleil-core: units parsing, ADL escaping, validator
//! stability.

use proptest::prelude::*;
use soleil_core::adl::xml::{parse_document, write_node, XmlNode};
use soleil_core::units::{format_size, parse_size};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Sizes round-trip: format then parse gives the same byte count for
    /// any value the formatter can represent.
    #[test]
    fn size_format_parse_roundtrip(bytes in 0usize..usize::MAX / 2) {
        let text = format_size(bytes);
        let back = parse_size(&text).expect("formatter output parses");
        prop_assert_eq!(back, bytes);
    }

    /// Parsing accepts the suffix grammar and scales correctly.
    #[test]
    fn size_parse_scales(v in 0usize..1_000_000) {
        prop_assert_eq!(parse_size(&format!("{v}")).unwrap(), v);
        prop_assert_eq!(parse_size(&format!("{v}B")).unwrap(), v);
        prop_assert_eq!(parse_size(&format!("{v}KB")).unwrap(), v * 1024);
        prop_assert_eq!(parse_size(&format!("{v}kb")).unwrap(), v * 1024);
        prop_assert_eq!(parse_size(&format!("{v} MB")).unwrap(), v * 1024 * 1024);
    }

    /// XML attribute values survive arbitrary content through escaping.
    #[test]
    fn xml_attribute_roundtrip(value in "[ -~]{0,60}") {
        let node = XmlNode::new("N").attr("v", value.clone());
        let mut text = String::new();
        write_node(&node, 0, &mut text);
        let parsed = parse_document(&text).expect("escaped output parses");
        prop_assert_eq!(parsed[0].get("v"), Some(value.as_str()));
    }

    /// Arbitrary element trees (bounded depth) round-trip through the
    /// writer and parser.
    #[test]
    fn xml_tree_roundtrip(names in proptest::collection::vec("[A-Za-z][A-Za-z0-9_]{0,8}", 1..8)) {
        // Build a left-leaning tree from the generated names.
        let mut iter = names.into_iter();
        let mut root = XmlNode::new(iter.next().expect("at least one"));
        let mut current = XmlNode::new("leaf");
        for (i, name) in iter.enumerate() {
            let mut n = XmlNode::new(name).attr("ix", i.to_string());
            n.children.push(current);
            current = n;
        }
        root.children.push(current);

        let mut text = String::new();
        write_node(&root, 0, &mut text);
        let parsed = parse_document(&text).expect("parses");
        prop_assert_eq!(&parsed[0], &root);
    }
}

mod validator_stability {
    use soleil_core::adl::{from_xml, to_xml, MOTIVATION_EXAMPLE_XML};
    use soleil_core::validate::validate;

    /// Validation is idempotent and serialization-stable: validating the
    /// round-tripped architecture yields the same diagnostics.
    #[test]
    fn diagnostics_stable_under_roundtrip() {
        let arch = from_xml(MOTIVATION_EXAMPLE_XML).unwrap();
        let r1 = validate(&arch);
        let arch2 = from_xml(&to_xml(&arch)).unwrap();
        let r2 = validate(&arch2);
        let codes = |r: &soleil_core::ValidationReport| {
            let mut v: Vec<(String, String)> = r
                .diagnostics()
                .iter()
                .map(|d| (d.code.to_string(), d.subject.clone()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(codes(&r1), codes(&r2));
    }
}
