//! Declarative runtime timing contracts, checked online.
//!
//! Design-time validation ([`crate::validate`]) proves an architecture
//! *can* satisfy RTSJ; a [`TimingContract`] states what a deployed
//! component *must* deliver while running — a deadline per activation, a
//! release-jitter bound, a throughput floor, latency-quantile bounds — in
//! the spirit of Nandi et al.'s stochastic contracts for runtime checking
//! of component-based real-time systems.
//!
//! The contract itself is pure data: the runtime attaches it to a
//! component (at deploy time or through a journaled `reconfigure`
//! transaction), drives an allocation-free latency monitor on the hot
//! path, and periodically asks [`TimingContract::verdict`] to compare the
//! observed [`ContractObservation`] against the contracted bounds. The
//! verdict is an ordinary [`ValidationReport`] — the same machinery that
//! carries design-time findings carries runtime violations, under
//! reserved rule codes:
//!
//! | Code | Violation |
//! |------|-----------|
//! | SOL-016 | one or more activations missed the contracted deadline |
//! | SOL-017 | release-gap jitter exceeded the contracted bound |
//! | SOL-018 | observed throughput fell below the contracted floor |
//! | SOL-019 | an observed latency quantile exceeded its bound |

use rtsj::time::RelativeTime;

use crate::validate::{Diagnostic, Severity, ValidationReport};

/// A declarative timing contract for one deployed component.
///
/// Every bound is optional; an empty contract still records latency
/// histograms but can never be violated. Build with the `with_*`
/// combinators:
///
/// ```
/// use rtsj::time::RelativeTime;
/// use soleil_core::contract::TimingContract;
///
/// let contract = TimingContract::new()
///     .with_deadline(RelativeTime::from_millis(10))
///     .with_max_jitter(RelativeTime::from_millis(2))
///     .with_min_throughput_hz(50)
///     .with_quantile_bound(99, RelativeTime::from_millis(8));
/// assert_eq!(contract.deadline(), Some(RelativeTime::from_millis(10)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimingContract {
    deadline: Option<RelativeTime>,
    max_jitter: Option<RelativeTime>,
    min_throughput_hz: Option<u32>,
    quantile_bounds: Vec<(u8, RelativeTime)>,
}

impl TimingContract {
    /// An empty contract (no bounds).
    pub fn new() -> Self {
        TimingContract::default()
    }

    /// Requires every activation to finish within `deadline`.
    #[must_use]
    pub fn with_deadline(mut self, deadline: RelativeTime) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Bounds the deviation between consecutive release gaps.
    #[must_use]
    pub fn with_max_jitter(mut self, max_jitter: RelativeTime) -> Self {
        self.max_jitter = Some(max_jitter);
        self
    }

    /// Requires at least `hz` activations per second, on average, over
    /// the observation window.
    #[must_use]
    pub fn with_min_throughput_hz(mut self, hz: u32) -> Self {
        self.min_throughput_hz = Some(hz);
        self
    }

    /// Bounds the observed latency at `percentile` (clamped to 1..=100);
    /// may be called repeatedly for several quantiles.
    #[must_use]
    pub fn with_quantile_bound(mut self, percentile: u8, bound: RelativeTime) -> Self {
        self.quantile_bounds.push((percentile.clamp(1, 100), bound));
        self
    }

    /// The contracted per-activation deadline, if any.
    pub fn deadline(&self) -> Option<RelativeTime> {
        self.deadline
    }

    /// The contracted release-jitter bound, if any.
    pub fn max_jitter(&self) -> Option<RelativeTime> {
        self.max_jitter
    }

    /// The contracted throughput floor in Hz, if any.
    pub fn min_throughput_hz(&self) -> Option<u32> {
        self.min_throughput_hz
    }

    /// The contracted latency-quantile bounds, in attach order.
    pub fn quantile_bounds(&self) -> &[(u8, RelativeTime)] {
        &self.quantile_bounds
    }

    /// True when the contract carries no bounds at all.
    pub fn is_empty(&self) -> bool {
        self.deadline.is_none()
            && self.max_jitter.is_none()
            && self.min_throughput_hz.is_none()
            && self.quantile_bounds.is_empty()
    }

    /// Compares an online observation against the contracted bounds and
    /// reports every violation as an *Error* diagnostic (SOL-016…SOL-019).
    /// A satisfied contract yields an empty — hence compliant — report.
    pub fn verdict(&self, obs: &ContractObservation) -> ValidationReport {
        let mut report = ValidationReport::default();
        if self.deadline.is_some() && obs.deadline_misses > 0 {
            report.append(Diagnostic {
                code: "SOL-016",
                severity: Severity::Error,
                subject: obs.component.clone(),
                message: format!(
                    "{} of {} activations missed the {} deadline",
                    obs.deadline_misses,
                    obs.activations,
                    self.deadline.unwrap_or(RelativeTime::ZERO),
                ),
                suggestion: Some(
                    "raise the contracted deadline, shorten the activation chain, or move the \
                     component into a no-heap-interference (NHRT) domain"
                        .into(),
                ),
            });
        }
        if self.max_jitter.is_some() && obs.jitter_violations > 0 {
            report.append(Diagnostic {
                code: "SOL-017",
                severity: Severity::Error,
                subject: obs.component.clone(),
                message: format!(
                    "{} release gap(s) deviated more than {} from the preceding gap",
                    obs.jitter_violations,
                    self.max_jitter.unwrap_or(RelativeTime::ZERO),
                ),
                suggestion: Some(
                    "isolate the component from GC-exposed domains or widen the jitter bound"
                        .into(),
                ),
            });
        }
        if let Some(floor) = self.min_throughput_hz {
            if obs.activations > 0 && obs.observed_hz < f64::from(floor) {
                report.append(Diagnostic {
                    code: "SOL-018",
                    severity: Severity::Error,
                    subject: obs.component.clone(),
                    message: format!(
                        "observed throughput {:.1} Hz is below the contracted floor of {floor} Hz",
                        obs.observed_hz,
                    ),
                    suggestion: Some(
                        "schedule releases more often or lower the throughput floor".into(),
                    ),
                });
            }
        }
        for &(percentile, bound) in &self.quantile_bounds {
            let observed = obs
                .quantiles_ns
                .iter()
                .find(|(p, _)| *p == percentile)
                .map(|&(_, ns)| ns);
            if let Some(observed_ns) = observed {
                if observed_ns > bound.as_nanos() {
                    report.append(Diagnostic {
                        code: "SOL-019",
                        severity: Severity::Error,
                        subject: obs.component.clone(),
                        message: format!(
                            "p{percentile} latency {} exceeds the contracted bound {bound}",
                            RelativeTime::from_nanos(observed_ns),
                        ),
                        suggestion: Some(
                            "the histogram bound is conservative (log2 bucket upper edge); \
                             widen the bound or reduce tail latency"
                                .into(),
                        ),
                    });
                }
            }
        }
        report
    }
}

/// What the runtime actually observed for one monitored component — the
/// input to [`TimingContract::verdict`]. Produced from the engine's
/// latency monitor; constructible by hand for tests and offline analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ContractObservation {
    /// Component name (the verdict's diagnostic subject).
    pub component: String,
    /// Total monitored activations.
    pub activations: u64,
    /// Activations that exceeded the contracted deadline.
    pub deadline_misses: u64,
    /// Release gaps whose deviation exceeded the contracted jitter bound.
    pub jitter_violations: u64,
    /// Observed average activation rate, Hz.
    pub observed_hz: f64,
    /// Observed latency (ns) at each contract-requested percentile.
    pub quantiles_ns: Vec<(u8, u64)>,
}

impl ContractObservation {
    /// An empty observation for `component` (nothing seen yet).
    pub fn empty(component: impl Into<String>) -> Self {
        ContractObservation {
            component: component.into(),
            activations: 0,
            deadline_misses: 0,
            jitter_violations: 0,
            observed_hz: 0.0,
            quantiles_ns: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_obs() -> ContractObservation {
        ContractObservation {
            component: "Radar".into(),
            activations: 1_000,
            deadline_misses: 0,
            jitter_violations: 0,
            observed_hz: 100.0,
            quantiles_ns: vec![(99, 4_000_000)],
        }
    }

    #[test]
    fn satisfied_contract_is_compliant() {
        let contract = TimingContract::new()
            .with_deadline(RelativeTime::from_millis(10))
            .with_max_jitter(RelativeTime::from_millis(2))
            .with_min_throughput_hz(50)
            .with_quantile_bound(99, RelativeTime::from_millis(8));
        let report = contract.verdict(&clean_obs());
        assert!(report.is_compliant());
        assert!(report.is_empty());
        assert!(!contract.is_empty());
    }

    #[test]
    fn each_bound_reports_its_own_code() {
        let contract = TimingContract::new()
            .with_deadline(RelativeTime::from_millis(10))
            .with_max_jitter(RelativeTime::from_millis(2))
            .with_min_throughput_hz(500)
            .with_quantile_bound(99, RelativeTime::from_millis(1));
        let obs = ContractObservation {
            deadline_misses: 3,
            jitter_violations: 2,
            // observed_hz 100 < contracted 500; p99 4 ms > bound 1 ms.
            ..clean_obs()
        };
        let report = contract.verdict(&obs);
        assert!(!report.is_compliant());
        assert_eq!(report.len(), 4);
        for code in ["SOL-016", "SOL-017", "SOL-018", "SOL-019"] {
            assert_eq!(report.by_code(code).count(), 1, "missing {code}");
        }
        let text = report.to_string();
        assert!(text.contains("missed the 10ms deadline"), "{text}");
        assert!(text.contains("below the contracted floor"), "{text}");
    }

    #[test]
    fn unbounded_dimensions_never_violate() {
        // Only a deadline is contracted: jitter/throughput/quantile
        // observations are ignored even when terrible.
        let contract = TimingContract::new().with_deadline(RelativeTime::from_millis(10));
        let obs = ContractObservation {
            deadline_misses: 0,
            jitter_violations: 999,
            observed_hz: 0.0001,
            ..clean_obs()
        };
        assert!(contract.verdict(&obs).is_compliant());
        // And an empty contract is vacuously satisfied.
        assert!(TimingContract::new().is_empty());
        assert!(TimingContract::new().verdict(&obs).is_compliant());
    }

    #[test]
    fn throughput_floor_needs_observations() {
        // A throughput floor on a component that never ran is not a
        // violation (the window may simply not have started).
        let contract = TimingContract::new().with_min_throughput_hz(100);
        assert!(contract
            .verdict(&ContractObservation::empty("Idle"))
            .is_compliant());
    }

    #[test]
    fn quantile_percentiles_clamp() {
        let c = TimingContract::new().with_quantile_bound(0, RelativeTime::from_millis(1));
        assert_eq!(c.quantile_bounds(), &[(1, RelativeTime::from_millis(1))]);
        let c = TimingContract::new().with_quantile_bound(255, RelativeTime::from_millis(1));
        assert_eq!(c.quantile_bounds(), &[(100, RelativeTime::from_millis(1))]);
    }
}
