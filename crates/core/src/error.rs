//! The unified cross-layer error type.
//!
//! Every layer of the framework keeps its own precise error enum —
//! [`ModelError`] (metamodel/ADL), `rtsj::RtsjError` (substrate),
//! `FrameworkError` (membranes/runtime) and `GeneratorError` (generation) —
//! but application code composing the layers works against one type:
//! [`SoleilError`]. `From` conversions exist for all four layer enums (the
//! membrane and generator crates provide theirs, since those types live
//! downstream of this crate), so `?` flows end-to-end through design →
//! validation → generation → execution.

use std::fmt;

use rtsj::RtsjError;

use crate::validate::ValidationReport;
use crate::ModelError;

/// The framework-wide error: every layer's failure, one type.
///
/// Diagnostics keep their structure where it matters: a refused
/// architecture carries the full [`ValidationReport`], and substrate/model
/// errors are held as their original enums so callers can still match on
/// them. Membrane and generator failures arrive pre-rendered (their enums
/// live in downstream crates).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum SoleilError {
    /// A metamodel or ADL failure.
    Model(ModelError),
    /// An RTSJ substrate violation.
    Rtsj(RtsjError),
    /// The validator refused the architecture; the structured report is
    /// preserved verbatim.
    Validation(ValidationReport),
    /// A membrane/runtime failure (rendered `FrameworkError`).
    Framework(String),
    /// A generation failure (rendered `GeneratorError`).
    Generator(String),
    /// An I/O failure from tooling around the framework.
    Io(String),
}

impl fmt::Display for SoleilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoleilError::Model(e) => write!(f, "{e}"),
            SoleilError::Rtsj(e) => write!(f, "{e}"),
            SoleilError::Validation(report) => {
                write!(f, "architecture violates RTSJ:\n{report}")
            }
            SoleilError::Framework(m) | SoleilError::Generator(m) => f.write_str(m),
            SoleilError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for SoleilError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SoleilError::Model(e) => Some(e),
            SoleilError::Rtsj(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for SoleilError {
    fn from(e: ModelError) -> Self {
        SoleilError::Model(e)
    }
}

impl From<RtsjError> for SoleilError {
    fn from(e: RtsjError) -> Self {
        SoleilError::Rtsj(e)
    }
}

impl From<ValidationReport> for SoleilError {
    fn from(report: ValidationReport) -> Self {
        SoleilError::Validation(report)
    }
}

impl From<crate::validate::RejectedArchitecture> for SoleilError {
    fn from(rejected: crate::validate::RejectedArchitecture) -> Self {
        SoleilError::Validation(rejected.report)
    }
}

impl From<Box<crate::validate::RejectedArchitecture>> for SoleilError {
    fn from(rejected: Box<crate::validate::RejectedArchitecture>) -> Self {
        SoleilError::Validation(rejected.report)
    }
}

impl From<std::io::Error> for SoleilError {
    fn from(e: std::io::Error) -> Self {
        SoleilError::Io(e.to_string())
    }
}

/// Result alias over the unified error.
pub type SoleilResult<T> = std::result::Result<T, SoleilError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn model_errors_convert_and_keep_text() {
        let model = ModelError::DuplicateName("pump".into());
        let text = model.to_string();
        let unified: SoleilError = model.into();
        assert!(matches!(unified, SoleilError::Model(_)));
        assert_eq!(unified.to_string(), text);
        assert!(unified.source().is_some());
    }

    #[test]
    fn rtsj_errors_convert_and_keep_text() {
        let rtsj = RtsjError::IllegalState("exit on empty stack".into());
        let text = rtsj.to_string();
        let unified: SoleilError = rtsj.into();
        assert!(matches!(unified, SoleilError::Rtsj(_)));
        assert_eq!(unified.to_string(), text);
    }

    #[test]
    fn question_mark_converts() {
        fn inner() -> crate::Result<()> {
            Err(ModelError::UnknownComponent("ghost".into()))
        }
        fn outer() -> SoleilResult<()> {
            inner()?;
            Ok(())
        }
        assert!(matches!(outer(), Err(SoleilError::Model(_))));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync + 'static>() {}
        check::<SoleilError>();
    }
}
