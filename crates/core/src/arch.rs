//! The [`Architecture`] container: a component DAG with sharing, a binding
//! table, and the queries the validator and generator build on.
//!
//! The metamodel supports **component sharing** (a component may have
//! several super-components — the feature the paper credits to Fractal), so
//! the containment structure is a DAG, not a tree. A functional component is
//! typically shared between one ThreadDomain (fixing its thread) and one
//! MemoryArea (fixing its allocation region), or reaches them transitively.

use std::collections::{HashMap, HashSet, VecDeque};

use rtsj::memory::MemoryKind;
use rtsj::thread::ThreadKind;

use crate::json::JsonValue;
use crate::model::{
    ActivationKind, Binding, Component, ComponentId, ComponentKind, Endpoint, InterfaceDecl,
    MemoryAreaDesc, Protocol, Role, ThreadDomainDesc,
};
use crate::{ModelError, Result};

/// A complete (or in-progress) component architecture.
///
/// Construction is incremental: add components, connect hierarchy edges,
/// declare interfaces, add bindings. Structural well-formedness (unique
/// names, acyclic hierarchy, endpoint existence) is enforced eagerly;
/// RTSJ conformance is checked separately by [`crate::validate::validate`].
#[derive(Debug, Clone, Default)]
pub struct Architecture {
    /// Architecture name (diagnostics, generated-code headers).
    pub name: String,
    components: Vec<Component>,
    /// children[parent] = list of sub-component ids.
    children: Vec<Vec<ComponentId>>,
    /// parents[child] = list of super-component ids (sharing!).
    parents: Vec<Vec<ComponentId>>,
    bindings: Vec<Binding>,
    /// Derived name index; rebuilt by [`Architecture::reindex`] and skipped
    /// by the JSON form.
    by_name: HashMap<String, ComponentId>,
}

impl Architecture {
    /// Creates an empty architecture.
    pub fn new(name: impl Into<String>) -> Self {
        Architecture {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Rebuilds the name index (needed after deserialization).
    pub fn reindex(&mut self) {
        self.by_name = self
            .components
            .iter()
            .map(|c| (c.name.clone(), c.id))
            .collect();
    }

    // -----------------------------------------------------------------
    // Construction
    // -----------------------------------------------------------------

    /// Adds a component of the given kind.
    ///
    /// # Errors
    ///
    /// [`ModelError::DuplicateName`] if the name is taken.
    pub fn add_component(
        &mut self,
        name: impl Into<String>,
        kind: ComponentKind,
    ) -> Result<ComponentId> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(ModelError::DuplicateName(name));
        }
        let id = ComponentId(self.components.len() as u32);
        self.components.push(Component {
            id,
            name: name.clone(),
            kind,
            interfaces: Vec::new(),
            content_class: None,
        });
        self.children.push(Vec::new());
        self.parents.push(Vec::new());
        self.by_name.insert(name, id);
        Ok(id)
    }

    /// Sets the content class of a functional component.
    ///
    /// # Errors
    ///
    /// [`ModelError::KindMismatch`] for non-functional components — the
    /// paper is explicit that ThreadDomain and MemoryArea are *exclusively
    /// composite* and carry no functional behaviour.
    pub fn set_content_class(&mut self, id: ComponentId, class: impl Into<String>) -> Result<()> {
        let c = self.component_mut(id)?;
        if !c.kind.is_functional() {
            return Err(ModelError::KindMismatch {
                component: c.name.clone(),
                detail: "non-functional components cannot have a content class".into(),
            });
        }
        c.content_class = Some(class.into());
        Ok(())
    }

    /// Declares an interface on a component.
    ///
    /// # Errors
    ///
    /// * [`ModelError::DuplicateName`] if the interface name is taken on
    ///   this component.
    /// * [`ModelError::KindMismatch`] for non-functional components.
    pub fn add_interface(
        &mut self,
        id: ComponentId,
        name: impl Into<String>,
        role: Role,
        signature: impl Into<String>,
    ) -> Result<()> {
        let c = self.component_mut(id)?;
        if !c.kind.is_functional() {
            return Err(ModelError::KindMismatch {
                component: c.name.clone(),
                detail: "non-functional components expose no functional interfaces".into(),
            });
        }
        let name = name.into();
        if c.interface(&name).is_some() {
            return Err(ModelError::DuplicateName(format!("{}.{}", c.name, name)));
        }
        c.interfaces.push(InterfaceDecl {
            name,
            role,
            signature: signature.into(),
        });
        Ok(())
    }

    /// Adds a containment edge `parent -> child`. Sharing is allowed: a
    /// child may gain several parents.
    ///
    /// # Errors
    ///
    /// * [`ModelError::HierarchyCycle`] if the edge would make the DAG
    ///   cyclic (or `parent == child`).
    /// * [`ModelError::KindMismatch`] if `parent` is Active or Passive
    ///   (only composites contain).
    pub fn add_child(&mut self, parent: ComponentId, child: ComponentId) -> Result<()> {
        let pc = self.component(parent)?;
        if matches!(pc.kind, ComponentKind::Active(_) | ComponentKind::Passive) {
            return Err(ModelError::KindMismatch {
                component: pc.name.clone(),
                detail: "active/passive components cannot contain sub-components".into(),
            });
        }
        self.component(child)?;
        if parent == child || self.is_reachable(child, parent) {
            return Err(ModelError::HierarchyCycle(
                self.components[child.0 as usize].name.clone(),
            ));
        }
        if !self.children[parent.0 as usize].contains(&child) {
            self.children[parent.0 as usize].push(child);
            self.parents[child.0 as usize].push(parent);
        }
        Ok(())
    }

    /// Removes the containment edge `parent -> child`; returns whether the
    /// edge existed (parity with [`unbind`](Self::unbind), so callers —
    /// e.g. the transactional-reconfiguration rollback — can detect a
    /// hierarchy that diverged from their expectations).
    pub fn remove_child(&mut self, parent: ComponentId, child: ComponentId) -> bool {
        let mut removed = false;
        if let Some(v) = self.children.get_mut(parent.0 as usize) {
            let before = v.len();
            v.retain(|&c| c != child);
            removed = v.len() != before;
        }
        if let Some(v) = self.parents.get_mut(child.0 as usize) {
            v.retain(|&p| p != parent);
        }
        removed
    }

    /// Adds a binding between a client interface and a server interface.
    ///
    /// # Errors
    ///
    /// * [`ModelError::UnknownInterface`] if either endpoint names a
    ///   missing interface.
    /// * [`ModelError::KindMismatch`] if the endpoint roles are wrong or
    ///   the signatures disagree.
    pub fn bind(
        &mut self,
        client: ComponentId,
        client_if: &str,
        server: ComponentId,
        server_if: &str,
        protocol: Protocol,
    ) -> Result<()> {
        let (c, s) = (self.component(client)?, self.component(server)?);
        let ci = c
            .interface(client_if)
            .ok_or_else(|| ModelError::UnknownInterface {
                component: c.name.clone(),
                interface: client_if.to_string(),
            })?;
        let si = s
            .interface(server_if)
            .ok_or_else(|| ModelError::UnknownInterface {
                component: s.name.clone(),
                interface: server_if.to_string(),
            })?;
        if ci.role != Role::Client {
            return Err(ModelError::KindMismatch {
                component: c.name.clone(),
                detail: format!("interface '{client_if}' is not a client interface"),
            });
        }
        if si.role != Role::Server {
            return Err(ModelError::KindMismatch {
                component: s.name.clone(),
                detail: format!("interface '{server_if}' is not a server interface"),
            });
        }
        if ci.signature != si.signature {
            return Err(ModelError::KindMismatch {
                component: c.name.clone(),
                detail: format!(
                    "signature mismatch: {}.{client_if}: {} vs {}.{server_if}: {}",
                    c.name, ci.signature, s.name, si.signature
                ),
            });
        }
        self.bindings.push(Binding {
            client: Endpoint {
                component: client,
                interface: client_if.to_string(),
            },
            server: Endpoint {
                component: server,
                interface: server_if.to_string(),
            },
            protocol,
        });
        Ok(())
    }

    /// Removes a binding by exact endpoints; returns whether one was removed.
    pub fn unbind(&mut self, client: ComponentId, client_if: &str) -> bool {
        let before = self.bindings.len();
        self.bindings
            .retain(|b| !(b.client.component == client && b.client.interface == client_if));
        self.bindings.len() != before
    }

    // -----------------------------------------------------------------
    // Lookup and traversal
    // -----------------------------------------------------------------

    /// The component with the given id.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownComponent`] for an out-of-range id.
    pub fn component(&self, id: ComponentId) -> Result<&Component> {
        self.components
            .get(id.0 as usize)
            .ok_or_else(|| ModelError::UnknownComponent(format!("{id}")))
    }

    fn component_mut(&mut self, id: ComponentId) -> Result<&mut Component> {
        self.components
            .get_mut(id.0 as usize)
            .ok_or_else(|| ModelError::UnknownComponent(format!("{id}")))
    }

    /// Looks a component up by name.
    pub fn by_name(&self, name: &str) -> Option<&Component> {
        self.by_name
            .get(name)
            .map(|&id| &self.components[id.0 as usize])
    }

    /// Id of the component with the given name.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownComponent`] when absent.
    pub fn id_of(&self, name: &str) -> Result<ComponentId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| ModelError::UnknownComponent(name.to_string()))
    }

    /// All components, in insertion order.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// All bindings, in insertion order.
    pub fn bindings(&self) -> &[Binding] {
        &self.bindings
    }

    /// Direct sub-components of `id`.
    pub fn children_of(&self, id: ComponentId) -> &[ComponentId] {
        &self.children[id.0 as usize]
    }

    /// Direct super-components of `id` (more than one under sharing).
    pub fn parents_of(&self, id: ComponentId) -> &[ComponentId] {
        &self.parents[id.0 as usize]
    }

    /// Components with no super-component.
    pub fn roots(&self) -> Vec<ComponentId> {
        self.components
            .iter()
            .filter(|c| self.parents[c.id.0 as usize].is_empty())
            .map(|c| c.id)
            .collect()
    }

    /// True when `to` is reachable from `from` following child edges.
    pub fn is_reachable(&self, from: ComponentId, to: ComponentId) -> bool {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([from]);
        while let Some(c) = queue.pop_front() {
            if c == to {
                return true;
            }
            if seen.insert(c) {
                queue.extend(self.children[c.0 as usize].iter().copied());
            }
        }
        false
    }

    /// Every ancestor of `id` (transitive supers, deduplicated, BFS order).
    pub fn ancestors(&self, id: ComponentId) -> Vec<ComponentId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        let mut queue: VecDeque<ComponentId> =
            self.parents[id.0 as usize].iter().copied().collect();
        while let Some(p) = queue.pop_front() {
            if seen.insert(p) {
                out.push(p);
                queue.extend(self.parents[p.0 as usize].iter().copied());
            }
        }
        out
    }

    /// Every descendant of `id` (transitive children, deduplicated).
    pub fn descendants(&self, id: ComponentId) -> Vec<ComponentId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        let mut queue: VecDeque<ComponentId> =
            self.children[id.0 as usize].iter().copied().collect();
        while let Some(c) = queue.pop_front() {
            if seen.insert(c) {
                out.push(c);
                queue.extend(self.children[c.0 as usize].iter().copied());
            }
        }
        out
    }

    // -----------------------------------------------------------------
    // Real-time queries
    // -----------------------------------------------------------------

    /// All ThreadDomain ancestors of `id` (usually exactly one for a valid
    /// architecture).
    pub fn thread_domains_of(&self, id: ComponentId) -> Vec<ComponentId> {
        self.ancestors(id)
            .into_iter()
            .filter(|&a| {
                matches!(
                    self.components[a.0 as usize].kind,
                    ComponentKind::ThreadDomain(_)
                )
            })
            .collect()
    }

    /// The unique ThreadDomain governing `id`, when exactly one exists.
    pub fn thread_domain_of(&self, id: ComponentId) -> Option<(ComponentId, ThreadDomainDesc)> {
        let domains = self.thread_domains_of(id);
        match domains.as_slice() {
            [d] => match self.components[d.0 as usize].kind {
                ComponentKind::ThreadDomain(desc) => Some((*d, desc)),
                _ => None,
            },
            _ => None,
        }
    }

    /// All MemoryArea ancestors of `id`, nearest first.
    pub fn memory_areas_of(&self, id: ComponentId) -> Vec<ComponentId> {
        self.ancestors(id)
            .into_iter()
            .filter(|&a| {
                matches!(
                    self.components[a.0 as usize].kind,
                    ComponentKind::MemoryArea(_)
                )
            })
            .collect()
    }

    /// The *effective* memory area of `id`: the nearest MemoryArea ancestor
    /// (memory areas may nest, so a component's allocation region is the
    /// innermost enclosing area).
    pub fn memory_area_of(&self, id: ComponentId) -> Option<(ComponentId, MemoryAreaDesc)> {
        // BFS over supers returns nearest-first.
        let areas = self.memory_areas_of(id);
        areas
            .first()
            .map(|&a| match self.components[a.0 as usize].kind {
                ComponentKind::MemoryArea(desc) => (a, desc),
                _ => unreachable!("filtered on MemoryArea"),
            })
    }

    /// All active components, in insertion order.
    pub fn actives(&self) -> Vec<ComponentId> {
        self.components
            .iter()
            .filter(|c| c.kind.is_active())
            .map(|c| c.id)
            .collect()
    }

    /// All functional (business) components.
    pub fn functional_components(&self) -> Vec<ComponentId> {
        self.components
            .iter()
            .filter(|c| c.kind.is_functional())
            .map(|c| c.id)
            .collect()
    }

    /// Bindings whose server side is `id`.
    pub fn incoming_bindings(&self, id: ComponentId) -> Vec<&Binding> {
        self.bindings
            .iter()
            .filter(|b| b.server.component == id)
            .collect()
    }

    /// Bindings whose client side is `id`.
    pub fn outgoing_bindings(&self, id: ComponentId) -> Vec<&Binding> {
        self.bindings
            .iter()
            .filter(|b| b.client.component == id)
            .collect()
    }

    /// The activation kind of an active component.
    pub fn activation_of(&self, id: ComponentId) -> Option<ActivationKind> {
        match self.components.get(id.0 as usize)?.kind {
            ComponentKind::Active(a) => Some(a),
            _ => None,
        }
    }

    // -----------------------------------------------------------------
    // JSON form (used by `adl::to_json` / `adl::from_json`)
    // -----------------------------------------------------------------

    /// Renders the architecture as a [`JsonValue`] tree. The derived name
    /// index is not serialized; [`Architecture::reindex`] rebuilds it.
    pub(crate) fn to_json_value(&self) -> JsonValue {
        let id_list = |ids: &[ComponentId]| {
            JsonValue::Array(
                ids.iter()
                    .map(|id| JsonValue::Number(i128::from(id.0)))
                    .collect(),
            )
        };
        JsonValue::Object(vec![
            ("name".into(), JsonValue::from(self.name.as_str())),
            (
                "components".into(),
                JsonValue::Array(self.components.iter().map(component_to_json).collect()),
            ),
            (
                "children".into(),
                JsonValue::Array(self.children.iter().map(|ids| id_list(ids)).collect()),
            ),
            (
                "parents".into(),
                JsonValue::Array(self.parents.iter().map(|ids| id_list(ids)).collect()),
            ),
            (
                "bindings".into(),
                JsonValue::Array(self.bindings.iter().map(binding_to_json).collect()),
            ),
        ])
    }

    /// Rebuilds an architecture from its JSON form. The caller is expected
    /// to [`Architecture::reindex`] afterwards (mirroring deserialization).
    pub(crate) fn from_json_value(value: &JsonValue) -> Result<Architecture> {
        let name = require_str(value, "name")?.to_string();
        let components = require_array(value, "components")?
            .iter()
            .map(component_from_json)
            .collect::<Result<Vec<_>>>()?;
        let id_lists = |key: &str| -> Result<Vec<Vec<ComponentId>>> {
            require_array(value, key)?
                .iter()
                .map(|ids| {
                    ids.as_array()
                        .ok_or_else(|| json_err(format!("'{key}' entries must be arrays")))?
                        .iter()
                        .map(|id| {
                            id.as_u32()
                                .map(ComponentId)
                                .ok_or_else(|| json_err("component ids must be u32 numbers"))
                        })
                        .collect()
                })
                .collect()
        };
        let children = id_lists("children")?;
        let parents = id_lists("parents")?;
        let bindings = require_array(value, "bindings")?
            .iter()
            .map(binding_from_json)
            .collect::<Result<Vec<_>>>()?;
        if children.len() != components.len() || parents.len() != components.len() {
            return Err(json_err(
                "children/parents tables must have one entry per component",
            ));
        }
        // Stored ids are also the indices every lookup dereferences; a
        // document with holes or permutations must be refused, not loaded.
        if let Some((ix, c)) = components
            .iter()
            .enumerate()
            .find(|(ix, c)| c.id.0 as usize != *ix)
        {
            return Err(json_err(format!(
                "component '{}' has id {} but sits at index {ix}",
                c.name, c.id.0
            )));
        }
        // reindex() maps names to ids: duplicates would silently shadow
        // earlier components, so refuse them like every construction path.
        let mut names = HashSet::new();
        if let Some(c) = components.iter().find(|c| !names.insert(c.name.as_str())) {
            return Err(json_err(format!("duplicate component name '{}'", c.name)));
        }
        let component_count = components.len() as u32;
        let in_range = |id: &ComponentId| id.0 < component_count;
        if !children.iter().flatten().all(in_range)
            || !parents.iter().flatten().all(in_range)
            || !bindings
                .iter()
                .all(|b| in_range(&b.client.component) && in_range(&b.server.component))
        {
            return Err(json_err("component id out of range"));
        }
        Ok(Architecture {
            name,
            components,
            children,
            parents,
            bindings,
            by_name: HashMap::new(),
        })
    }
}

fn json_err(detail: impl Into<String>) -> ModelError {
    ModelError::Parse {
        line: 0,
        detail: detail.into(),
    }
}

fn require_str<'a>(value: &'a JsonValue, key: &str) -> Result<&'a str> {
    value
        .get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| json_err(format!("missing string field '{key}'")))
}

fn require_array<'a>(value: &'a JsonValue, key: &str) -> Result<&'a [JsonValue]> {
    value
        .get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| json_err(format!("missing array field '{key}'")))
}

fn kind_to_json(kind: &ComponentKind) -> JsonValue {
    let mut members = vec![("type".into(), JsonValue::from(kind.label()))];
    match kind {
        ComponentKind::Active(ActivationKind::Periodic { period_ns }) => {
            members.push(("activation".into(), JsonValue::from("periodic")));
            members.push((
                "period_ns".into(),
                JsonValue::Number(i128::from(*period_ns)),
            ));
        }
        ComponentKind::Active(ActivationKind::Sporadic) => {
            members.push(("activation".into(), JsonValue::from("sporadic")));
        }
        ComponentKind::Passive | ComponentKind::Composite => {}
        ComponentKind::ThreadDomain(desc) => {
            members.push(("thread".into(), JsonValue::from(desc.kind.code())));
            members.push((
                "priority".into(),
                JsonValue::Number(i128::from(desc.priority)),
            ));
        }
        ComponentKind::MemoryArea(desc) => {
            members.push(("memory".into(), JsonValue::from(desc.kind.code())));
            members.push((
                "size".into(),
                match desc.size {
                    Some(size) => JsonValue::Number(size as i128),
                    None => JsonValue::Null,
                },
            ));
        }
    }
    JsonValue::Object(members)
}

fn kind_from_json(value: &JsonValue) -> Result<ComponentKind> {
    let tag = require_str(value, "type")?;
    match tag {
        "active" => match require_str(value, "activation")? {
            "periodic" => {
                let period_ns = value
                    .get("period_ns")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| json_err("periodic activation needs 'period_ns'"))?;
                Ok(ComponentKind::Active(ActivationKind::Periodic {
                    period_ns,
                }))
            }
            "sporadic" => Ok(ComponentKind::Active(ActivationKind::Sporadic)),
            other => Err(json_err(format!("unknown activation '{other}'"))),
        },
        "passive" => Ok(ComponentKind::Passive),
        "composite" => Ok(ComponentKind::Composite),
        "thread-domain" => {
            let kind = require_str(value, "thread")?;
            let kind = ThreadKind::parse(kind)
                .ok_or_else(|| json_err(format!("unknown thread kind '{kind}'")))?;
            let priority = value
                .get("priority")
                .and_then(JsonValue::as_u8)
                .ok_or_else(|| json_err("thread-domain needs a u8 'priority'"))?;
            Ok(ComponentKind::ThreadDomain(ThreadDomainDesc {
                kind,
                priority,
            }))
        }
        "memory-area" => {
            let kind = require_str(value, "memory")?;
            let kind = MemoryKind::parse(kind)
                .ok_or_else(|| json_err(format!("unknown memory kind '{kind}'")))?;
            let size = match value.get("size") {
                None | Some(JsonValue::Null) => None,
                Some(v) => Some(
                    v.as_usize()
                        .ok_or_else(|| json_err("memory-area 'size' must be a usize"))?,
                ),
            };
            Ok(ComponentKind::MemoryArea(MemoryAreaDesc { kind, size }))
        }
        other => Err(json_err(format!("unknown component kind '{other}'"))),
    }
}

pub(crate) fn component_to_json(c: &Component) -> JsonValue {
    JsonValue::Object(vec![
        ("id".into(), JsonValue::Number(i128::from(c.id.0))),
        ("name".into(), JsonValue::from(c.name.as_str())),
        ("kind".into(), kind_to_json(&c.kind)),
        (
            "interfaces".into(),
            JsonValue::Array(
                c.interfaces
                    .iter()
                    .map(|i| {
                        JsonValue::Object(vec![
                            ("name".into(), JsonValue::from(i.name.as_str())),
                            ("role".into(), JsonValue::from(i.role.to_string())),
                            ("signature".into(), JsonValue::from(i.signature.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "content_class".into(),
            match &c.content_class {
                Some(class) => JsonValue::from(class.as_str()),
                None => JsonValue::Null,
            },
        ),
    ])
}

pub(crate) fn component_from_json(value: &JsonValue) -> Result<Component> {
    let id = value
        .get("id")
        .and_then(JsonValue::as_u32)
        .map(ComponentId)
        .ok_or_else(|| json_err("component needs a u32 'id'"))?;
    let interfaces = require_array(value, "interfaces")?
        .iter()
        .map(|i| {
            let role = match require_str(i, "role")? {
                "client" => Role::Client,
                "server" => Role::Server,
                other => return Err(json_err(format!("unknown interface role '{other}'"))),
            };
            Ok(InterfaceDecl {
                name: require_str(i, "name")?.to_string(),
                role,
                signature: require_str(i, "signature")?.to_string(),
            })
        })
        .collect::<Result<Vec<_>>>()?;
    let content_class = match value.get("content_class") {
        None | Some(JsonValue::Null) => None,
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| json_err("'content_class' must be a string or null"))?
                .to_string(),
        ),
    };
    Ok(Component {
        id,
        name: require_str(value, "name")?.to_string(),
        kind: kind_from_json(
            value
                .get("kind")
                .ok_or_else(|| json_err("component needs a 'kind'"))?,
        )?,
        interfaces,
        content_class,
    })
}

fn endpoint_to_json(e: &Endpoint) -> JsonValue {
    JsonValue::Object(vec![
        (
            "component".into(),
            JsonValue::Number(i128::from(e.component.0)),
        ),
        ("interface".into(), JsonValue::from(e.interface.as_str())),
    ])
}

fn endpoint_from_json(value: &JsonValue) -> Result<Endpoint> {
    Ok(Endpoint {
        component: value
            .get("component")
            .and_then(JsonValue::as_u32)
            .map(ComponentId)
            .ok_or_else(|| json_err("endpoint needs a u32 'component'"))?,
        interface: require_str(value, "interface")?.to_string(),
    })
}

fn binding_to_json(b: &Binding) -> JsonValue {
    let protocol = match b.protocol {
        Protocol::Synchronous => {
            JsonValue::Object(vec![("type".into(), JsonValue::from("synchronous"))])
        }
        Protocol::Asynchronous { buffer_size } => JsonValue::Object(vec![
            ("type".into(), JsonValue::from("asynchronous")),
            ("buffer_size".into(), JsonValue::Number(buffer_size as i128)),
        ]),
    };
    JsonValue::Object(vec![
        ("client".into(), endpoint_to_json(&b.client)),
        ("server".into(), endpoint_to_json(&b.server)),
        ("protocol".into(), protocol),
    ])
}

fn binding_from_json(value: &JsonValue) -> Result<Binding> {
    let protocol = value
        .get("protocol")
        .ok_or_else(|| json_err("binding needs a 'protocol'"))?;
    let protocol = match require_str(protocol, "type")? {
        "synchronous" => Protocol::Synchronous,
        "asynchronous" => Protocol::Asynchronous {
            buffer_size: protocol
                .get("buffer_size")
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| json_err("asynchronous protocol needs 'buffer_size'"))?,
        },
        other => return Err(json_err(format!("unknown protocol '{other}'"))),
    };
    Ok(Binding {
        client: endpoint_from_json(
            value
                .get("client")
                .ok_or_else(|| json_err("binding needs a 'client'"))?,
        )?,
        server: endpoint_from_json(
            value
                .get("server")
                .ok_or_else(|| json_err("binding needs a 'server'"))?,
        )?,
        protocol,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsj::memory::MemoryKind;
    use rtsj::thread::ThreadKind;

    fn arch_with_sharing() -> (Architecture, ComponentId, ComponentId, ComponentId) {
        let mut a = Architecture::new("t");
        let comp = a
            .add_component("worker", ComponentKind::Active(ActivationKind::Sporadic))
            .unwrap();
        let domain = a
            .add_component(
                "nhrt",
                ComponentKind::ThreadDomain(ThreadDomainDesc {
                    kind: ThreadKind::NoHeapRealtime,
                    priority: 30,
                }),
            )
            .unwrap();
        let area = a
            .add_component(
                "imm",
                ComponentKind::MemoryArea(MemoryAreaDesc {
                    kind: MemoryKind::Immortal,
                    size: Some(1024),
                }),
            )
            .unwrap();
        a.add_child(domain, comp).unwrap();
        a.add_child(area, domain).unwrap();
        (a, comp, domain, area)
    }

    #[test]
    fn names_are_unique() {
        let mut a = Architecture::new("t");
        a.add_component("x", ComponentKind::Passive).unwrap();
        assert!(matches!(
            a.add_component("x", ComponentKind::Passive),
            Err(ModelError::DuplicateName(_))
        ));
    }

    #[test]
    fn sharing_gives_multiple_parents() {
        let (mut a, comp, domain, _area) = arch_with_sharing();
        let area2 = a
            .add_component(
                "s1",
                ComponentKind::MemoryArea(MemoryAreaDesc {
                    kind: MemoryKind::Scoped,
                    size: Some(512),
                }),
            )
            .unwrap();
        a.add_child(area2, comp).unwrap();
        assert_eq!(a.parents_of(comp).len(), 2);
        assert!(a.parents_of(comp).contains(&domain));
        assert!(a.parents_of(comp).contains(&area2));
    }

    #[test]
    fn cycles_rejected() {
        let (mut a, comp, _domain, area) = arch_with_sharing();
        assert!(matches!(
            a.add_child(comp, area),
            Err(ModelError::KindMismatch { .. })
        ));
        // Composite cycle: area -> domain -> comp; adding domain as parent of area is a cycle.
        let composite = a.add_component("outer", ComponentKind::Composite).unwrap();
        a.add_child(composite, area).unwrap();
        let err = a.add_child(area, composite).unwrap_err();
        assert!(matches!(err, ModelError::HierarchyCycle(_)));
    }

    #[test]
    fn self_edge_rejected() {
        let mut a = Architecture::new("t");
        let c = a.add_component("c", ComponentKind::Composite).unwrap();
        assert!(matches!(
            a.add_child(c, c),
            Err(ModelError::HierarchyCycle(_))
        ));
    }

    #[test]
    fn thread_domain_and_area_queries() {
        let (a, comp, domain, area) = arch_with_sharing();
        let (d, desc) = a.thread_domain_of(comp).unwrap();
        assert_eq!(d, domain);
        assert_eq!(desc.kind, ThreadKind::NoHeapRealtime);
        let (m, mdesc) = a.memory_area_of(comp).unwrap();
        assert_eq!(m, area);
        assert_eq!(mdesc.kind, MemoryKind::Immortal);
        // The domain itself lives in the area.
        assert_eq!(a.memory_area_of(domain).unwrap().0, area);
    }

    #[test]
    fn nested_areas_nearest_wins() {
        let mut a = Architecture::new("t");
        let outer = a
            .add_component(
                "outer",
                ComponentKind::MemoryArea(MemoryAreaDesc {
                    kind: MemoryKind::Immortal,
                    size: Some(4096),
                }),
            )
            .unwrap();
        let inner = a
            .add_component(
                "inner",
                ComponentKind::MemoryArea(MemoryAreaDesc {
                    kind: MemoryKind::Scoped,
                    size: Some(1024),
                }),
            )
            .unwrap();
        let c = a.add_component("c", ComponentKind::Passive).unwrap();
        a.add_child(outer, inner).unwrap();
        a.add_child(inner, c).unwrap();
        assert_eq!(a.memory_area_of(c).unwrap().0, inner);
        assert_eq!(a.memory_areas_of(c), vec![inner, outer]);
    }

    #[test]
    fn binding_role_and_signature_checked() {
        let mut a = Architecture::new("t");
        let p = a
            .add_component("producer", ComponentKind::Active(ActivationKind::Sporadic))
            .unwrap();
        let q = a.add_component("consumer", ComponentKind::Passive).unwrap();
        a.add_interface(p, "out", Role::Client, "IMsg").unwrap();
        a.add_interface(q, "in", Role::Server, "IMsg").unwrap();
        a.add_interface(q, "other", Role::Server, "IOther").unwrap();

        // Wrong direction.
        assert!(a.bind(q, "in", p, "out", Protocol::Synchronous).is_err());
        // Signature mismatch.
        assert!(a.bind(p, "out", q, "other", Protocol::Synchronous).is_err());
        // Correct.
        a.bind(p, "out", q, "in", Protocol::Asynchronous { buffer_size: 4 })
            .unwrap();
        assert_eq!(a.bindings().len(), 1);
        assert_eq!(a.incoming_bindings(q).len(), 1);
        assert_eq!(a.outgoing_bindings(p).len(), 1);
    }

    #[test]
    fn unbind_removes() {
        let mut a = Architecture::new("t");
        let p = a
            .add_component("p", ComponentKind::Active(ActivationKind::Sporadic))
            .unwrap();
        let q = a.add_component("q", ComponentKind::Passive).unwrap();
        a.add_interface(p, "out", Role::Client, "I").unwrap();
        a.add_interface(q, "in", Role::Server, "I").unwrap();
        a.bind(p, "out", q, "in", Protocol::Synchronous).unwrap();
        assert!(a.unbind(p, "out"));
        assert!(!a.unbind(p, "out"));
        assert!(a.bindings().is_empty());
    }

    #[test]
    fn interfaces_forbidden_on_non_functional() {
        let (mut a, _comp, domain, _area) = arch_with_sharing();
        assert!(matches!(
            a.add_interface(domain, "i", Role::Server, "I"),
            Err(ModelError::KindMismatch { .. })
        ));
        assert!(matches!(
            a.set_content_class(domain, "Impl"),
            Err(ModelError::KindMismatch { .. })
        ));
    }

    #[test]
    fn roots_and_descendants() {
        let (a, comp, domain, area) = arch_with_sharing();
        assert_eq!(a.roots(), vec![area]);
        let desc = a.descendants(area);
        assert!(desc.contains(&domain));
        assert!(desc.contains(&comp));
        assert!(a.is_reachable(area, comp));
        assert!(!a.is_reachable(comp, area));
    }

    #[test]
    fn json_rejects_mismatched_component_ids() {
        // Stored ids are the indices lookups dereference: out-of-range or
        // permuted ids must be refused at load time, not panic later.
        let out_of_range = r#"{
            "name": "t",
            "components": [{"id": 99, "name": "w", "kind": {"type": "passive"},
                            "interfaces": [], "content_class": null}],
            "children": [[]],
            "parents": [[]],
            "bindings": []
        }"#;
        let err = crate::adl::from_json(out_of_range).unwrap_err();
        assert!(matches!(err, ModelError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("id 99"), "{err}");

        let permuted = r#"{
            "name": "t",
            "components": [
                {"id": 1, "name": "a", "kind": {"type": "passive"},
                 "interfaces": [], "content_class": null},
                {"id": 0, "name": "b", "kind": {"type": "passive"},
                 "interfaces": [], "content_class": null}
            ],
            "children": [[], []],
            "parents": [[], []],
            "bindings": []
        }"#;
        assert!(crate::adl::from_json(permuted).is_err());

        let duplicate_names = r#"{
            "name": "t",
            "components": [
                {"id": 0, "name": "a", "kind": {"type": "passive"},
                 "interfaces": [], "content_class": null},
                {"id": 1, "name": "a", "kind": {"type": "passive"},
                 "interfaces": [], "content_class": null}
            ],
            "children": [[], []],
            "parents": [[], []],
            "bindings": []
        }"#;
        let err = crate::adl::from_json(duplicate_names).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn json_roundtrip_with_reindex() {
        let (a, comp, ..) = arch_with_sharing();
        let json = a.to_json_value().to_pretty();
        let parsed = crate::json::parse(&json).unwrap();
        let mut back = Architecture::from_json_value(&parsed).unwrap();
        back.reindex();
        assert_eq!(back.id_of("worker").unwrap(), comp);
        assert_eq!(back.components().len(), a.components().len());
    }
}
