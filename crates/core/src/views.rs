//! The design methodology of Fig. 3: three views, gradually merged.
//!
//! 1. **Business View** ([`BusinessView`]) — functional components,
//!    interfaces and bindings only; no real-time concern in sight.
//! 2. **Thread Management View** — a partition of the active components
//!    into ThreadDomains ([`DesignFlow::thread_domain`]).
//! 3. **Memory Management View** — an assignment of components (or whole
//!    domains) into MemoryAreas ([`DesignFlow::memory_area`]).
//!
//! [`DesignFlow::merge`] fuses the three views into the final *RT System
//! Architecture*, ready for [`crate::validate::validate`]. Because the
//! business view never changes, the same functional architecture can be
//! re-deployed under different thread/memory views — the paper's "smooth
//! tailoring for variously hard real-time conditions".

use rtsj::memory::MemoryKind;
use rtsj::thread::ThreadKind;

use crate::arch::Architecture;
use crate::model::{
    ActivationKind, ComponentKind, MemoryAreaDesc, Protocol, Role, ThreadDomainDesc,
};
use crate::units::parse_duration;
use crate::{ModelError, Result};

/// The functional (business) view: what the system *does*, with no
/// real-time annotation.
#[derive(Debug, Clone)]
pub struct BusinessView {
    arch: Architecture,
}

impl BusinessView {
    /// Creates an empty business view.
    pub fn new(name: impl Into<String>) -> Self {
        BusinessView {
            arch: Architecture::new(name),
        }
    }

    /// Adds a periodic active component; `period` uses ADL spelling
    /// (`"10ms"`).
    ///
    /// # Errors
    ///
    /// [`ModelError::BadAttribute`] for a malformed period,
    /// [`ModelError::DuplicateName`] for a reused name.
    pub fn active_periodic(&mut self, name: &str, period: &str) -> Result<()> {
        let period = parse_duration(period)?;
        self.arch.add_component(
            name,
            ComponentKind::Active(ActivationKind::Periodic {
                period_ns: period.as_nanos(),
            }),
        )?;
        Ok(())
    }

    /// Adds a sporadic (event-triggered) active component.
    ///
    /// # Errors
    ///
    /// [`ModelError::DuplicateName`] for a reused name.
    pub fn active_sporadic(&mut self, name: &str) -> Result<()> {
        self.arch
            .add_component(name, ComponentKind::Active(ActivationKind::Sporadic))?;
        Ok(())
    }

    /// Adds a passive component.
    ///
    /// # Errors
    ///
    /// [`ModelError::DuplicateName`] for a reused name.
    pub fn passive(&mut self, name: &str) -> Result<()> {
        self.arch.add_component(name, ComponentKind::Passive)?;
        Ok(())
    }

    /// Adds a plain composite and lists its children.
    ///
    /// # Errors
    ///
    /// Propagates name and hierarchy errors.
    pub fn composite(&mut self, name: &str, children: &[&str]) -> Result<()> {
        let id = self.arch.add_component(name, ComponentKind::Composite)?;
        for child in children {
            let c = self.arch.id_of(child)?;
            self.arch.add_child(id, c)?;
        }
        Ok(())
    }

    /// Sets the content class of a component.
    ///
    /// # Errors
    ///
    /// Propagates lookup and kind errors.
    pub fn content(&mut self, component: &str, class: &str) -> Result<()> {
        let id = self.arch.id_of(component)?;
        self.arch.set_content_class(id, class)
    }

    /// Declares a *server* (provided) interface.
    ///
    /// # Errors
    ///
    /// Propagates lookup and kind errors.
    pub fn provide(&mut self, component: &str, interface: &str, signature: &str) -> Result<()> {
        let id = self.arch.id_of(component)?;
        self.arch
            .add_interface(id, interface, Role::Server, signature)
    }

    /// Declares a *client* (required) interface.
    ///
    /// # Errors
    ///
    /// Propagates lookup and kind errors.
    pub fn require(&mut self, component: &str, interface: &str, signature: &str) -> Result<()> {
        let id = self.arch.id_of(component)?;
        self.arch
            .add_interface(id, interface, Role::Client, signature)
    }

    /// Binds a client interface to a server interface synchronously.
    ///
    /// # Errors
    ///
    /// Propagates lookup, role and signature errors.
    pub fn bind_sync(
        &mut self,
        client: &str,
        client_if: &str,
        server: &str,
        server_if: &str,
    ) -> Result<()> {
        let (c, s) = (self.arch.id_of(client)?, self.arch.id_of(server)?);
        self.arch
            .bind(c, client_if, s, server_if, Protocol::Synchronous)
    }

    /// Binds a client interface to a server interface asynchronously with a
    /// bounded buffer.
    ///
    /// # Errors
    ///
    /// Propagates lookup, role and signature errors.
    pub fn bind_async(
        &mut self,
        client: &str,
        client_if: &str,
        server: &str,
        server_if: &str,
        buffer_size: usize,
    ) -> Result<()> {
        let (c, s) = (self.arch.id_of(client)?, self.arch.id_of(server)?);
        self.arch.bind(
            c,
            client_if,
            s,
            server_if,
            Protocol::Asynchronous { buffer_size },
        )
    }

    /// Read access to the underlying architecture.
    pub fn architecture(&self) -> &Architecture {
        &self.arch
    }
}

/// One ThreadDomain declaration in the thread-management view.
#[derive(Debug, Clone)]
struct DomainSpec {
    name: String,
    desc: ThreadDomainDesc,
    members: Vec<String>,
}

/// One MemoryArea declaration in the memory-management view.
#[derive(Debug, Clone)]
struct AreaSpec {
    name: String,
    desc: MemoryAreaDesc,
    members: Vec<String>,
    nested_in: Option<String>,
}

/// The full design flow: business view + thread view + memory view,
/// merged on demand into the RT System Architecture.
#[derive(Debug, Clone)]
pub struct DesignFlow {
    business: BusinessView,
    domains: Vec<DomainSpec>,
    areas: Vec<AreaSpec>,
}

impl DesignFlow {
    /// Starts a flow from a finished business view.
    pub fn new(business: BusinessView) -> Self {
        DesignFlow {
            business,
            domains: Vec::new(),
            areas: Vec::new(),
        }
    }

    /// Thread-management view: declares a ThreadDomain and its members
    /// (functional component names).
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownComponent`] for an unknown member,
    /// [`ModelError::DuplicateName`] for a reused domain name.
    pub fn thread_domain(
        &mut self,
        name: &str,
        kind: ThreadKind,
        priority: u8,
        members: &[&str],
    ) -> Result<()> {
        if self.domains.iter().any(|d| d.name == name) || self.areas.iter().any(|a| a.name == name)
        {
            return Err(ModelError::DuplicateName(name.to_string()));
        }
        for m in members {
            self.business.arch.id_of(m)?;
        }
        self.domains.push(DomainSpec {
            name: name.to_string(),
            desc: ThreadDomainDesc { kind, priority },
            members: members.iter().map(|s| s.to_string()).collect(),
        });
        Ok(())
    }

    /// Memory-management view: declares a MemoryArea and its members —
    /// functional component names *or* ThreadDomain names *or* other area
    /// names (areas may nest).
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownComponent`] for an unknown member,
    /// [`ModelError::DuplicateName`] for a reused area name,
    /// [`ModelError::BadAttribute`] when a bounded kind lacks a size.
    pub fn memory_area(
        &mut self,
        name: &str,
        kind: MemoryKind,
        size: Option<usize>,
        members: &[&str],
    ) -> Result<()> {
        if self.domains.iter().any(|d| d.name == name) || self.areas.iter().any(|a| a.name == name)
        {
            return Err(ModelError::DuplicateName(name.to_string()));
        }
        if size.is_none() && matches!(kind, MemoryKind::Scoped | MemoryKind::Immortal) {
            return Err(ModelError::BadAttribute {
                attribute: "size".into(),
                value: "missing (required for scoped/immortal areas)".into(),
            });
        }
        for m in members {
            let known = self.business.arch.by_name(m).is_some()
                || self.domains.iter().any(|d| d.name == *m)
                || self.areas.iter().any(|a| a.name == *m);
            if !known {
                return Err(ModelError::UnknownComponent(m.to_string()));
            }
        }
        self.areas.push(AreaSpec {
            name: name.to_string(),
            desc: MemoryAreaDesc { kind, size },
            members: members.iter().map(|s| s.to_string()).collect(),
            nested_in: None,
        });
        Ok(())
    }

    /// Nests a previously declared memory area inside another (RTSJ scoped
    /// memories nest arbitrarily; this is how the memory-management view
    /// expresses it).
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownComponent`] when either area is undeclared.
    pub fn nest_area(&mut self, parent: &str, child: &str) -> Result<()> {
        if !self.areas.iter().any(|a| a.name == parent) {
            return Err(ModelError::UnknownComponent(parent.to_string()));
        }
        let child_spec = self
            .areas
            .iter_mut()
            .find(|a| a.name == child)
            .ok_or_else(|| ModelError::UnknownComponent(child.to_string()))?;
        child_spec.nested_in = Some(parent.to_string());
        Ok(())
    }

    /// The business view this flow refines.
    pub fn business(&self) -> &BusinessView {
        &self.business
    }

    /// Merges the three views into the RT System Architecture (the final
    /// step of Fig. 3). The result still needs
    /// [`crate::validate::validate`] — merging is purely structural.
    ///
    /// # Errors
    ///
    /// Propagates name/hierarchy errors (e.g. an area membership creating a
    /// containment cycle).
    pub fn merge(&self) -> Result<Architecture> {
        let mut arch = self.business.arch.clone();
        // 1. Materialize ThreadDomains and claim their members.
        for d in &self.domains {
            let id = arch.add_component(&d.name, ComponentKind::ThreadDomain(d.desc))?;
            for m in &d.members {
                let c = arch.id_of(m)?;
                arch.add_child(id, c)?;
            }
        }
        // 2. Materialize MemoryAreas (they may contain domains and other
        //    areas, so resolve names after all components exist).
        for a in &self.areas {
            arch.add_component(&a.name, ComponentKind::MemoryArea(a.desc))?;
        }
        for a in &self.areas {
            let id = arch.id_of(&a.name)?;
            for m in &a.members {
                let c = arch.id_of(m)?;
                arch.add_child(id, c)?;
            }
            if let Some(parent) = &a.nested_in {
                let p = arch.id_of(parent)?;
                arch.add_child(p, id)?;
            }
        }
        Ok(arch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    /// The paper's motivation example (Fig. 1 / Fig. 4), built through the
    /// three design views.
    pub(crate) fn motivation_flow() -> DesignFlow {
        let mut b = BusinessView::new("production-line-monitoring");
        b.active_periodic("ProductionLine", "10ms").unwrap();
        b.active_sporadic("MonitoringSystem").unwrap();
        b.passive("Console").unwrap();
        b.active_sporadic("AuditLog").unwrap();
        b.content("ProductionLine", "ProductionLineImpl").unwrap();
        b.content("MonitoringSystem", "MonitoringSystemImpl")
            .unwrap();
        b.content("Console", "ConsoleImpl").unwrap();
        b.content("AuditLog", "AuditLogImpl").unwrap();

        b.require("ProductionLine", "iMonitor", "IMonitor").unwrap();
        b.provide("MonitoringSystem", "iMonitor", "IMonitor")
            .unwrap();
        b.require("MonitoringSystem", "iConsole", "IConsole")
            .unwrap();
        b.provide("Console", "iConsole", "IConsole").unwrap();
        b.require("MonitoringSystem", "iAudit", "IAudit").unwrap();
        b.provide("AuditLog", "iAudit", "IAudit").unwrap();

        b.bind_async(
            "ProductionLine",
            "iMonitor",
            "MonitoringSystem",
            "iMonitor",
            10,
        )
        .unwrap();
        b.bind_sync("MonitoringSystem", "iConsole", "Console", "iConsole")
            .unwrap();
        b.bind_async("MonitoringSystem", "iAudit", "AuditLog", "iAudit", 10)
            .unwrap();

        let mut flow = DesignFlow::new(b);
        flow.thread_domain("NHRT1", ThreadKind::NoHeapRealtime, 30, &["ProductionLine"])
            .unwrap();
        flow.thread_domain(
            "NHRT2",
            ThreadKind::NoHeapRealtime,
            25,
            &["MonitoringSystem"],
        )
        .unwrap();
        flow.thread_domain("reg1", ThreadKind::Regular, 5, &["AuditLog"])
            .unwrap();
        flow.memory_area(
            "Imm1",
            MemoryKind::Immortal,
            Some(600 * 1024),
            &["NHRT1", "NHRT2"],
        )
        .unwrap();
        flow.memory_area("S1", MemoryKind::Scoped, Some(28 * 1024), &["Console"])
            .unwrap();
        flow.memory_area("H1", MemoryKind::Heap, None, &["reg1"])
            .unwrap();
        flow
    }

    #[test]
    fn motivation_example_merges_and_validates() {
        let arch = motivation_flow().merge().unwrap();
        assert_eq!(arch.components().len(), 4 + 3 + 3);
        assert_eq!(arch.bindings().len(), 3);

        let pl = arch.id_of("ProductionLine").unwrap();
        let (domain, desc) = arch.thread_domain_of(pl).unwrap();
        assert_eq!(arch.component(domain).unwrap().name, "NHRT1");
        assert_eq!(desc.kind, ThreadKind::NoHeapRealtime);
        assert_eq!(desc.priority, 30);

        let (area, adesc) = arch.memory_area_of(pl).unwrap();
        assert_eq!(arch.component(area).unwrap().name, "Imm1");
        assert_eq!(adesc.kind, MemoryKind::Immortal);

        let report = validate(&arch);
        assert!(report.is_compliant(), "{report}");
    }

    #[test]
    fn duplicate_view_names_rejected() {
        let mut flow = DesignFlow::new(BusinessView::new("x"));
        flow.business.active_sporadic("a").ok();
        flow.thread_domain("d", ThreadKind::Realtime, 20, &[])
            .unwrap();
        assert!(flow
            .thread_domain("d", ThreadKind::Realtime, 20, &[])
            .is_err());
        assert!(flow.memory_area("d", MemoryKind::Heap, None, &[]).is_err());
    }

    #[test]
    fn unknown_members_rejected() {
        let mut flow = DesignFlow::new(BusinessView::new("x"));
        assert!(matches!(
            flow.thread_domain("d", ThreadKind::Realtime, 20, &["ghost"]),
            Err(ModelError::UnknownComponent(_))
        ));
        assert!(matches!(
            flow.memory_area("m", MemoryKind::Heap, None, &["ghost"]),
            Err(ModelError::UnknownComponent(_))
        ));
    }

    #[test]
    fn bounded_areas_need_sizes() {
        let mut flow = DesignFlow::new(BusinessView::new("x"));
        assert!(matches!(
            flow.memory_area("m", MemoryKind::Scoped, None, &[]),
            Err(ModelError::BadAttribute { .. })
        ));
        assert!(flow.memory_area("h", MemoryKind::Heap, None, &[]).is_ok());
    }

    #[test]
    fn nested_areas_through_the_view_api() {
        let mut b = BusinessView::new("nested");
        b.passive("leaf").unwrap();
        let mut flow = DesignFlow::new(b);
        flow.memory_area("outer", MemoryKind::Scoped, Some(8192), &[])
            .unwrap();
        flow.memory_area("inner", MemoryKind::Scoped, Some(1024), &["leaf"])
            .unwrap();
        flow.nest_area("outer", "inner").unwrap();
        assert!(flow.nest_area("ghost", "inner").is_err());
        assert!(flow.nest_area("outer", "ghost").is_err());
        let arch = flow.merge().unwrap();
        let outer = arch.id_of("outer").unwrap();
        let inner = arch.id_of("inner").unwrap();
        assert!(arch.children_of(outer).contains(&inner));
        let leaf = arch.id_of("leaf").unwrap();
        assert_eq!(arch.memory_areas_of(leaf), vec![inner, outer]);
    }

    #[test]
    fn same_business_view_two_deployments() {
        let mut b = BusinessView::new("tailorable");
        b.active_periodic("sensor", "5ms").unwrap();
        b.active_sporadic("sink").unwrap();
        b.require("sensor", "out", "IData").unwrap();
        b.provide("sink", "in", "IData").unwrap();
        b.bind_async("sensor", "out", "sink", "in", 8).unwrap();

        // Deployment 1: hard real-time.
        let mut hard = DesignFlow::new(b.clone());
        hard.thread_domain("nhrt", ThreadKind::NoHeapRealtime, 35, &["sensor", "sink"])
            .unwrap();
        hard.memory_area("imm", MemoryKind::Immortal, Some(64 * 1024), &["nhrt"])
            .unwrap();
        let hard_arch = hard.merge().unwrap();
        assert!(validate(&hard_arch).is_compliant());

        // Deployment 2: soft — same business view, different views.
        let mut soft = DesignFlow::new(b);
        soft.thread_domain("rt", ThreadKind::Realtime, 20, &["sensor"])
            .unwrap();
        soft.thread_domain("reg", ThreadKind::Regular, 5, &["sink"])
            .unwrap();
        soft.memory_area("h", MemoryKind::Heap, None, &["rt", "reg"])
            .unwrap();
        let soft_arch = soft.merge().unwrap();
        assert!(validate(&soft_arch).is_compliant());

        // The functional content is identical.
        assert_eq!(
            hard_arch.functional_components().len(),
            soft_arch.functional_components().len()
        );
    }
}
