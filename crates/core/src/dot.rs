//! Graphviz export: render an architecture as a `dot` digraph.
//!
//! Memory areas become clusters (nested areas nest visually), thread
//! domains become dashed clusters inside them, functional components are
//! nodes (double circles for active components), and bindings are edges —
//! solid for synchronous, dashed for asynchronous (labelled with the buffer
//! capacity). Handy for documentation and for eyeballing a design before
//! validation.

use std::fmt::Write as _;

use crate::arch::Architecture;
use crate::model::{ComponentId, ComponentKind, Protocol};

fn node_id(arch: &Architecture, id: ComponentId) -> String {
    let name = arch
        .component(id)
        .map(|c| c.name.clone())
        .unwrap_or_else(|_| id.to_string());
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    s.insert_str(0, "n_");
    s
}

fn write_component(arch: &Architecture, id: ComponentId, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    let c = arch.component(id).expect("walking known components");
    match c.kind {
        ComponentKind::MemoryArea(desc) => {
            let _ = writeln!(out, "{pad}subgraph cluster_{} {{", node_id(arch, id));
            let _ = writeln!(
                out,
                "{pad}  label=\"{} [{}]\"; style=filled; fillcolor=\"{}\";",
                c.name,
                desc.kind.code(),
                match desc.kind {
                    rtsj::memory::MemoryKind::Heap => "#fff3e0",
                    rtsj::memory::MemoryKind::Immortal => "#e3f2fd",
                    rtsj::memory::MemoryKind::Scoped => "#e8f5e9",
                }
            );
            for &child in arch.children_of(id) {
                write_component(arch, child, depth + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        ComponentKind::ThreadDomain(desc) => {
            let _ = writeln!(out, "{pad}subgraph cluster_{} {{", node_id(arch, id));
            let _ = writeln!(
                out,
                "{pad}  label=\"{} [{} p{}]\"; style=dashed;",
                c.name,
                desc.kind.code(),
                desc.priority
            );
            for &child in arch.children_of(id) {
                write_component(arch, child, depth + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        ComponentKind::Composite => {
            let _ = writeln!(out, "{pad}subgraph cluster_{} {{", node_id(arch, id));
            let _ = writeln!(out, "{pad}  label=\"{}\"; style=dotted;", c.name);
            for &child in arch.children_of(id) {
                write_component(arch, child, depth + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        ComponentKind::Active(_) => {
            let _ = writeln!(
                out,
                "{pad}{} [label=\"{}\", shape=doublecircle];",
                node_id(arch, id),
                c.name
            );
        }
        ComponentKind::Passive => {
            let _ = writeln!(
                out,
                "{pad}{} [label=\"{}\", shape=ellipse];",
                node_id(arch, id),
                c.name
            );
        }
    }
}

/// Renders `arch` as a Graphviz digraph.
///
/// ```
/// use soleil_core::adl::{from_xml, MOTIVATION_EXAMPLE_XML};
/// use soleil_core::dot::to_dot;
/// # fn main() -> Result<(), soleil_core::SoleilError> {
/// let arch = from_xml(MOTIVATION_EXAMPLE_XML)?;
/// let dot = to_dot(&arch);
/// assert!(dot.contains("digraph"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(arch: &Architecture) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", arch.name);
    let _ = writeln!(out, "  rankdir=LR; compound=true;");

    // Containment: walk from non-functional roots; then free-standing
    // functional components (not under any composite).
    for c in arch.components() {
        let is_root = arch.parents_of(c.id()).is_empty();
        if is_root {
            write_component(arch, c.id(), 1, &mut out);
        }
    }

    // Bindings.
    for b in arch.bindings() {
        let style = match b.protocol {
            Protocol::Synchronous => "solid".to_string(),
            Protocol::Asynchronous { buffer_size } => {
                format!("dashed, label=\"buf {buffer_size}\"")
            }
        };
        let _ = writeln!(
            out,
            "  {} -> {} [style={style}];",
            node_id(arch, b.client.component),
            node_id(arch, b.server.component)
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adl::{from_xml, MOTIVATION_EXAMPLE_XML};

    #[test]
    fn motivation_example_renders() {
        let arch = from_xml(MOTIVATION_EXAMPLE_XML).unwrap();
        let dot = to_dot(&arch);
        assert!(dot.starts_with("digraph"));
        // Areas are clusters; components are nodes; bindings are edges.
        assert!(dot.contains("cluster_n_Imm1"));
        assert!(dot.contains("cluster_n_NHRT1"));
        assert!(dot.contains("n_ProductionLine [label=\"ProductionLine\", shape=doublecircle]"));
        assert!(dot.contains("n_Console [label=\"Console\", shape=ellipse]"));
        assert!(
            dot.contains("n_ProductionLine -> n_MonitoringSystem [style=dashed, label=\"buf 10\"]")
        );
        assert!(dot.contains("n_MonitoringSystem -> n_Console [style=solid]"));
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn names_are_sanitized() {
        let mut arch = Architecture::new("x");
        arch.add_component("weird name-1", crate::model::ComponentKind::Passive)
            .unwrap();
        let dot = to_dot(&arch);
        assert!(dot.contains("n_weird_name_1"));
    }
}
