//! # soleil-core — the RTSJ component metamodel, design views, ADL and validator
//!
//! This crate implements §3 of *"A Component Framework for Java-based
//! Real-Time Embedded Systems"* (Plšek et al., Middleware 2008): a
//! hierarchical component model **with sharing** in which real-time concerns
//! are first-class architectural entities.
//!
//! * [`model`] — the metamodel of Fig. 2: [`model::Component`]s that are
//!   *Active*, *Passive* or *Composite*, plus the two non-functional
//!   composites — **ThreadDomain** (a thread type + priority shared by its
//!   members) and **MemoryArea** (an RTSJ allocation region shared by its
//!   members) — interfaces, and sync/async [`model::Binding`]s.
//! * [`arch`] — the [`arch::Architecture`] container: a component DAG
//!   (sharing gives components several super-components), binding table and
//!   the queries the validator and generator need (effective thread domain,
//!   effective memory area, …).
//! * [`views`] — the design methodology of Fig. 3: a *Business View* is
//!   progressively refined by a *Thread Management View* and a *Memory
//!   Management View*, then merged into the final RT System Architecture.
//! * [`adl`] — the XML dialect of Fig. 4 (hand-written parser/printer) plus
//!   a JSON form backed by [`json`].
//! * [`mod@validate`] — the design-time RTSJ conformance engine: every rule the
//!   paper names (single ThreadDomain per active component, no ThreadDomain
//!   nesting, NHRT domains may not encapsulate heap, binding legality with
//!   suggested cross-scope patterns, …) reported as structured diagnostics.
//! * [`contract`] — declarative **runtime** timing contracts (deadline, max
//!   jitter, throughput floor, latency-quantile bounds) attached to deployed
//!   components and checked online; violations surface through the same
//!   [`validate::ValidationReport`] machinery under codes SOL-016…SOL-019.
//!
//! ## Example
//!
//! ```
//! use soleil_core::prelude::*;
//!
//! # fn main() -> Result<(), soleil_core::SoleilError> {
//! let mut business = BusinessView::new("demo");
//! business.active_periodic("sensor", "10ms")?;
//! business.active_sporadic("logger")?;
//! business.provide("logger", "iLog", "ILog")?;
//! business.require("sensor", "iLog", "ILog")?;
//! business.bind_async("sensor", "iLog", "logger", "iLog", 16)?;
//!
//! let mut flow = DesignFlow::new(business);
//! flow.thread_domain("nhrt", ThreadKind::NoHeapRealtime, 30, &["sensor", "logger"])?;
//! flow.memory_area("imm", MemoryKind::Immortal, Some(64 * 1024), &["nhrt"])?;
//!
//! let arch = flow.merge()?;
//! let report = validate(&arch);
//! assert!(report.is_compliant(), "{report}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adl;
pub mod arch;
pub mod contract;
pub mod disjoint;
pub mod dot;
pub mod error;
pub mod json;
pub mod model;
pub mod units;
pub mod validate;
pub mod views;

pub use arch::Architecture;
pub use contract::{ContractObservation, TimingContract};
pub use error::{SoleilError, SoleilResult};
pub use validate::{
    validate, validate_into, Diagnostic, RejectedArchitecture, Severity, ValidatedArchitecture,
    ValidationReport,
};

/// The most commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::adl::{from_xml, to_xml};
    pub use crate::arch::Architecture;
    pub use crate::contract::{ContractObservation, TimingContract};
    pub use crate::error::{SoleilError, SoleilResult};
    pub use crate::model::{
        ActivationKind, Binding, Component, ComponentId, ComponentKind, InterfaceDecl,
        MemoryAreaDesc, Protocol, Role, ThreadDomainDesc,
    };
    pub use crate::validate::{
        validate, validate_into, CrossScopePattern, RejectedArchitecture, Severity,
        ValidatedArchitecture, ValidationReport,
    };
    pub use crate::views::{BusinessView, DesignFlow};
    pub use rtsj::memory::MemoryKind;
    pub use rtsj::thread::{Priority, ThreadKind};
}

/// Errors raised while constructing or transforming architectures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A component name was used twice.
    DuplicateName(String),
    /// A referenced component does not exist.
    UnknownComponent(String),
    /// A referenced interface does not exist on the component.
    UnknownInterface {
        /// Component searched.
        component: String,
        /// Interface name that was not found.
        interface: String,
    },
    /// An operation was invalid for the component's kind.
    KindMismatch {
        /// Component involved.
        component: String,
        /// Explanation of the mismatch.
        detail: String,
    },
    /// Adding an edge would create a cycle in the hierarchy DAG.
    HierarchyCycle(String),
    /// A malformed attribute value (sizes, durations, priorities).
    BadAttribute {
        /// Attribute name.
        attribute: String,
        /// Offending value.
        value: String,
    },
    /// ADL text could not be parsed.
    Parse {
        /// Line number (1-based) of the failure; 0 when the failure is
        /// semantic and has no meaningful source position.
        line: usize,
        /// Explanation.
        detail: String,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::DuplicateName(n) => write!(f, "duplicate component name '{n}'"),
            ModelError::UnknownComponent(n) => write!(f, "unknown component '{n}'"),
            ModelError::UnknownInterface {
                component,
                interface,
            } => write!(f, "component '{component}' has no interface '{interface}'"),
            ModelError::KindMismatch { component, detail } => {
                write!(f, "component '{component}': {detail}")
            }
            ModelError::HierarchyCycle(n) => {
                write!(f, "hierarchy cycle introduced at component '{n}'")
            }
            ModelError::BadAttribute { attribute, value } => {
                write!(f, "bad value '{value}' for attribute '{attribute}'")
            }
            // Line 0 marks a semantic (schema) failure with no meaningful
            // source position; only syntax errors carry a real line.
            ModelError::Parse { line: 0, detail } => {
                write!(f, "ADL parse error: {detail}")
            }
            ModelError::Parse { line, detail } => {
                write!(f, "ADL parse error (line {line}): {detail}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Result alias for model-construction operations.
pub type Result<T> = std::result::Result<T, ModelError>;
