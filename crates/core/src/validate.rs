//! Design-time RTSJ conformance validation (the feedback loop of Fig. 3).
//!
//! [`validate`] runs every rule the paper names against an
//! [`Architecture`] and returns a [`ValidationReport`] of structured
//! [`Diagnostic`]s. Rules marked *Error* make the architecture
//! non-compliant ([`ValidationReport::is_compliant`] is false); *Warning*
//! and *Info* diagnostics are advice — including, for every cross-area
//! binding, the [`CrossScopePattern`] the generated memory interceptor will
//! implement (the paper's "guidance for implementations of interfaces that
//! cross different concerns").
//!
//! | Code | Severity | Rule |
//! |------|----------|------|
//! | SOL-001 | Error | every active component lies in exactly one ThreadDomain |
//! | SOL-002 | Error | ThreadDomains are never nested in ThreadDomains |
//! | SOL-003 | Error | an NHRT ThreadDomain never encapsulates heap memory |
//! | SOL-004 | Error | every functional component has an unambiguous memory area |
//! | SOL-005 | Error | domain priorities match their thread class |
//! | SOL-006 | Error | no synchronous call from an NHRT domain into heap data |
//! | SOL-007 | Info  | cross-area bindings: pattern selection |
//! | SOL-008 | Warning | bindings into active servers should be asynchronous |
//! | SOL-009 | Warning | sporadic actives need an incoming async binding |
//! | SOL-010 | Error | async buffers have non-zero capacity |
//! | SOL-011 | Warning | bounded areas declare sizes, heap does not |
//! | SOL-012 | Warning | passive components directly inside a ThreadDomain |
//! | SOL-013 | Error/Warning | client interfaces bound at most once / left unbound |
//! | SOL-014 | Info | shared passive services get a priority ceiling |
//! | SOL-015 | Info | constructs serializing ThreadDomains into one parallel shard ([`parallel_coupling`], advisory — not run by [`validate`]) |
//! | SOL-016 | Error | runtime contract: observed deadline misses ([`crate::contract`], online — not run by [`validate`]) |
//! | SOL-017 | Error | runtime contract: observed jitter beyond the contracted bound ([`crate::contract`], online) |
//! | SOL-018 | Error | runtime contract: observed throughput below the contracted floor ([`crate::contract`], online) |
//! | SOL-019 | Error | runtime contract: observed latency quantile beyond its bound ([`crate::contract`], online) |
//! | SOL-020 | Error | runtime supervision: component quarantined after a contained fault (online — emitted by the runtime's `health_report`) |
//! | SOL-021 | Error | runtime supervision: restart budget exhausted, fault escalated (online) |
//! | SOL-022 | Warning | runtime supervision: messages to quarantined components counted-dropped (online) |

use std::fmt;

use rtsj::memory::MemoryKind;
use rtsj::thread::{Priority, ThreadKind};

use crate::arch::Architecture;
use crate::model::{Binding, ComponentId, ComponentKind, Protocol, Role};

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory (e.g. the selected communication pattern).
    Info,
    /// Suspicious but not RTSJ-violating.
    Warning,
    /// RTSJ violation: the architecture must be fixed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The cross-scope communication pattern a binding requires, drawn from the
/// published RTSJ pattern catalogs the paper cites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrossScopePattern {
    /// Same area, or server data lives in heap/immortal: plain reference.
    Direct,
    /// Server lives in an *enclosing* area: run via `executeInArea`.
    ExecuteInOuter,
    /// Server lives in a *nested* scope: enter it and use its portal.
    EnterInner,
    /// Sibling scopes, synchronous: deep-copy arguments through the common
    /// parent ("handoff" / "memory block").
    HandoffThroughParent,
    /// Unrelated areas, asynchronous: exchange buffer in immortal memory.
    ImmortalExchange,
}

impl fmt::Display for CrossScopePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CrossScopePattern::Direct => "direct",
            CrossScopePattern::ExecuteInOuter => "execute-in-outer",
            CrossScopePattern::EnterInner => "enter-inner",
            CrossScopePattern::HandoffThroughParent => "handoff-through-parent",
            CrossScopePattern::ImmortalExchange => "immortal-exchange",
        })
    }
}

/// One validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule code (`SOL-001` …).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Name of the component or binding the finding concerns.
    pub subject: String,
    /// Human-readable description.
    pub message: String,
    /// Suggested remediation or pattern, when the rule has one.
    pub suggestion: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} ({}): {}",
            self.code, self.severity, self.subject, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, " — suggestion: {s}")?;
        }
        Ok(())
    }
}

/// The outcome of validating an architecture.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    diagnostics: Vec<Diagnostic>,
}

impl ValidationReport {
    /// All findings, in rule order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Findings at exactly `severity`.
    pub fn with_severity(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }

    /// True when no *Error* findings exist — the paper's "compliant with
    /// RTSJ" verdict.
    pub fn is_compliant(&self) -> bool {
        self.with_severity(Severity::Error).next().is_none()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// True when there are no findings at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings with the given rule code.
    pub fn by_code<'a>(&'a self, code: &'a str) -> impl Iterator<Item = &'a Diagnostic> + 'a {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// Appends one finding. [`Diagnostic`] fields are public precisely so
    /// online checkers (the runtime contract machinery in
    /// [`crate::contract`]) can surface verdicts through the same report
    /// type the design-time validator uses.
    pub fn append(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Absorbs every finding of `other`, preserving order — used to fold
    /// per-component contract verdicts into one system-wide report.
    pub fn merge(&mut self, other: ValidationReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    fn push(
        &mut self,
        code: &'static str,
        severity: Severity,
        subject: impl Into<String>,
        message: impl Into<String>,
        suggestion: Option<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            subject: subject.into(),
            message: message.into(),
            suggestion,
        });
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return writeln!(f, "architecture is RTSJ-compliant (no findings)");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

/// An [`Architecture`] the validator has accepted — the design-time
/// conformance witness the rest of the toolchain keys on.
///
/// The paper's contract is that RTSJ conformance is established *before*
/// generation, so the generator and runtime can trust their input. This
/// type carries that fact in the type system: `compile`/`generate`/`deploy`
/// take `&ValidatedArchitecture`, and the only ways to obtain one are
/// [`validate_into`] / [`Architecture::into_validated`] (which run every
/// rule) or the explicit [`ValidatedArchitecture::assume_valid`] escape
/// hatch.
///
/// Dereferences to [`Architecture`] for read-only queries; there is no
/// mutable access — editing requires [`into_inner`](Self::into_inner) and
/// re-validation, so a witness can never silently go stale.
#[derive(Debug, Clone)]
pub struct ValidatedArchitecture {
    arch: Architecture,
    report: ValidationReport,
}

impl ValidatedArchitecture {
    /// Wraps `arch` *without* running the validator — the explicit escape
    /// hatch for callers that have established conformance by other means
    /// (e.g. loading a previously validated, trusted artifact).
    ///
    /// The RTSJ rules are **not** checked; a non-compliant architecture
    /// smuggled through here surfaces later as generator/runtime errors
    /// (or as refused substrate operations), exactly like unchecked input
    /// did before this witness existed. The attached report is empty.
    pub fn assume_valid(arch: Architecture) -> Self {
        ValidatedArchitecture {
            arch,
            report: ValidationReport::default(),
        }
    }

    /// The report the validator produced when this witness was created
    /// (advisory warnings/infos included; empty for
    /// [`assume_valid`](Self::assume_valid)).
    pub fn report(&self) -> &ValidationReport {
        &self.report
    }

    /// Read-only access to the underlying architecture (also available
    /// through `Deref`).
    pub fn architecture(&self) -> &Architecture {
        &self.arch
    }

    /// Unwraps the architecture, discarding the witness — the only way to
    /// mutate it again.
    pub fn into_inner(self) -> Architecture {
        self.arch
    }
}

impl std::ops::Deref for ValidatedArchitecture {
    type Target = Architecture;

    fn deref(&self) -> &Architecture {
        &self.arch
    }
}

impl AsRef<Architecture> for ValidatedArchitecture {
    fn as_ref(&self) -> &Architecture {
        &self.arch
    }
}

/// A consuming validation that failed: the refused architecture is handed
/// back together with the full report, so callers can fix and retry.
#[derive(Debug, Clone)]
pub struct RejectedArchitecture {
    /// The architecture the validator refused, returned to the caller.
    pub architecture: Architecture,
    /// Every finding, including the blocking errors.
    pub report: ValidationReport,
}

impl fmt::Display for RejectedArchitecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "architecture '{}' violates RTSJ:\n{}",
            self.architecture.name, self.report
        )
    }
}

impl std::error::Error for RejectedArchitecture {}

/// The consuming form of [`validate`]: runs every rule and returns the
/// [`ValidatedArchitecture`] witness on success, or the architecture plus
/// its report on refusal.
///
/// # Errors
///
/// [`RejectedArchitecture`] (boxed — it carries the whole architecture
/// back) when the report contains `Error` findings.
pub fn validate_into(
    arch: Architecture,
) -> Result<ValidatedArchitecture, Box<RejectedArchitecture>> {
    let report = validate(&arch);
    if report.is_compliant() {
        Ok(ValidatedArchitecture { arch, report })
    } else {
        Err(Box::new(RejectedArchitecture {
            architecture: arch,
            report,
        }))
    }
}

impl Architecture {
    /// Method form of [`validate_into`]: consumes the architecture and
    /// returns the conformance witness.
    ///
    /// # Errors
    ///
    /// [`RejectedArchitecture`] when the validator finds RTSJ violations.
    pub fn into_validated(self) -> Result<ValidatedArchitecture, Box<RejectedArchitecture>> {
        validate_into(self)
    }
}

/// Computes the cross-scope pattern a binding needs, from the client's and
/// server's *effective* memory areas. Returns `None` when either endpoint
/// has no memory area assigned yet (pure business view).
pub fn cross_scope_pattern(arch: &Architecture, binding: &Binding) -> Option<CrossScopePattern> {
    let (c_area, c_desc) = arch.memory_area_of(binding.client.component)?;
    let (s_area, s_desc) = arch.memory_area_of(binding.server.component)?;
    if c_area == s_area {
        return Some(CrossScopePattern::Direct);
    }
    // Server data in heap or immortal is referenceable from anywhere.
    if matches!(s_desc.kind, MemoryKind::Heap | MemoryKind::Immortal) {
        return Some(CrossScopePattern::Direct);
    }
    // Server is scoped. A client outside scoped memory (heap/immortal)
    // reaches it by entering the scope chain from the primordial root.
    if !matches!(c_desc.kind, MemoryKind::Scoped) {
        return Some(CrossScopePattern::EnterInner);
    }
    // Both scoped: relation of the two area components in the DAG decides.
    if arch.is_reachable(s_area, c_area) {
        // Server area encloses the client's: outward reference is legal.
        return Some(CrossScopePattern::ExecuteInOuter);
    }
    if arch.is_reachable(c_area, s_area) {
        // Server area nested inside the client's.
        return Some(CrossScopePattern::EnterInner);
    }
    match binding.protocol {
        Protocol::Synchronous => Some(CrossScopePattern::HandoffThroughParent),
        Protocol::Asynchronous { .. } => Some(CrossScopePattern::ImmortalExchange),
    }
}

/// The priority ceiling of a passive component, when it is a *shared
/// service*: invoked synchronously from clients in two or more distinct
/// ThreadDomains. RTSJ protects such monitors with priority-ceiling
/// emulation; the ceiling is the highest client priority. Returns `None`
/// for unshared or non-passive components.
pub fn shared_service_ceiling(arch: &Architecture, id: ComponentId) -> Option<u8> {
    let c = arch.component(id).ok()?;
    if !matches!(c.kind, ComponentKind::Passive) {
        return None;
    }
    let mut domains = Vec::new();
    let mut ceiling = 0u8;
    for b in arch.incoming_bindings(id) {
        if b.protocol.is_async() {
            continue;
        }
        if let Some((d, desc)) = arch.thread_domain_of(b.client.component) {
            if !domains.contains(&d) {
                domains.push(d);
            }
            ceiling = ceiling.max(desc.priority);
        }
    }
    if domains.len() >= 2 {
        Some(ceiling)
    } else {
        None
    }
}

/// Runs every conformance rule against `arch`.
pub fn validate(arch: &Architecture) -> ValidationReport {
    let mut report = ValidationReport::default();
    check_thread_domains(arch, &mut report);
    check_memory_areas(arch, &mut report);
    check_nhrt_heap(arch, &mut report);
    check_bindings(arch, &mut report);
    check_shared_services(arch, &mut report);
    report
}

/// The commit-time rule set for reconfiguration transactions against a
/// **parallel** deployment: the full conformance catalog ([`validate`])
/// folded together with the parallel-coupling advisory
/// ([`parallel_coupling`]). A live reconfigure of a sharded system
/// re-validates against this before committing — the SOL-015 findings
/// matter there because a binding that newly couples two ThreadDomains
/// must still fit the shard partition that was settled at build time (the
/// runtime refuses the operation; the merged report documents *why* the
/// coupling exists). Compliance is judged by [`validate`]'s errors alone:
/// the advisories are informational here as everywhere else.
pub fn parallel_reconfiguration_report(arch: &Architecture) -> ValidationReport {
    let mut report = validate(arch);
    report.merge(parallel_coupling(arch));
    report
}

/// The parallel-sharding advisory (rule **SOL-015**, informational, not
/// part of [`validate`]): reports every construct that *serializes* a pair
/// of ThreadDomains into one engine shard under the parallel runtime —
/// the design-time mirror of the deploy-time partition
/// (`soleil_runtime::parallel`).
///
/// Two couplings exist:
///
/// * a **synchronous binding** whose endpoints are governed by different
///   ThreadDomains (a nested run-to-completion call cannot cross OS
///   threads), and
/// * a **shared scoped memory area**: a scope is owned by exactly one
///   engine, so domains whose components stand in the same scoped area
///   tick together.
///
/// Couplings compose transitively (a passive service called synchronously
/// from two domains serializes both, even though the passive itself has no
/// domain): the advisory unions components over synchronous bindings and
/// shared scoped areas, then reports every group that captured more than
/// one ThreadDomain, alongside the precise per-binding and per-area
/// findings.
///
/// An empty report means every ThreadDomain can tick on its own OS
/// thread. Each finding suggests the asynchronous/replicated alternative
/// that would decouple the pair.
pub fn parallel_coupling(arch: &Architecture) -> ValidationReport {
    let mut report = ValidationReport::default();
    let domain_of = |id: ComponentId| arch.thread_domain_of(id).map(|(d, _)| d);
    // A component stands in *every* scoped area on its ancestry, not just
    // the innermost one — the deploy-time planner walks the same chain,
    // so nesting must couple here exactly as it shards there.
    let stands_in = |comp: ComponentId, area: ComponentId| {
        arch.memory_areas_of(comp).iter().any(|&a| {
            a == area
                && matches!(
                    arch.component(a).map(|c| &c.kind),
                    Ok(ComponentKind::MemoryArea(d)) if d.kind == MemoryKind::Scoped
                )
        })
    };

    for b in arch.bindings() {
        if b.protocol != Protocol::Synchronous {
            continue;
        }
        let (cd, sd) = (domain_of(b.client.component), domain_of(b.server.component));
        if let (Some(cd), Some(sd)) = (cd, sd) {
            if cd != sd {
                report.push(
                    "SOL-015",
                    Severity::Info,
                    format!("{}.{}", name(arch, b.client.component), b.client.interface),
                    format!(
                        "synchronous binding into '{}' serializes ThreadDomains '{}' and '{}' \
                         into one engine shard",
                        name(arch, b.server.component),
                        name(arch, cd),
                        name(arch, sd)
                    ),
                    Some(
                        "make the binding asynchronous (bounded buffer) to let the domains \
                         tick on separate OS threads"
                            .into(),
                    ),
                );
            }
        }
    }

    // Scoped areas hosting components of more than one domain.
    for area in arch.components() {
        let ComponentKind::MemoryArea(desc) = &area.kind else {
            continue;
        };
        if desc.kind != MemoryKind::Scoped {
            continue;
        }
        let mut domains: Vec<ComponentId> = Vec::new();
        for c in arch.components() {
            if c.kind.is_functional() && stands_in(c.id(), area.id()) {
                if let Some(d) = domain_of(c.id()) {
                    if !domains.contains(&d) {
                        domains.push(d);
                    }
                }
            }
        }
        if domains.len() > 1 {
            let names: Vec<String> = domains.iter().map(|&d| name(arch, d)).collect();
            report.push(
                "SOL-015",
                Severity::Info,
                &area.name,
                format!(
                    "scoped memory area shared by ThreadDomains {}: one engine must own the \
                     scope, so these domains tick together",
                    names.join(", ")
                ),
                Some(
                    "give each domain its own scoped area (communicate by handoff or \
                     asynchronous exchange) to unlock parallel ticking"
                        .into(),
                ),
            );
        }
    }

    // Transitive serialization: union business components over synchronous
    // bindings and shared scoped areas, then flag every group that
    // captured more than one ThreadDomain (catches passive chains the
    // per-binding pass above cannot see).
    let comps: Vec<ComponentId> = arch
        .components()
        .iter()
        .filter(|c| c.kind.is_functional())
        .map(|c| c.id())
        .collect();
    let ix_of = |id: ComponentId| comps.iter().position(|&c| c == id);
    let mut uf = crate::disjoint::UnionFind::new(comps.len());
    for b in arch.bindings() {
        if b.protocol == Protocol::Synchronous {
            if let (Some(c), Some(s)) = (ix_of(b.client.component), ix_of(b.server.component)) {
                uf.union(c, s);
            }
        }
    }
    for area in arch.components() {
        if !matches!(&area.kind, ComponentKind::MemoryArea(d) if d.kind == MemoryKind::Scoped) {
            continue;
        }
        let residents: Vec<usize> = comps
            .iter()
            .enumerate()
            .filter(|(_, &c)| stands_in(c, area.id()))
            .map(|(i, _)| i)
            .collect();
        for w in residents.windows(2) {
            uf.union(w[0], w[1]);
        }
    }
    let mut domains_of_group: std::collections::HashMap<usize, Vec<ComponentId>> =
        std::collections::HashMap::new();
    for (i, &comp) in comps.iter().enumerate() {
        if let Some(d) = domain_of(comp) {
            let root = uf.find(i);
            let ds = domains_of_group.entry(root).or_default();
            if !ds.contains(&d) {
                ds.push(d);
            }
        }
    }
    let mut groups: Vec<_> = domains_of_group
        .into_iter()
        .filter(|(_, ds)| ds.len() > 1)
        .collect();
    groups.sort_by_key(|(root, _)| *root);
    for (root, ds) in groups {
        let names: Vec<String> = ds.iter().map(|&d| name(arch, d)).collect();
        report.push(
            "SOL-015",
            Severity::Info,
            name(arch, comps[root]),
            format!(
                "ThreadDomains {} are serialized into one engine shard (coupled through \
                 synchronous calls and/or shared scoped memory)",
                names.join(", ")
            ),
            Some(
                "decouple with asynchronous bindings and per-domain scoped areas to let \
                 each domain tick on its own OS thread"
                    .into(),
            ),
        );
    }
    report
}

fn check_shared_services(arch: &Architecture, report: &mut ValidationReport) {
    for c in arch.components() {
        if let Some(ceiling) = shared_service_ceiling(arch, c.id()) {
            report.push(
                "SOL-014",
                Severity::Info,
                &c.name,
                format!(
                    "passive service shared by multiple ThreadDomains: priority ceiling {ceiling}"
                ),
                Some(
                    "the generated monitor uses priority-ceiling emulation at this ceiling".into(),
                ),
            );
        }
    }
}

fn name(arch: &Architecture, id: ComponentId) -> String {
    arch.component(id)
        .map(|c| c.name.clone())
        .unwrap_or_else(|_| id.to_string())
}

fn check_thread_domains(arch: &Architecture, report: &mut ValidationReport) {
    for c in arch.components() {
        match c.kind {
            ComponentKind::Active(_) => {
                // SOL-001: exactly one governing ThreadDomain.
                let domains = arch.thread_domains_of(c.id());
                match domains.len() {
                    1 => {}
                    0 => report.push(
                        "SOL-001",
                        Severity::Error,
                        &c.name,
                        "active component is not nested in any ThreadDomain",
                        Some("deploy it into a ThreadDomain in the thread-management view".into()),
                    ),
                    n => report.push(
                        "SOL-001",
                        Severity::Error,
                        &c.name,
                        format!("active component is nested in {n} ThreadDomains"),
                        Some("an active component must have a unique ThreadDomain".into()),
                    ),
                }
            }
            ComponentKind::ThreadDomain(desc) => {
                // SOL-002: no ThreadDomain nesting.
                if !arch.thread_domains_of(c.id()).is_empty() {
                    report.push(
                        "SOL-002",
                        Severity::Error,
                        &c.name,
                        "ThreadDomain is nested inside another ThreadDomain",
                        Some("flatten the domains; only MemoryAreas nest arbitrarily".into()),
                    );
                }
                // SOL-005: priority band must match the thread class.
                let prio = Priority::new(desc.priority);
                let consistent = match desc.kind {
                    ThreadKind::NoHeapRealtime | ThreadKind::Realtime => prio.is_realtime(),
                    ThreadKind::Regular => !prio.is_realtime(),
                };
                if !consistent {
                    report.push(
                        "SOL-005",
                        Severity::Error,
                        &c.name,
                        format!(
                            "priority {} is outside the band for {} threads",
                            desc.priority,
                            desc.kind.code()
                        ),
                        Some(format!(
                            "real-time domains need priority >= {}, regular domains < {}",
                            Priority::MIN_RT.get(),
                            Priority::MIN_RT.get()
                        )),
                    );
                }
                // SOL-012: passive members.
                for &child in arch.children_of(c.id()) {
                    if matches!(
                        arch.component(child).map(|cc| cc.kind),
                        Ok(ComponentKind::Passive)
                    ) {
                        report.push(
                            "SOL-012",
                            Severity::Warning,
                            name(arch, child),
                            format!(
                                "passive component placed directly in ThreadDomain '{}'",
                                c.name
                            ),
                            Some(
                                "passive components need no thread; place them in a MemoryArea"
                                    .into(),
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

fn check_memory_areas(arch: &Architecture, report: &mut ValidationReport) {
    for c in arch.components() {
        if c.kind.is_functional() && !matches!(c.kind, ComponentKind::Composite) {
            let areas = arch.memory_areas_of(c.id());
            if areas.is_empty() {
                report.push(
                    "SOL-004",
                    Severity::Error,
                    &c.name,
                    "component has no MemoryArea: its allocation region is undefined",
                    Some(
                        "assign it (or its ThreadDomain) to a MemoryArea in the memory view".into(),
                    ),
                );
                continue;
            }
            // Ambiguity: all area ancestors must form a chain; otherwise the
            // "nearest" area is ill-defined.
            for i in 0..areas.len() {
                for j in (i + 1)..areas.len() {
                    let (a, b) = (areas[i], areas[j]);
                    if !arch.is_reachable(a, b) && !arch.is_reachable(b, a) {
                        report.push(
                            "SOL-004",
                            Severity::Error,
                            &c.name,
                            format!(
                                "ambiguous memory area: '{}' and '{}' both apply but are unrelated",
                                name(arch, a),
                                name(arch, b)
                            ),
                            Some("remove one membership so a unique innermost area exists".into()),
                        );
                    }
                }
            }
        }
        if let ComponentKind::MemoryArea(desc) = c.kind {
            // SOL-011: size declarations.
            match desc.kind {
                MemoryKind::Scoped | MemoryKind::Immortal if desc.size.is_none() => {
                    report.push(
                        "SOL-011",
                        Severity::Warning,
                        &c.name,
                        format!("{} area without a size budget", desc.kind.code()),
                        Some("declare size=... so the bootstrapper can pre-allocate".into()),
                    );
                }
                MemoryKind::Heap if desc.size.is_some() => {
                    report.push(
                        "SOL-011",
                        Severity::Warning,
                        &c.name,
                        "heap area with an explicit size (the collector manages the heap)",
                        None,
                    );
                }
                _ => {}
            }
        }
    }
}

fn check_nhrt_heap(arch: &Architecture, report: &mut ValidationReport) {
    for c in arch.components() {
        let ComponentKind::ThreadDomain(desc) = c.kind else {
            continue;
        };
        if desc.kind != ThreadKind::NoHeapRealtime {
            continue;
        }
        // SOL-003a: no heap MemoryArea anywhere below an NHRT domain.
        for d in arch.descendants(c.id()) {
            if let Ok(dc) = arch.component(d) {
                if let ComponentKind::MemoryArea(adesc) = dc.kind {
                    if adesc.kind == MemoryKind::Heap {
                        report.push(
                            "SOL-003",
                            Severity::Error,
                            &c.name,
                            format!(
                                "NHRT ThreadDomain encapsulates heap MemoryArea '{}'",
                                dc.name
                            ),
                            Some("move the heap area outside the NHRT domain".into()),
                        );
                    }
                }
                // SOL-003b: members whose effective area is the heap.
                if dc.kind.is_functional() {
                    if let Some((_, adesc)) = arch.memory_area_of(d) {
                        if adesc.kind == MemoryKind::Heap {
                            report.push(
                                "SOL-003",
                                Severity::Error,
                                &dc.name,
                                format!(
                                    "member of NHRT domain '{}' is allocated in heap memory",
                                    c.name
                                ),
                                Some("allocate NHRT members in immortal or scoped memory".into()),
                            );
                        }
                    }
                }
            }
        }
    }
}

fn check_bindings(arch: &Architecture, report: &mut ValidationReport) {
    // SOL-013: client interface bound at most once, and every client bound.
    let mut seen: Vec<(ComponentId, &str)> = Vec::new();
    for b in arch.bindings() {
        let key = (b.client.component, b.client.interface.as_str());
        if seen.contains(&key) {
            report.push(
                "SOL-013",
                Severity::Error,
                format!("{}.{}", name(arch, key.0), key.1),
                "client interface bound more than once",
                Some("interpose an explicit dispatcher component for fan-out".into()),
            );
        }
        seen.push(key);
    }
    for c in arch.components() {
        for i in c.interfaces_with_role(Role::Client) {
            let bound = arch
                .bindings()
                .iter()
                .any(|b| b.client.component == c.id() && b.client.interface == i.name);
            if !bound {
                report.push(
                    "SOL-013",
                    Severity::Warning,
                    format!("{}.{}", c.name, i.name),
                    "client interface is unbound",
                    None,
                );
            }
        }
    }

    for (ix, b) in arch.bindings().iter().enumerate() {
        let subject = format!(
            "{}.{} -> {}.{}",
            name(arch, b.client.component),
            b.client.interface,
            name(arch, b.server.component),
            b.server.interface
        );

        // SOL-010: async buffer capacity.
        if let Protocol::Asynchronous { buffer_size } = b.protocol {
            if buffer_size == 0 {
                report.push(
                    "SOL-010",
                    Severity::Error,
                    subject.clone(),
                    "asynchronous binding with zero-capacity buffer",
                    Some("declare bufferSize >= 1".into()),
                );
            }
        }

        // SOL-008: active servers want async activation.
        if let Ok(server) = arch.component(b.server.component) {
            if server.kind.is_active() && !b.protocol.is_async() {
                report.push(
                    "SOL-008",
                    Severity::Warning,
                    subject.clone(),
                    "synchronous call into an active component breaks run-to-completion",
                    Some("use an asynchronous binding with a message buffer".into()),
                );
            }
        }

        // SOL-006: NHRT caller must never need heap data synchronously.
        let client_domain = arch.thread_domain_of(b.client.component);
        let server_area = arch.memory_area_of(b.server.component);
        if let (Some((_, ddesc)), Some((_, adesc))) = (client_domain, server_area) {
            if ddesc.kind == ThreadKind::NoHeapRealtime
                && adesc.kind == MemoryKind::Heap
                && !b.protocol.is_async()
            {
                report.push(
                    "SOL-006",
                    Severity::Error,
                    subject.clone(),
                    "NHRT client calls synchronously into heap-allocated server",
                    Some(
                        "make the binding asynchronous with the buffer outside the heap, \
                         or move the server out of heap memory"
                            .into(),
                    ),
                );
            }
        }

        // SOL-007: record the pattern for every cross-area binding.
        if let Some(pattern) = cross_scope_pattern(arch, b) {
            if pattern != CrossScopePattern::Direct {
                report.push(
                    "SOL-007",
                    Severity::Info,
                    subject.clone(),
                    format!("cross-scope binding: memory interceptor will use '{pattern}'"),
                    Some(format!("pattern {pattern} is generated automatically")),
                );
            }
        }
        let _ = ix;
    }

    // SOL-009: sporadic actives need a trigger.
    for c in arch.components() {
        if matches!(
            c.kind,
            ComponentKind::Active(crate::model::ActivationKind::Sporadic)
        ) {
            let triggered = arch
                .incoming_bindings(c.id())
                .iter()
                .any(|b| b.protocol.is_async());
            if !triggered {
                report.push(
                    "SOL-009",
                    Severity::Warning,
                    &c.name,
                    "sporadic active component has no incoming asynchronous binding to trigger it",
                    Some("bind a producer to one of its server interfaces asynchronously".into()),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ActivationKind, MemoryAreaDesc, ThreadDomainDesc};

    fn domain(kind: ThreadKind, priority: u8) -> ComponentKind {
        ComponentKind::ThreadDomain(ThreadDomainDesc { kind, priority })
    }

    fn area(kind: MemoryKind, size: Option<usize>) -> ComponentKind {
        ComponentKind::MemoryArea(MemoryAreaDesc { kind, size })
    }

    /// Minimal compliant architecture: one active in one NHRT domain in
    /// immortal memory.
    fn compliant() -> Architecture {
        let mut a = Architecture::new("ok");
        let c = a
            .add_component(
                "worker",
                ComponentKind::Active(ActivationKind::Periodic {
                    period_ns: 1_000_000,
                }),
            )
            .unwrap();
        let d = a
            .add_component("nhrt", domain(ThreadKind::NoHeapRealtime, 30))
            .unwrap();
        let m = a
            .add_component("imm", area(MemoryKind::Immortal, Some(4096)))
            .unwrap();
        a.add_child(d, c).unwrap();
        a.add_child(m, d).unwrap();
        a
    }

    #[test]
    fn compliant_architecture_passes() {
        let report = validate(&compliant());
        assert!(report.is_compliant(), "{report}");
    }

    #[test]
    fn active_without_domain_flagged() {
        let mut a = Architecture::new("bad");
        let c = a
            .add_component("orphan", ComponentKind::Active(ActivationKind::Sporadic))
            .unwrap();
        let m = a
            .add_component("imm", area(MemoryKind::Immortal, Some(4096)))
            .unwrap();
        a.add_child(m, c).unwrap();
        let report = validate(&a);
        assert!(!report.is_compliant());
        assert_eq!(report.by_code("SOL-001").count(), 1);
    }

    #[test]
    fn active_in_two_domains_flagged() {
        let mut a = compliant();
        let d2 = a
            .add_component("rt2", domain(ThreadKind::Realtime, 20))
            .unwrap();
        let c = a.id_of("worker").unwrap();
        a.add_child(d2, c).unwrap();
        let m = a.id_of("imm").unwrap();
        a.add_child(m, d2).unwrap();
        let report = validate(&a);
        assert!(report
            .by_code("SOL-001")
            .any(|d| d.severity == Severity::Error));
    }

    #[test]
    fn nested_thread_domains_flagged() {
        let mut a = compliant();
        let outer = a
            .add_component("outer", domain(ThreadKind::Realtime, 25))
            .unwrap();
        let inner = a.id_of("nhrt").unwrap();
        a.add_child(outer, inner).unwrap();
        let m = a.id_of("imm").unwrap();
        a.add_child(m, outer).unwrap();
        let report = validate(&a);
        assert!(report.by_code("SOL-002").next().is_some());
    }

    #[test]
    fn nhrt_domain_with_heap_area_flagged() {
        let mut a = Architecture::new("bad");
        let c = a
            .add_component("w", ComponentKind::Active(ActivationKind::Sporadic))
            .unwrap();
        let d = a
            .add_component("nhrt", domain(ThreadKind::NoHeapRealtime, 30))
            .unwrap();
        let h = a.add_component("h", area(MemoryKind::Heap, None)).unwrap();
        a.add_child(d, h).unwrap();
        a.add_child(h, c).unwrap();
        let report = validate(&a);
        let sol3: Vec<_> = report.by_code("SOL-003").collect();
        assert!(
            sol3.len() >= 2,
            "area nesting and member allocation both flagged: {report}"
        );
        assert!(!report.is_compliant());
    }

    #[test]
    fn missing_memory_area_flagged() {
        let mut a = Architecture::new("bad");
        let c = a
            .add_component("w", ComponentKind::Active(ActivationKind::Sporadic))
            .unwrap();
        let d = a
            .add_component("rt", domain(ThreadKind::Realtime, 20))
            .unwrap();
        a.add_child(d, c).unwrap();
        let report = validate(&a);
        assert!(report
            .by_code("SOL-004")
            .any(|d| d.severity == Severity::Error));
    }

    #[test]
    fn ambiguous_memory_areas_flagged() {
        let mut a = Architecture::new("bad");
        let c = a.add_component("p", ComponentKind::Passive).unwrap();
        let m1 = a
            .add_component("imm", area(MemoryKind::Immortal, Some(1024)))
            .unwrap();
        let m2 = a
            .add_component("s", area(MemoryKind::Scoped, Some(1024)))
            .unwrap();
        a.add_child(m1, c).unwrap();
        a.add_child(m2, c).unwrap();
        let report = validate(&a);
        assert!(report
            .by_code("SOL-004")
            .any(|d| d.message.contains("ambiguous")));
    }

    #[test]
    fn nested_areas_are_not_ambiguous() {
        let mut a = Architecture::new("ok");
        let c = a.add_component("p", ComponentKind::Passive).unwrap();
        let outer = a
            .add_component("imm", area(MemoryKind::Immortal, Some(8192)))
            .unwrap();
        let inner = a
            .add_component("s", area(MemoryKind::Scoped, Some(1024)))
            .unwrap();
        a.add_child(outer, inner).unwrap();
        a.add_child(inner, c).unwrap();
        let report = validate(&a);
        assert!(report.is_compliant(), "{report}");
    }

    #[test]
    fn priority_band_mismatches_flagged() {
        let mut a = compliant();
        let c2 = a
            .add_component("aud", ComponentKind::Active(ActivationKind::Sporadic))
            .unwrap();
        let d2 = a
            .add_component("reg-high", domain(ThreadKind::Regular, 50))
            .unwrap();
        a.add_child(d2, c2).unwrap();
        let m = a.id_of("imm").unwrap();
        a.add_child(m, d2).unwrap();
        let report = validate(&a);
        assert!(report.by_code("SOL-005").next().is_some());

        let mut b = compliant();
        let c3 = b
            .add_component("x", ComponentKind::Active(ActivationKind::Sporadic))
            .unwrap();
        let d3 = b
            .add_component("nhrt-low", domain(ThreadKind::NoHeapRealtime, 3))
            .unwrap();
        b.add_child(d3, c3).unwrap();
        let m2 = b.id_of("imm").unwrap();
        b.add_child(m2, d3).unwrap();
        assert!(validate(&b).by_code("SOL-005").next().is_some());
    }

    /// Two scoped sibling areas with a sync binding across them.
    fn sibling_arch(protocol: Protocol) -> Architecture {
        let mut a = Architecture::new("x");
        let p = a
            .add_component("p", ComponentKind::Active(ActivationKind::Sporadic))
            .unwrap();
        let q = a.add_component("q", ComponentKind::Passive).unwrap();
        a.add_interface(p, "out", Role::Client, "I").unwrap();
        a.add_interface(q, "in", Role::Server, "I").unwrap();
        a.bind(p, "out", q, "in", protocol).unwrap();
        let d = a
            .add_component("rt", domain(ThreadKind::Realtime, 20))
            .unwrap();
        a.add_child(d, p).unwrap();
        let root = a
            .add_component("root", area(MemoryKind::Immortal, Some(8192)))
            .unwrap();
        let s1 = a
            .add_component("s1", area(MemoryKind::Scoped, Some(1024)))
            .unwrap();
        let s2 = a
            .add_component("s2", area(MemoryKind::Scoped, Some(1024)))
            .unwrap();
        a.add_child(root, s1).unwrap();
        a.add_child(root, s2).unwrap();
        a.add_child(s1, p).unwrap();
        a.add_child(s2, q).unwrap();
        a.add_child(root, d).unwrap();
        a
    }

    #[test]
    fn sibling_scopes_get_handoff_pattern() {
        let a = sibling_arch(Protocol::Synchronous);
        let b = &a.bindings()[0];
        assert_eq!(
            cross_scope_pattern(&a, b),
            Some(CrossScopePattern::HandoffThroughParent)
        );
        let report = validate(&a);
        assert!(report
            .by_code("SOL-007")
            .any(|d| d.message.contains("handoff-through-parent")));
    }

    #[test]
    fn sibling_scopes_async_get_immortal_exchange() {
        let a = sibling_arch(Protocol::Asynchronous { buffer_size: 4 });
        let b = &a.bindings()[0];
        assert_eq!(
            cross_scope_pattern(&a, b),
            Some(CrossScopePattern::ImmortalExchange)
        );
    }

    #[test]
    fn nested_scopes_get_directional_patterns() {
        let mut a = Architecture::new("x");
        let p = a.add_component("p", ComponentKind::Passive).unwrap();
        let q = a.add_component("q", ComponentKind::Passive).unwrap();
        a.add_interface(p, "out", Role::Client, "I").unwrap();
        a.add_interface(q, "in", Role::Server, "I").unwrap();
        a.add_interface(q, "back", Role::Client, "J").unwrap();
        a.add_interface(p, "recv", Role::Server, "J").unwrap();
        a.bind(p, "out", q, "in", Protocol::Synchronous).unwrap();
        a.bind(q, "back", p, "recv", Protocol::Synchronous).unwrap();
        let outer = a
            .add_component("outer", area(MemoryKind::Scoped, Some(8192)))
            .unwrap();
        let inner = a
            .add_component("inner", area(MemoryKind::Scoped, Some(1024)))
            .unwrap();
        a.add_child(outer, inner).unwrap();
        a.add_child(outer, p).unwrap();
        a.add_child(inner, q).unwrap();

        // p (outer) -> q (inner): enter the nested scope.
        assert_eq!(
            cross_scope_pattern(&a, &a.bindings()[0]),
            Some(CrossScopePattern::EnterInner)
        );
        // q (inner) -> p (outer): executeInArea on the enclosing scope.
        assert_eq!(
            cross_scope_pattern(&a, &a.bindings()[1]),
            Some(CrossScopePattern::ExecuteInOuter)
        );
    }

    #[test]
    fn sync_into_active_warned() {
        let mut a = compliant();
        let c2 = a.add_component("caller", ComponentKind::Passive).unwrap();
        let w = a.id_of("worker").unwrap();
        a.add_interface(c2, "out", Role::Client, "I").unwrap();
        a.add_interface(w, "in", Role::Server, "I").unwrap();
        a.bind(c2, "out", w, "in", Protocol::Synchronous).unwrap();
        let m = a.id_of("imm").unwrap();
        a.add_child(m, c2).unwrap();
        let report = validate(&a);
        assert!(report.by_code("SOL-008").next().is_some());
    }

    #[test]
    fn nhrt_sync_into_heap_is_error() {
        let mut a = Architecture::new("bad");
        let caller = a
            .add_component("caller", ComponentKind::Active(ActivationKind::Sporadic))
            .unwrap();
        let server = a.add_component("server", ComponentKind::Passive).unwrap();
        a.add_interface(caller, "out", Role::Client, "I").unwrap();
        a.add_interface(server, "in", Role::Server, "I").unwrap();
        a.bind(caller, "out", server, "in", Protocol::Synchronous)
            .unwrap();
        let d = a
            .add_component("nhrt", domain(ThreadKind::NoHeapRealtime, 30))
            .unwrap();
        a.add_child(d, caller).unwrap();
        let imm = a
            .add_component("imm", area(MemoryKind::Immortal, Some(4096)))
            .unwrap();
        a.add_child(imm, d).unwrap();
        let h = a.add_component("h", area(MemoryKind::Heap, None)).unwrap();
        a.add_child(h, server).unwrap();
        let report = validate(&a);
        assert!(report
            .by_code("SOL-006")
            .any(|d| d.severity == Severity::Error));
        assert!(!report.is_compliant());
    }

    #[test]
    fn zero_buffer_is_error() {
        let a = sibling_arch(Protocol::Asynchronous { buffer_size: 0 });
        let report = validate(&a);
        assert!(report
            .by_code("SOL-010")
            .any(|d| d.severity == Severity::Error));
    }

    #[test]
    fn untriggered_sporadic_warned() {
        let mut a = compliant();
        let s = a
            .add_component("sp", ComponentKind::Active(ActivationKind::Sporadic))
            .unwrap();
        let d = a.id_of("nhrt").unwrap();
        let m = a.id_of("imm").unwrap();
        // A second domain is needed (one active per domain membership is fine,
        // but reuse keeps this simple: sporadic in same domain).
        a.add_child(d, s).unwrap();
        a.add_child(m, s).unwrap();
        let report = validate(&a);
        assert!(report.by_code("SOL-009").any(|d| d.subject == "sp"));
    }

    #[test]
    fn unbound_client_warned_and_double_binding_error() {
        let mut a = compliant();
        let w = a.id_of("worker").unwrap();
        a.add_interface(w, "out", Role::Client, "I").unwrap();
        let report = validate(&a);
        assert!(report
            .by_code("SOL-013")
            .any(|d| d.severity == Severity::Warning));

        let p = a.add_component("p1", ComponentKind::Passive).unwrap();
        let q = a.add_component("p2", ComponentKind::Passive).unwrap();
        a.add_interface(p, "in", Role::Server, "I").unwrap();
        a.add_interface(q, "in", Role::Server, "I").unwrap();
        let m = a.id_of("imm").unwrap();
        a.add_child(m, p).unwrap();
        a.add_child(m, q).unwrap();
        a.bind(w, "out", p, "in", Protocol::Synchronous).unwrap();
        a.bind(w, "out", q, "in", Protocol::Synchronous).unwrap();
        let report = validate(&a);
        assert!(report
            .by_code("SOL-013")
            .any(|d| d.severity == Severity::Error));
    }

    #[test]
    fn shared_service_gets_a_ceiling() {
        // Two domains calling the same passive service synchronously.
        let mut a = Architecture::new("shared");
        let s = a.add_component("svc", ComponentKind::Passive).unwrap();
        let c1 = a
            .add_component("c1", ComponentKind::Active(ActivationKind::Sporadic))
            .unwrap();
        let c2 = a
            .add_component("c2", ComponentKind::Active(ActivationKind::Sporadic))
            .unwrap();
        a.add_interface(s, "in", Role::Server, "I").unwrap();
        a.add_interface(c1, "out", Role::Client, "I").unwrap();
        a.add_interface(c2, "out", Role::Client, "I").unwrap();
        a.bind(c1, "out", s, "in", Protocol::Synchronous).unwrap();
        a.bind(c2, "out", s, "in", Protocol::Synchronous).unwrap();
        let d1 = a
            .add_component("d1", domain(ThreadKind::Realtime, 20))
            .unwrap();
        let d2 = a
            .add_component("d2", domain(ThreadKind::NoHeapRealtime, 33))
            .unwrap();
        a.add_child(d1, c1).unwrap();
        a.add_child(d2, c2).unwrap();
        let m = a
            .add_component("imm", area(MemoryKind::Immortal, Some(8192)))
            .unwrap();
        a.add_child(m, d1).unwrap();
        a.add_child(m, d2).unwrap();
        a.add_child(m, s).unwrap();

        assert_eq!(
            shared_service_ceiling(&a, s),
            Some(33),
            "max client priority"
        );
        let report = validate(&a);
        assert!(report
            .by_code("SOL-014")
            .any(|d| d.message.contains("ceiling 33")));
        assert!(report.is_compliant(), "info does not block: {report}");

        // A single-domain client is not shared: no ceiling.
        assert_eq!(
            shared_service_ceiling(&a, c1),
            None,
            "active components have none"
        );
        let mut single = Architecture::new("single");
        let s2 = single.add_component("svc", ComponentKind::Passive).unwrap();
        let c = single
            .add_component("c", ComponentKind::Active(ActivationKind::Sporadic))
            .unwrap();
        single.add_interface(s2, "in", Role::Server, "I").unwrap();
        single.add_interface(c, "out", Role::Client, "I").unwrap();
        single
            .bind(c, "out", s2, "in", Protocol::Synchronous)
            .unwrap();
        let d = single
            .add_component("d", domain(ThreadKind::Realtime, 20))
            .unwrap();
        single.add_child(d, c).unwrap();
        assert_eq!(shared_service_ceiling(&single, s2), None);
    }

    #[test]
    fn report_display_is_readable() {
        let mut a = Architecture::new("bad");
        a.add_component("orphan", ComponentKind::Active(ActivationKind::Sporadic))
            .unwrap();
        let report = validate(&a);
        let text = report.to_string();
        assert!(text.contains("SOL-001"));
        assert!(text.contains("orphan"));
        // Compliant report prints a positive verdict.
        let ok = validate(&compliant());
        assert!(ok.to_string().contains("compliant") || !ok.is_empty());
    }

    // -----------------------------------------------------------------
    // SOL-015: parallel-coupling advisory
    // -----------------------------------------------------------------

    /// Two NHRT domains in immortal memory, one periodic producer and one
    /// sporadic consumer, decoupled by an asynchronous binding.
    fn two_domain_arch(protocol: Protocol) -> Architecture {
        let mut a = Architecture::new("two-domains");
        let p = a
            .add_component(
                "producer",
                ComponentKind::Active(ActivationKind::Periodic {
                    period_ns: 1_000_000,
                }),
            )
            .unwrap();
        let c = a
            .add_component("consumer", ComponentKind::Active(ActivationKind::Sporadic))
            .unwrap();
        let d1 = a
            .add_component("nhrt1", domain(ThreadKind::NoHeapRealtime, 30))
            .unwrap();
        let d2 = a
            .add_component("nhrt2", domain(ThreadKind::NoHeapRealtime, 25))
            .unwrap();
        let m = a
            .add_component("imm", area(MemoryKind::Immortal, Some(64 * 1024)))
            .unwrap();
        a.add_child(d1, p).unwrap();
        a.add_child(d2, c).unwrap();
        a.add_child(m, d1).unwrap();
        a.add_child(m, d2).unwrap();
        a.add_interface(p, "out", Role::Client, "I").unwrap();
        a.add_interface(c, "in", Role::Server, "I").unwrap();
        a.bind(p, "out", c, "in", protocol).unwrap();
        a
    }

    #[test]
    fn async_cross_domain_binding_reports_no_coupling() {
        let a = two_domain_arch(Protocol::Asynchronous { buffer_size: 8 });
        let report = parallel_coupling(&a);
        assert!(report.is_empty(), "{report}");
    }

    #[test]
    fn sync_cross_domain_binding_reports_serialization() {
        let a = two_domain_arch(Protocol::Synchronous);
        let report = parallel_coupling(&a);
        // The precise per-binding finding plus the group-level summary.
        let findings: Vec<_> = report.by_code("SOL-015").collect();
        assert_eq!(findings.len(), 2, "{report}");
        assert!(findings[0].message.contains("nhrt1"));
        assert!(findings[0].message.contains("nhrt2"));
        assert!(findings[0].suggestion.is_some());
    }

    #[test]
    fn passive_chain_couples_domains_transitively() {
        // producer (d1) -sync-> shared passive <-sync- consumer (d2):
        // neither binding links two domains directly, but the chain
        // serializes d1 and d2 — only the group pass can see it.
        let mut a = Architecture::new("chain");
        let p = a
            .add_component(
                "producer",
                ComponentKind::Active(ActivationKind::Periodic {
                    period_ns: 1_000_000,
                }),
            )
            .unwrap();
        let q = a
            .add_component("poller", ComponentKind::Active(ActivationKind::Sporadic))
            .unwrap();
        let svc = a.add_component("svc", ComponentKind::Passive).unwrap();
        let d1 = a
            .add_component("nhrt1", domain(ThreadKind::NoHeapRealtime, 30))
            .unwrap();
        let d2 = a
            .add_component("nhrt2", domain(ThreadKind::NoHeapRealtime, 25))
            .unwrap();
        let m = a
            .add_component("imm", area(MemoryKind::Immortal, Some(64 * 1024)))
            .unwrap();
        a.add_child(d1, p).unwrap();
        a.add_child(d2, q).unwrap();
        a.add_child(m, d1).unwrap();
        a.add_child(m, d2).unwrap();
        a.add_child(m, svc).unwrap();
        a.add_interface(p, "svc", Role::Client, "I").unwrap();
        a.add_interface(q, "svc", Role::Client, "I").unwrap();
        a.add_interface(svc, "svc", Role::Server, "I").unwrap();
        a.bind(p, "svc", svc, "svc", Protocol::Synchronous).unwrap();
        a.bind(q, "svc", svc, "svc", Protocol::Synchronous).unwrap();
        let report = parallel_coupling(&a);
        let findings: Vec<_> = report.by_code("SOL-015").collect();
        assert_eq!(findings.len(), 1, "{report}");
        assert!(findings[0]
            .message
            .contains("serialized into one engine shard"));
    }

    #[test]
    fn shared_scoped_area_reports_coupling() {
        let mut a = Architecture::new("shared-scope");
        let p = a
            .add_component(
                "producer",
                ComponentKind::Active(ActivationKind::Periodic {
                    period_ns: 1_000_000,
                }),
            )
            .unwrap();
        let c = a
            .add_component("consumer", ComponentKind::Active(ActivationKind::Sporadic))
            .unwrap();
        let d1 = a
            .add_component("rt1", domain(ThreadKind::Realtime, 20))
            .unwrap();
        let d2 = a
            .add_component("rt2", domain(ThreadKind::Realtime, 22))
            .unwrap();
        let s = a
            .add_component("scope", area(MemoryKind::Scoped, Some(16 * 1024)))
            .unwrap();
        a.add_child(d1, p).unwrap();
        a.add_child(d2, c).unwrap();
        a.add_child(s, d1).unwrap();
        a.add_child(s, d2).unwrap();
        let report = parallel_coupling(&a);
        // The per-area finding plus the group summary both name the scope
        // coupling.
        let findings: Vec<_> = report.by_code("SOL-015").collect();
        assert_eq!(findings.len(), 2, "{report}");
        assert!(findings.iter().any(|d| d.subject == "scope"));
    }

    #[test]
    fn motivation_style_single_domain_couplings_stay_silent() {
        // A passive called synchronously from ONE domain does not couple
        // anything: the advisory must not cry wolf.
        let mut a = compliant();
        let svc = a.add_component("svc", ComponentKind::Passive).unwrap();
        let m = a.id_of("imm").unwrap();
        a.add_child(m, svc).unwrap();
        let w = a.id_of("worker").unwrap();
        a.add_interface(w, "svc", Role::Client, "I").unwrap();
        a.add_interface(svc, "svc", Role::Server, "I").unwrap();
        a.bind(w, "svc", svc, "svc", Protocol::Synchronous).unwrap();
        assert!(parallel_coupling(&a).is_empty());
    }

    #[test]
    fn nested_scoped_areas_couple_like_the_planner_shards() {
        // producer (rt1) directly in 'outer'; consumer (rt2) in 'inner'
        // nested inside 'outer': the consumer stands in BOTH scopes, so
        // one engine must own 'outer' and the domains serialize — the
        // advisory must see the full ancestry, not just the innermost
        // area (regression: it used to report nothing here).
        let mut a = Architecture::new("nested-scope");
        let p = a
            .add_component(
                "producer",
                ComponentKind::Active(ActivationKind::Periodic {
                    period_ns: 1_000_000,
                }),
            )
            .unwrap();
        let c = a
            .add_component("consumer", ComponentKind::Active(ActivationKind::Sporadic))
            .unwrap();
        let d1 = a
            .add_component("rt1", domain(ThreadKind::Realtime, 20))
            .unwrap();
        let d2 = a
            .add_component("rt2", domain(ThreadKind::Realtime, 22))
            .unwrap();
        let outer = a
            .add_component("outer", area(MemoryKind::Scoped, Some(32 * 1024)))
            .unwrap();
        let inner = a
            .add_component("inner", area(MemoryKind::Scoped, Some(8 * 1024)))
            .unwrap();
        a.add_child(d1, p).unwrap();
        a.add_child(d2, c).unwrap();
        a.add_child(outer, d1).unwrap();
        a.add_child(outer, inner).unwrap();
        a.add_child(inner, d2).unwrap();
        let report = parallel_coupling(&a);
        let findings: Vec<_> = report.by_code("SOL-015").collect();
        assert!(
            findings.iter().any(|d| d.subject == "outer"),
            "shared ancestry through 'outer' must be reported: {report}"
        );
        assert!(
            findings
                .iter()
                .any(|d| d.message.contains("serialized into one engine shard")),
            "{report}"
        );
    }
}
