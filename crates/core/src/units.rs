//! Attribute-value parsing for the ADL: byte sizes (`600KB`) and durations
//! (`10ms`), exactly the spellings the paper's Fig. 4 uses.

use rtsj::time::RelativeTime;

use crate::ModelError;

/// Parses a byte-size literal: a decimal integer with an optional `B`, `KB`,
/// `MB` or `GB` suffix (case-insensitive, optional whitespace).
///
/// ```
/// use soleil_core::units::parse_size;
/// assert_eq!(parse_size("600KB").unwrap(), 600 * 1024);
/// assert_eq!(parse_size("28 kb").unwrap(), 28 * 1024);
/// assert_eq!(parse_size("512").unwrap(), 512);
/// ```
///
/// # Errors
///
/// [`ModelError::BadAttribute`] on empty input, unknown suffix or overflow.
pub fn parse_size(text: &str) -> crate::Result<usize> {
    let bad = || ModelError::BadAttribute {
        attribute: "size".to_string(),
        value: text.to_string(),
    };
    let trimmed = text.trim();
    let split = trimmed
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(trimmed.len());
    let (digits, suffix) = trimmed.split_at(split);
    let value: usize = digits.parse().map_err(|_| bad())?;
    let factor: usize = match suffix.trim().to_ascii_lowercase().as_str() {
        "" | "b" => 1,
        "kb" | "k" => 1024,
        "mb" | "m" => 1024 * 1024,
        "gb" | "g" => 1024 * 1024 * 1024,
        _ => return Err(bad()),
    };
    value.checked_mul(factor).ok_or_else(bad)
}

/// Formats a byte count the way the ADL prints it (`600KB`, `1MB`, `512B`).
pub fn format_size(bytes: usize) -> String {
    const MB: usize = 1024 * 1024;
    const KB: usize = 1024;
    if bytes >= MB && bytes.is_multiple_of(MB) {
        format!("{}MB", bytes / MB)
    } else if bytes >= KB && bytes.is_multiple_of(KB) {
        format!("{}KB", bytes / KB)
    } else {
        format!("{bytes}B")
    }
}

/// Parses a duration literal: a decimal integer with an `ns`, `us`, `ms` or
/// `s` suffix (case-insensitive, optional whitespace).
///
/// ```
/// use soleil_core::units::parse_duration;
/// use rtsj::time::RelativeTime;
/// assert_eq!(parse_duration("10ms").unwrap(), RelativeTime::from_millis(10));
/// assert_eq!(parse_duration("250 us").unwrap(), RelativeTime::from_micros(250));
/// ```
///
/// # Errors
///
/// [`ModelError::BadAttribute`] on empty input or unknown suffix.
pub fn parse_duration(text: &str) -> crate::Result<RelativeTime> {
    let bad = || ModelError::BadAttribute {
        attribute: "duration".to_string(),
        value: text.to_string(),
    };
    let trimmed = text.trim();
    let split = trimmed
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(trimmed.len());
    let (digits, suffix) = trimmed.split_at(split);
    let value: u64 = digits.parse().map_err(|_| bad())?;
    match suffix.trim().to_ascii_lowercase().as_str() {
        "ns" => Ok(RelativeTime::from_nanos(value)),
        "us" | "µs" => Ok(RelativeTime::from_micros(value)),
        "ms" => Ok(RelativeTime::from_millis(value)),
        "s" => Ok(RelativeTime::from_millis(value * 1000)),
        _ => Err(bad()),
    }
}

/// Formats a duration the way the ADL prints it (`10ms`, `250us`, `3ns`).
pub fn format_duration(t: RelativeTime) -> String {
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_parse_and_format() {
        assert_eq!(parse_size("0").unwrap(), 0);
        assert_eq!(parse_size("600KB").unwrap(), 614_400);
        assert_eq!(parse_size("1MB").unwrap(), 1_048_576);
        assert_eq!(parse_size("2gb").unwrap(), 2 * 1024 * 1024 * 1024);
        assert_eq!(format_size(614_400), "600KB");
        assert_eq!(format_size(1_048_576), "1MB");
        assert_eq!(format_size(100), "100B");
    }

    #[test]
    fn size_errors() {
        assert!(parse_size("").is_err());
        assert!(parse_size("KB").is_err());
        assert!(parse_size("10XB").is_err());
        assert!(parse_size("-5KB").is_err());
    }

    #[test]
    fn durations_parse() {
        assert_eq!(
            parse_duration("10ms").unwrap(),
            RelativeTime::from_millis(10)
        );
        assert_eq!(
            parse_duration("1s").unwrap(),
            RelativeTime::from_millis(1000)
        );
        assert_eq!(parse_duration("7ns").unwrap(), RelativeTime::from_nanos(7));
        assert!(parse_duration("10").is_err(), "bare numbers are ambiguous");
        assert!(parse_duration("10min").is_err());
    }

    #[test]
    fn duration_roundtrip_format() {
        let t = parse_duration("10ms").unwrap();
        assert_eq!(format_duration(t), "10ms");
    }
}
