//! A small deterministic union-find (disjoint-set forest).
//!
//! Shared by the design-time parallel-coupling advisory
//! ([`crate::validate::parallel_coupling`]) and the deploy-time shard
//! planner (`soleil_runtime::parallel`): both partition components by the
//! same serialization rules, so they must agree on the machinery — and on
//! the **smaller-root-wins** convention, which makes group identity follow
//! element declaration order (shard numbering depends on it).

/// Disjoint-set forest over `0..n` with path halving and deterministic
/// smaller-root-wins unions.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton sets, element `i` in set `i`.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    /// The canonical representative of `x`'s set — always the smallest
    /// element ever unioned into it.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; the smaller root wins, so
    /// representatives follow declaration order deterministically.
    pub fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }

    /// True when `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True for an empty forest.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unions_are_deterministic_and_smallest_root_wins() {
        let mut uf = UnionFind::new(6);
        assert_eq!(uf.len(), 6);
        assert!(!uf.is_empty());
        uf.union(4, 2);
        uf.union(2, 5);
        assert_eq!(uf.find(5), 2, "smallest member is the representative");
        assert!(uf.same(4, 5));
        assert!(!uf.same(0, 4));
        uf.union(0, 4);
        assert_eq!(uf.find(5), 0);
        // Idempotent.
        uf.union(0, 5);
        assert_eq!(uf.find(2), 0);
    }
}
