//! The component metamodel of Fig. 2.
//!
//! Components come in five kinds. *Active*, *Passive* and *Composite*
//! components carry business function; **ThreadDomain** and **MemoryArea**
//! are the paper's non-functional composites that superimpose real-time
//! concerns over their sub-components. Components expose client/server
//! [`InterfaceDecl`]s; [`Binding`]s connect a client interface to a server
//! interface with a synchronous or asynchronous [`Protocol`].

use std::fmt;

use rtsj::memory::MemoryKind;
use rtsj::thread::{Priority, ThreadKind};
use rtsj::time::RelativeTime;

/// Identifies a component within an [`crate::arch::Architecture`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub(crate) u32);

impl ComponentId {
    /// The raw index.
    pub const fn as_raw(self) -> u32 {
        self.0
    }

    /// Builds an id from a raw index (diagnostic/test use).
    pub const fn from_raw(raw: u32) -> ComponentId {
        ComponentId(raw)
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c#{}", self.0)
    }
}

/// How an active component is released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationKind {
    /// Time-triggered with a fixed period.
    Periodic {
        /// Release period in nanoseconds.
        period_ns: u64,
    },
    /// Event-triggered by message arrival on a server interface.
    Sporadic,
}

impl ActivationKind {
    /// The period, for periodic activations.
    pub fn period(&self) -> Option<RelativeTime> {
        match *self {
            ActivationKind::Periodic { period_ns } => Some(RelativeTime::from_nanos(period_ns)),
            ActivationKind::Sporadic => None,
        }
    }
}

/// Attributes of a ThreadDomain component (the ADL's `DomainDesc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadDomainDesc {
    /// Thread class shared by all members.
    pub kind: ThreadKind,
    /// Dispatch priority shared by all members.
    pub priority: u8,
}

impl ThreadDomainDesc {
    /// The priority as the substrate type.
    pub fn priority(&self) -> Priority {
        Priority::new(self.priority)
    }
}

/// Attributes of a MemoryArea component (the ADL's `AreaDesc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryAreaDesc {
    /// Region kind.
    pub kind: MemoryKind,
    /// Size budget in bytes; required for scoped and immortal areas.
    pub size: Option<usize>,
}

/// The five component kinds of the metamodel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentKind {
    /// A business component with its own thread of control.
    Active(ActivationKind),
    /// A business component providing passive services.
    Passive,
    /// A plain functional composite (pure hierarchy, no RT semantics).
    Composite,
    /// Non-functional composite fixing thread type and priority.
    ThreadDomain(ThreadDomainDesc),
    /// Non-functional composite fixing the allocation region.
    MemoryArea(MemoryAreaDesc),
}

impl ComponentKind {
    /// True for Active/Passive/Composite (business) components.
    pub fn is_functional(&self) -> bool {
        matches!(
            self,
            ComponentKind::Active(_) | ComponentKind::Passive | ComponentKind::Composite
        )
    }

    /// True for active components.
    pub fn is_active(&self) -> bool {
        matches!(self, ComponentKind::Active(_))
    }

    /// True for the two non-functional composites.
    pub fn is_non_functional(&self) -> bool {
        !self.is_functional()
    }

    /// Short kind label used in diagnostics and generated code.
    pub fn label(&self) -> &'static str {
        match self {
            ComponentKind::Active(_) => "active",
            ComponentKind::Passive => "passive",
            ComponentKind::Composite => "composite",
            ComponentKind::ThreadDomain(_) => "thread-domain",
            ComponentKind::MemoryArea(_) => "memory-area",
        }
    }
}

/// The role an interface plays: client interfaces *require* a service,
/// server interfaces *provide* one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Requires the signature (outgoing calls).
    Client,
    /// Provides the signature (incoming calls).
    Server,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Role::Client => "client",
            Role::Server => "server",
        })
    }
}

/// A declared interface on a component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceDecl {
    /// Interface name, unique per component.
    pub name: String,
    /// Client or server.
    pub role: Role,
    /// Type signature (a Java-style interface name in the paper).
    pub signature: String,
}

/// A component: name, kind, interfaces and optional content class.
///
/// Hierarchy (sub/super edges) lives in the owning
/// [`crate::arch::Architecture`], because the model supports *sharing* — a
/// component may have several super-components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    pub(crate) id: ComponentId,
    /// Unique component name.
    pub name: String,
    /// The component's kind and kind-specific attributes.
    pub kind: ComponentKind,
    /// Declared interfaces.
    pub interfaces: Vec<InterfaceDecl>,
    /// Name of the functional implementation ("content class" in Fractal
    /// terms). Only meaningful for functional components.
    pub content_class: Option<String>,
}

impl Component {
    /// This component's id within its architecture.
    pub fn id(&self) -> ComponentId {
        self.id
    }

    /// Finds a declared interface by name.
    pub fn interface(&self, name: &str) -> Option<&InterfaceDecl> {
        self.interfaces.iter().find(|i| i.name == name)
    }

    /// Iterates over interfaces with the given role.
    pub fn interfaces_with_role(&self, role: Role) -> impl Iterator<Item = &InterfaceDecl> {
        self.interfaces.iter().filter(move |i| i.role == role)
    }
}

/// The communication protocol of a binding (the ADL's `BindDesc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Direct, run-to-completion invocation.
    Synchronous,
    /// Message passing through a bounded buffer.
    Asynchronous {
        /// Capacity of the message buffer.
        buffer_size: usize,
    },
}

impl Protocol {
    /// True for asynchronous bindings.
    pub fn is_async(&self) -> bool {
        matches!(self, Protocol::Asynchronous { .. })
    }

    /// Buffer capacity for asynchronous bindings.
    pub fn buffer_size(&self) -> Option<usize> {
        match *self {
            Protocol::Asynchronous { buffer_size } => Some(buffer_size),
            Protocol::Synchronous => None,
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Synchronous => f.write_str("synchronous"),
            Protocol::Asynchronous { buffer_size } => {
                write!(f, "asynchronous(buffer={buffer_size})")
            }
        }
    }
}

/// One end of a binding: a component and one of its interface names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endpoint {
    /// The component.
    pub component: ComponentId,
    /// The interface on that component.
    pub interface: String,
}

/// A binding connecting a client interface to a server interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// The requiring side.
    pub client: Endpoint,
    /// The providing side.
    pub server: Endpoint,
    /// Communication protocol.
    pub protocol: Protocol,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn component(kind: ComponentKind) -> Component {
        Component {
            id: ComponentId(0),
            name: "c".into(),
            kind,
            interfaces: vec![
                InterfaceDecl {
                    name: "in".into(),
                    role: Role::Server,
                    signature: "IIn".into(),
                },
                InterfaceDecl {
                    name: "out".into(),
                    role: Role::Client,
                    signature: "IOut".into(),
                },
            ],
            content_class: None,
        }
    }

    #[test]
    fn kind_classification() {
        let active = ComponentKind::Active(ActivationKind::Sporadic);
        let domain = ComponentKind::ThreadDomain(ThreadDomainDesc {
            kind: ThreadKind::NoHeapRealtime,
            priority: 30,
        });
        let area = ComponentKind::MemoryArea(MemoryAreaDesc {
            kind: MemoryKind::Scoped,
            size: Some(1024),
        });
        assert!(active.is_functional());
        assert!(active.is_active());
        assert!(!ComponentKind::Passive.is_active());
        assert!(domain.is_non_functional());
        assert!(area.is_non_functional());
        assert_eq!(domain.label(), "thread-domain");
    }

    #[test]
    fn interface_lookup() {
        let c = component(ComponentKind::Passive);
        assert_eq!(c.interface("in").unwrap().signature, "IIn");
        assert!(c.interface("nope").is_none());
        assert_eq!(c.interfaces_with_role(Role::Client).count(), 1);
        assert_eq!(c.interfaces_with_role(Role::Server).count(), 1);
    }

    #[test]
    fn activation_period() {
        let p = ActivationKind::Periodic {
            period_ns: 10_000_000,
        };
        assert_eq!(p.period(), Some(RelativeTime::from_millis(10)));
        assert_eq!(ActivationKind::Sporadic.period(), None);
    }

    #[test]
    fn protocol_accessors() {
        let a = Protocol::Asynchronous { buffer_size: 10 };
        assert!(a.is_async());
        assert_eq!(a.buffer_size(), Some(10));
        assert!(!Protocol::Synchronous.is_async());
        assert_eq!(a.to_string(), "asynchronous(buffer=10)");
    }

    #[test]
    fn json_roundtrip() {
        let c = component(ComponentKind::Active(ActivationKind::Periodic {
            period_ns: 1_000_000,
        }));
        let value = crate::arch::component_to_json(&c);
        let back = crate::arch::component_from_json(&value).unwrap();
        assert_eq!(c, back);
    }
}
