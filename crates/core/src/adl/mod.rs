//! The architecture description language of Fig. 4.
//!
//! The canonical form is the paper's XML dialect ([`from_xml`] /
//! [`to_xml`]); a JSON form ([`from_json`] / [`to_json`], backed by
//! [`crate::json`]) is provided for tooling. The XML structure is consistent with the metamodel
//! of Fig. 2:
//!
//! ```xml
//! <ActiveComponent name="ProductionLine" type="periodic" periodicity="10ms">
//!   <interface name="iMonitor" role="client" signature="IMonitor" />
//!   <content class="ProductionLineImpl" />
//! </ActiveComponent>
//! <Binding>
//!   <client cname="ProductionLine" iname="iMonitor" />
//!   <server cname="MonitoringSystem" iname="iMonitor" />
//!   <BindDesc protocol="asynchronous" bufferSize="10" />
//! </Binding>
//! <MemoryArea name="Imm1">
//!   <ThreadDomain name="NHRT1">
//!     <ActiveComp name="ProductionLine" />
//!     <DomainDesc type="NHRT" priority="30" />
//!   </ThreadDomain>
//!   <AreaDesc type="immortal" size="600KB" />
//! </MemoryArea>
//! ```

pub mod xml;

use rtsj::memory::MemoryKind;
use rtsj::thread::ThreadKind;

use crate::arch::Architecture;
use crate::model::{
    ActivationKind, ComponentId, ComponentKind, MemoryAreaDesc, Protocol, Role, ThreadDomainDesc,
};
use crate::units::{format_duration, format_size, parse_duration, parse_size};
use crate::{ModelError, Result};
use xml::{parse_document, write_node, XmlNode};

fn parse_err(detail: impl Into<String>) -> ModelError {
    ModelError::Parse {
        line: 0,
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------------
// XML -> Architecture
// ---------------------------------------------------------------------------

/// Parses the XML ADL dialect into an [`Architecture`].
///
/// Top-level elements may appear in any order; an optional enclosing
/// `<Architecture name="...">` element is accepted.
///
/// # Errors
///
/// [`ModelError::Parse`] on syntax errors; construction errors
/// ([`ModelError::DuplicateName`], …) when the document is structurally
/// inconsistent.
pub fn from_xml(text: &str) -> Result<Architecture> {
    let nodes = parse_document(text)?;
    // Unwrap the optional <Architecture> envelope.
    let (arch_name, top): (String, Vec<XmlNode>) = match nodes.as_slice() {
        [single] if single.name == "Architecture" => (
            single.get("name").unwrap_or("unnamed").to_string(),
            single.children.clone(),
        ),
        _ => ("unnamed".to_string(), nodes),
    };
    let mut arch = Architecture::new(arch_name);

    // Pass 1: functional components.
    for node in &top {
        match node.name.as_str() {
            "ActiveComponent" => {
                let name = node.require("name")?;
                let activation = match node.get("type").unwrap_or("sporadic") {
                    "periodic" => {
                        let period = parse_duration(node.require("periodicity")?)?;
                        ActivationKind::Periodic {
                            period_ns: period.as_nanos(),
                        }
                    }
                    "sporadic" => ActivationKind::Sporadic,
                    other => {
                        return Err(parse_err(format!(
                            "unknown activation type '{other}' on component '{name}'"
                        )))
                    }
                };
                let id = arch.add_component(name, ComponentKind::Active(activation))?;
                read_functional_children(&mut arch, id, node)?;
            }
            "PassiveComponent" => {
                let id = arch.add_component(node.require("name")?, ComponentKind::Passive)?;
                read_functional_children(&mut arch, id, node)?;
            }
            "CompositeComponent" => {
                let id = arch.add_component(node.require("name")?, ComponentKind::Composite)?;
                read_functional_children(&mut arch, id, node)?;
            }
            _ => {}
        }
    }

    // Pass 2: composite membership (needs all functional components).
    for node in &top {
        if node.name == "CompositeComponent" {
            let parent = arch.id_of(node.require("name")?)?;
            for sub in node.children_named("Sub") {
                let child = arch.id_of(sub.require("name")?)?;
                arch.add_child(parent, child)?;
            }
        }
    }

    // Pass 3: non-functional tree (MemoryAreas / ThreadDomains).
    for node in &top {
        if node.name == "MemoryArea" || node.name == "ThreadDomain" {
            read_non_functional(&mut arch, node)?;
        }
    }

    // Pass 4: bindings.
    for node in &top {
        if node.name == "Binding" {
            read_binding(&mut arch, node)?;
        }
    }

    Ok(arch)
}

fn read_functional_children(
    arch: &mut Architecture,
    id: ComponentId,
    node: &XmlNode,
) -> Result<()> {
    for child in &node.children {
        match child.name.as_str() {
            "interface" => {
                let role = match child.require("role")? {
                    "client" => Role::Client,
                    "server" => Role::Server,
                    other => return Err(parse_err(format!("unknown interface role '{other}'"))),
                };
                arch.add_interface(
                    id,
                    child.require("name")?,
                    role,
                    child.require("signature")?,
                )?;
            }
            "content" => {
                arch.set_content_class(id, child.require("class")?)?;
            }
            "Sub" => {} // handled in pass 2
            other => {
                return Err(parse_err(format!(
                    "unexpected element <{other}> inside a functional component"
                )))
            }
        }
    }
    Ok(())
}

fn read_non_functional(arch: &mut Architecture, node: &XmlNode) -> Result<ComponentId> {
    let name = node.require("name")?;
    let id = match node.name.as_str() {
        "MemoryArea" => {
            let desc = node.first_child("AreaDesc").ok_or_else(|| {
                parse_err(format!("MemoryArea '{name}' is missing its <AreaDesc>"))
            })?;
            let kind = MemoryKind::parse(desc.require("type")?)
                .ok_or_else(|| parse_err(format!("unknown memory type on area '{name}'")))?;
            let size = desc.get("size").map(parse_size).transpose()?;
            arch.add_component(
                name,
                ComponentKind::MemoryArea(MemoryAreaDesc { kind, size }),
            )?
        }
        "ThreadDomain" => {
            let desc = node.first_child("DomainDesc").ok_or_else(|| {
                parse_err(format!("ThreadDomain '{name}' is missing its <DomainDesc>"))
            })?;
            let kind = ThreadKind::parse(desc.require("type")?)
                .ok_or_else(|| parse_err(format!("unknown thread type on domain '{name}'")))?;
            let priority = match desc.get("priority") {
                Some(p) => p.parse::<u8>().map_err(|_| ModelError::BadAttribute {
                    attribute: "priority".into(),
                    value: p.to_string(),
                })?,
                None => match kind {
                    ThreadKind::Regular => 5,
                    _ => 20,
                },
            };
            arch.add_component(
                name,
                ComponentKind::ThreadDomain(ThreadDomainDesc { kind, priority }),
            )?
        }
        other => {
            return Err(parse_err(format!(
                "unexpected non-functional element <{other}>"
            )))
        }
    };

    for child in &node.children {
        match child.name.as_str() {
            "AreaDesc" | "DomainDesc" => {}
            "ActiveComp" | "PassiveComp" | "Comp" => {
                let member = arch.id_of(child.require("name")?)?;
                arch.add_child(id, member)?;
            }
            "MemoryArea" | "ThreadDomain" => {
                let sub = read_non_functional(arch, child)?;
                arch.add_child(id, sub)?;
            }
            other => {
                return Err(parse_err(format!(
                    "unexpected element <{other}> inside <{}>",
                    node.name
                )))
            }
        }
    }
    Ok(id)
}

fn read_binding(arch: &mut Architecture, node: &XmlNode) -> Result<()> {
    let client = node
        .first_child("client")
        .ok_or_else(|| parse_err("Binding missing <client>"))?;
    let server = node
        .first_child("server")
        .ok_or_else(|| parse_err("Binding missing <server>"))?;
    let protocol = match node.first_child("BindDesc") {
        None => Protocol::Synchronous,
        Some(desc) => match desc.get("protocol").unwrap_or("synchronous") {
            "synchronous" => Protocol::Synchronous,
            "asynchronous" => {
                let buffer_size = desc
                    .get("bufferSize")
                    .unwrap_or("1")
                    .parse::<usize>()
                    .map_err(|_| ModelError::BadAttribute {
                        attribute: "bufferSize".into(),
                        value: desc.get("bufferSize").unwrap_or("").to_string(),
                    })?;
                Protocol::Asynchronous { buffer_size }
            }
            other => return Err(parse_err(format!("unknown binding protocol '{other}'"))),
        },
    };
    let c = arch.id_of(client.require("cname")?)?;
    let s = arch.id_of(server.require("cname")?)?;
    arch.bind(
        c,
        client.require("iname")?,
        s,
        server.require("iname")?,
        protocol,
    )
}

// ---------------------------------------------------------------------------
// Architecture -> XML
// ---------------------------------------------------------------------------

/// Serializes an [`Architecture`] into the XML ADL dialect.
///
/// The output round-trips through [`from_xml`].
pub fn to_xml(arch: &Architecture) -> String {
    let mut root = XmlNode::new("Architecture").attr("name", &arch.name);

    // Functional components.
    for c in arch.components() {
        let node = match c.kind {
            ComponentKind::Active(activation) => {
                let mut n = XmlNode::new("ActiveComponent").attr("name", &c.name);
                match activation {
                    ActivationKind::Periodic { period_ns } => {
                        n = n.attr("type", "periodic").attr(
                            "periodicity",
                            format_duration(rtsj::time::RelativeTime::from_nanos(period_ns)),
                        );
                    }
                    ActivationKind::Sporadic => {
                        n = n.attr("type", "sporadic");
                    }
                }
                Some(n)
            }
            ComponentKind::Passive => Some(XmlNode::new("PassiveComponent").attr("name", &c.name)),
            ComponentKind::Composite => {
                let mut n = XmlNode::new("CompositeComponent").attr("name", &c.name);
                for &child in arch.children_of(c.id()) {
                    if let Ok(cc) = arch.component(child) {
                        n = n.child(XmlNode::new("Sub").attr("name", &cc.name));
                    }
                }
                Some(n)
            }
            _ => None,
        };
        if let Some(mut n) = node {
            for i in &c.interfaces {
                n = n.child(
                    XmlNode::new("interface")
                        .attr("name", &i.name)
                        .attr("role", i.role.to_string())
                        .attr("signature", &i.signature),
                );
            }
            if let Some(class) = &c.content_class {
                n = n.child(XmlNode::new("content").attr("class", class));
            }
            root = root.child(n);
        }
    }

    // Bindings.
    for b in arch.bindings() {
        let cname = |id| {
            arch.component(id)
                .map(|c| c.name.clone())
                .unwrap_or_default()
        };
        let mut n = XmlNode::new("Binding")
            .child(
                XmlNode::new("client")
                    .attr("cname", cname(b.client.component))
                    .attr("iname", &b.client.interface),
            )
            .child(
                XmlNode::new("server")
                    .attr("cname", cname(b.server.component))
                    .attr("iname", &b.server.interface),
            );
        n = match b.protocol {
            Protocol::Synchronous => {
                n.child(XmlNode::new("BindDesc").attr("protocol", "synchronous"))
            }
            Protocol::Asynchronous { buffer_size } => n.child(
                XmlNode::new("BindDesc")
                    .attr("protocol", "asynchronous")
                    .attr("bufferSize", buffer_size.to_string()),
            ),
        };
        root = root.child(n);
    }

    // Non-functional tree: emit each root-level MemoryArea/ThreadDomain.
    for c in arch.components() {
        let non_functional_root = c.kind.is_non_functional()
            && arch
                .parents_of(c.id())
                .iter()
                .all(|&p| !matches!(arch.component(p), Ok(pc) if pc.kind.is_non_functional()));
        if non_functional_root {
            root = root.child(write_non_functional(arch, c.id()));
        }
    }

    let mut out = String::new();
    write_node(&root, 0, &mut out);
    out
}

fn write_non_functional(arch: &Architecture, id: ComponentId) -> XmlNode {
    let c = arch.component(id).expect("writing known component");
    let mut node = match c.kind {
        ComponentKind::MemoryArea(desc) => {
            let mut d = XmlNode::new("AreaDesc").attr("type", desc.kind.code());
            if let Some(size) = desc.size {
                d = d.attr("size", format_size(size));
            }
            XmlNode::new("MemoryArea").attr("name", &c.name).child(d)
        }
        ComponentKind::ThreadDomain(desc) => {
            XmlNode::new("ThreadDomain").attr("name", &c.name).child(
                XmlNode::new("DomainDesc")
                    .attr("type", desc.kind.code())
                    .attr("priority", desc.priority.to_string()),
            )
        }
        _ => unreachable!("write_non_functional on functional component"),
    };
    for &child in arch.children_of(id) {
        let cc = arch.component(child).expect("child exists");
        match cc.kind {
            ComponentKind::MemoryArea(_) | ComponentKind::ThreadDomain(_) => {
                node = node.child(write_non_functional(arch, child));
            }
            ComponentKind::Active(_) => {
                node = node.child(XmlNode::new("ActiveComp").attr("name", &cc.name));
            }
            ComponentKind::Passive => {
                node = node.child(XmlNode::new("PassiveComp").attr("name", &cc.name));
            }
            ComponentKind::Composite => {
                node = node.child(XmlNode::new("Comp").attr("name", &cc.name));
            }
        }
    }
    node
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

/// Serializes an architecture as pretty-printed JSON.
pub fn to_json(arch: &Architecture) -> String {
    arch.to_json_value().to_pretty()
}

/// Parses an architecture from its JSON form.
///
/// # Errors
///
/// [`ModelError::Parse`] when the JSON is malformed.
pub fn from_json(text: &str) -> Result<Architecture> {
    let value = crate::json::parse(text)?;
    let mut arch = Architecture::from_json_value(&value)?;
    arch.reindex();
    Ok(arch)
}

/// The paper's Fig. 4 document, usable as a fixture by tests, examples and
/// benchmarks.
pub const MOTIVATION_EXAMPLE_XML: &str = r#"
<Architecture name="production-line-monitoring">
  <!-- Functional Components -->
  <ActiveComponent name="ProductionLine" type="periodic" periodicity="10ms">
    <interface name="iMonitor" role="client" signature="IMonitor" />
    <content class="ProductionLineImpl" />
  </ActiveComponent>
  <ActiveComponent name="MonitoringSystem" type="sporadic">
    <interface name="iMonitor" role="server" signature="IMonitor" />
    <interface name="iConsole" role="client" signature="IConsole" />
    <interface name="iAudit" role="client" signature="IAudit" />
    <content class="MonitoringSystemImpl" />
  </ActiveComponent>
  <PassiveComponent name="Console">
    <interface name="iConsole" role="server" signature="IConsole" />
    <content class="ConsoleImpl" />
  </PassiveComponent>
  <ActiveComponent name="AuditLog" type="sporadic">
    <interface name="iAudit" role="server" signature="IAudit" />
    <content class="AuditLogImpl" />
  </ActiveComponent>

  <!-- Bindings -->
  <Binding>
    <client cname="ProductionLine" iname="iMonitor" />
    <server cname="MonitoringSystem" iname="iMonitor" />
    <BindDesc protocol="asynchronous" bufferSize="10" />
  </Binding>
  <Binding>
    <client cname="MonitoringSystem" iname="iConsole" />
    <server cname="Console" iname="iConsole" />
    <BindDesc protocol="synchronous" />
  </Binding>
  <Binding>
    <client cname="MonitoringSystem" iname="iAudit" />
    <server cname="AuditLog" iname="iAudit" />
    <BindDesc protocol="asynchronous" bufferSize="10" />
  </Binding>

  <!-- Non-Functional Components -->
  <MemoryArea name="Imm1">
    <ThreadDomain name="NHRT1">
      <ActiveComp name="ProductionLine" />
      <DomainDesc type="NHRT" priority="30" />
    </ThreadDomain>
    <ThreadDomain name="NHRT2">
      <ActiveComp name="MonitoringSystem" />
      <DomainDesc type="NHRT" priority="25" />
    </ThreadDomain>
    <AreaDesc type="immortal" size="600KB" />
  </MemoryArea>
  <MemoryArea name="S1">
    <PassiveComp name="Console" />
    <AreaDesc type="scope" size="28KB" />
  </MemoryArea>
  <MemoryArea name="H1">
    <ThreadDomain name="reg1">
      <ActiveComp name="AuditLog" />
      <DomainDesc type="Regular" priority="5" />
    </ThreadDomain>
    <AreaDesc type="heap" />
  </MemoryArea>
</Architecture>
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn motivation_example_parses() {
        let arch = from_xml(MOTIVATION_EXAMPLE_XML).unwrap();
        assert_eq!(arch.name, "production-line-monitoring");
        assert_eq!(arch.components().len(), 10);
        assert_eq!(arch.bindings().len(), 3);

        let pl = arch.by_name("ProductionLine").unwrap();
        assert!(matches!(
            pl.kind,
            ComponentKind::Active(ActivationKind::Periodic {
                period_ns: 10_000_000
            })
        ));
        assert_eq!(pl.content_class.as_deref(), Some("ProductionLineImpl"));

        let (domain, ddesc) = arch.thread_domain_of(pl.id()).unwrap();
        assert_eq!(arch.component(domain).unwrap().name, "NHRT1");
        assert_eq!(ddesc.kind, ThreadKind::NoHeapRealtime);
        assert_eq!(ddesc.priority, 30);

        let console = arch.by_name("Console").unwrap();
        let (_, adesc) = arch.memory_area_of(console.id()).unwrap();
        assert_eq!(adesc.kind, MemoryKind::Scoped);
        assert_eq!(adesc.size, Some(28 * 1024));
    }

    #[test]
    fn motivation_example_is_compliant() {
        let arch = from_xml(MOTIVATION_EXAMPLE_XML).unwrap();
        let report = validate(&arch);
        assert!(report.is_compliant(), "{report}");
    }

    #[test]
    fn xml_roundtrip_preserves_structure() {
        let arch = from_xml(MOTIVATION_EXAMPLE_XML).unwrap();
        let text = to_xml(&arch);
        let back = from_xml(&text).unwrap();
        assert_eq!(back.components().len(), arch.components().len());
        assert_eq!(back.bindings().len(), arch.bindings().len());
        for c in arch.components() {
            let bc = back.by_name(&c.name).unwrap();
            assert_eq!(bc.kind, c.kind, "kind of {}", c.name);
            assert_eq!(bc.interfaces, c.interfaces, "interfaces of {}", c.name);
            assert_eq!(bc.content_class, c.content_class);
            // Parent sets match by name.
            let mut pa: Vec<String> = arch
                .parents_of(c.id())
                .iter()
                .map(|&p| arch.component(p).unwrap().name.clone())
                .collect();
            let mut pb: Vec<String> = back
                .parents_of(bc.id())
                .iter()
                .map(|&p| back.component(p).unwrap().name.clone())
                .collect();
            pa.sort();
            pb.sort();
            assert_eq!(pa, pb, "parents of {}", c.name);
        }
    }

    #[test]
    fn json_roundtrip() {
        let arch = from_xml(MOTIVATION_EXAMPLE_XML).unwrap();
        let json = to_json(&arch);
        let back = from_json(&json).unwrap();
        assert_eq!(back.components().len(), arch.components().len());
        assert_eq!(
            back.id_of("Console").unwrap(),
            arch.id_of("Console").unwrap()
        );
    }

    #[test]
    fn missing_area_desc_rejected() {
        let doc = r#"<MemoryArea name="m"><PassiveComp name="x" /></MemoryArea>"#;
        let err = from_xml(doc).unwrap_err();
        assert!(matches!(err, ModelError::Parse { .. }), "{err}");
    }

    #[test]
    fn unknown_member_rejected() {
        let doc = r#"
          <MemoryArea name="m">
            <PassiveComp name="ghost" />
            <AreaDesc type="heap" />
          </MemoryArea>"#;
        assert!(matches!(
            from_xml(doc),
            Err(ModelError::UnknownComponent(_))
        ));
    }

    #[test]
    fn unknown_protocol_rejected() {
        let doc = r#"
          <PassiveComponent name="a"><interface name="o" role="client" signature="I" /></PassiveComponent>
          <PassiveComponent name="b"><interface name="i" role="server" signature="I" /></PassiveComponent>
          <Binding>
            <client cname="a" iname="o" />
            <server cname="b" iname="i" />
            <BindDesc protocol="psychic" />
          </Binding>"#;
        assert!(from_xml(doc).is_err());
    }

    #[test]
    fn default_priorities_apply() {
        let doc = r#"
          <ActiveComponent name="a" type="sporadic" />
          <ThreadDomain name="d">
            <ActiveComp name="a" />
            <DomainDesc type="Regular" />
          </ThreadDomain>"#;
        let arch = from_xml(doc).unwrap();
        let d = arch.by_name("d").unwrap();
        match d.kind {
            ComponentKind::ThreadDomain(desc) => assert_eq!(desc.priority, 5),
            _ => panic!("expected domain"),
        }
    }

    #[test]
    fn composite_membership_roundtrips() {
        let doc = r#"
          <PassiveComponent name="leaf" />
          <CompositeComponent name="box"><Sub name="leaf" /></CompositeComponent>
        "#;
        let arch = from_xml(doc).unwrap();
        let b = arch.id_of("box").unwrap();
        assert_eq!(arch.children_of(b).len(), 1);
        let text = to_xml(&arch);
        let back = from_xml(&text).unwrap();
        assert_eq!(back.children_of(back.id_of("box").unwrap()).len(), 1);
    }
}
