//! A minimal XML-subset reader/writer for the ADL dialect of Fig. 4.
//!
//! Supports exactly what the dialect needs: nested elements, double-quoted
//! attributes, self-closing tags, comments and the five standard entities.
//! Deliberately hand-written — the ADL is the paper's artifact, and keeping
//! the parser in-tree avoids an external XML dependency.

use crate::{ModelError, Result};

/// A parsed element: name, attributes and child elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlNode {
    /// Element (tag) name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child elements (text content is ignored by the dialect).
    pub children: Vec<XmlNode>,
}

impl XmlNode {
    /// Creates an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        XmlNode {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds an attribute (builder style).
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((key.into(), value.into()));
        self
    }

    /// Adds a child element (builder style).
    pub fn child(mut self, child: XmlNode) -> Self {
        self.children.push(child);
        self
    }

    /// Looks up an attribute value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Looks up a required attribute.
    ///
    /// # Errors
    ///
    /// [`ModelError::Parse`] when absent.
    pub fn require(&self, key: &str) -> Result<&str> {
        self.get(key).ok_or_else(|| ModelError::Parse {
            line: 0,
            detail: format!("element <{}> missing required attribute '{key}'", self.name),
        })
    }

    /// Child elements with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlNode> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// The first child with the given tag name.
    pub fn first_child(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }
}

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

fn unescape(text: &str) -> String {
    text.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Serializes a node tree with two-space indentation.
pub fn write_node(node: &XmlNode, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    out.push_str(&pad);
    out.push('<');
    out.push_str(&node.name);
    for (k, v) in &node.attrs {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape(v));
        out.push('"');
    }
    if node.children.is_empty() {
        out.push_str(" />\n");
    } else {
        out.push_str(">\n");
        for child in &node.children {
            write_node(child, depth + 1, out);
        }
        out.push_str(&pad);
        out.push_str("</");
        out.push_str(&node.name);
        out.push_str(">\n");
    }
}

struct Lexer<'a> {
    input: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            input: input.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, detail: impl Into<String>) -> ModelError {
        ModelError::Parse {
            line: self.line,
            detail: detail.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_ws_and_text(&mut self) {
        // The dialect has no meaningful text nodes; skip until '<' or EOF.
        while let Some(c) = self.peek() {
            if c == b'<' {
                break;
            }
            self.bump();
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn consume(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn skip_comment(&mut self) -> Result<()> {
        // Positioned right after "<!--".
        loop {
            if self.consume("-->") {
                return Ok(());
            }
            if self.bump().is_none() {
                return Err(self.err("unterminated comment"));
            }
        }
    }

    fn read_name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b':' || c == b'.' {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn skip_spaces(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn read_attr_value(&mut self) -> Result<String> {
        if self.bump() != Some(b'"') {
            return Err(self.err("expected '\"' to open attribute value"));
        }
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'"' {
                let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                self.bump();
                return Ok(unescape(&raw));
            }
            self.bump();
        }
        Err(self.err("unterminated attribute value"))
    }

    /// Parses one element, positioned at its '<'.
    fn parse_element(&mut self) -> Result<XmlNode> {
        if self.bump() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        let name = self.read_name()?;
        let mut node = XmlNode::new(name);
        loop {
            self.skip_spaces();
            match self.peek() {
                Some(b'/') => {
                    self.bump();
                    if self.bump() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    return Ok(node);
                }
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                    let key = self.read_name()?;
                    self.skip_spaces();
                    if self.bump() != Some(b'=') {
                        return Err(self.err(format!("expected '=' after attribute '{key}'")));
                    }
                    self.skip_spaces();
                    let value = self.read_attr_value()?;
                    node.attrs.push((key, value));
                }
                other => {
                    return Err(self.err(format!(
                        "unexpected character {:?} in tag <{}>",
                        other.map(|c| c as char),
                        node.name
                    )))
                }
            }
        }
        // Children until the matching close tag.
        loop {
            self.skip_ws_and_text();
            if self.peek().is_none() {
                return Err(self.err(format!("unexpected EOF inside <{}>", node.name)));
            }
            if self.starts_with("<!--") {
                self.consume("<!--");
                self.skip_comment()?;
                continue;
            }
            if self.starts_with("</") {
                self.consume("</");
                let close = self.read_name()?;
                self.skip_spaces();
                if self.bump() != Some(b'>') {
                    return Err(self.err("expected '>' in closing tag"));
                }
                if close != node.name {
                    return Err(self.err(format!(
                        "mismatched closing tag: expected </{}>, found </{close}>",
                        node.name
                    )));
                }
                return Ok(node);
            }
            node.children.push(self.parse_element()?);
        }
    }
}

/// Parses a document into its top-level elements (comments and whitespace
/// between them are skipped; an XML declaration is tolerated).
///
/// # Errors
///
/// [`ModelError::Parse`] with a line number on any syntax error.
pub fn parse_document(input: &str) -> Result<Vec<XmlNode>> {
    let mut lexer = Lexer::new(input);
    let mut nodes = Vec::new();
    loop {
        lexer.skip_ws_and_text();
        if lexer.peek().is_none() {
            return Ok(nodes);
        }
        if lexer.starts_with("<!--") {
            lexer.consume("<!--");
            lexer.skip_comment()?;
            continue;
        }
        if lexer.starts_with("<?") {
            // Skip processing instruction.
            while let Some(c) = lexer.bump() {
                if c == b'>' {
                    break;
                }
            }
            continue;
        }
        nodes.push(lexer.parse_element()?);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements_and_attributes() {
        let doc = r#"
            <!-- a comment -->
            <A name="outer">
              <B x="1" y="two" />
              <C><D deep="yes"/></C>
            </A>
        "#;
        let nodes = parse_document(doc).unwrap();
        assert_eq!(nodes.len(), 1);
        let a = &nodes[0];
        assert_eq!(a.name, "A");
        assert_eq!(a.get("name"), Some("outer"));
        assert_eq!(a.children.len(), 2);
        assert_eq!(a.first_child("B").unwrap().get("y"), Some("two"));
        assert_eq!(
            a.first_child("C")
                .unwrap()
                .first_child("D")
                .unwrap()
                .get("deep"),
            Some("yes")
        );
    }

    #[test]
    fn multiple_top_level_elements() {
        let nodes = parse_document(r#"<A/><B/><C a="b"/>"#).unwrap();
        assert_eq!(nodes.len(), 3);
    }

    #[test]
    fn entities_roundtrip() {
        let node = XmlNode::new("E").attr("v", "a<b&\"c\"");
        let mut out = String::new();
        write_node(&node, 0, &mut out);
        assert!(out.contains("&lt;"));
        let back = parse_document(&out).unwrap();
        assert_eq!(back[0].get("v"), Some("a<b&\"c\""));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let doc = "<A>\n<B>\n</A>";
        let err = parse_document(doc).unwrap_err();
        match err {
            ModelError::Parse { line, detail } => {
                assert_eq!(line, 3, "{detail}");
                assert!(detail.contains("mismatched"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unterminated_inputs_fail() {
        assert!(parse_document("<A").is_err());
        assert!(parse_document("<A attr=>").is_err());
        assert!(parse_document("<A attr=\"x>").is_err());
        assert!(parse_document("<!-- never closed").is_err());
        assert!(parse_document("<A><B></B>").is_err());
    }

    #[test]
    fn comments_inside_elements() {
        let doc = "<A><!-- note --><B/></A>";
        let nodes = parse_document(doc).unwrap();
        assert_eq!(nodes[0].children.len(), 1);
    }

    #[test]
    fn write_format_is_stable() {
        let node = XmlNode::new("Root")
            .attr("name", "n")
            .child(XmlNode::new("Leaf").attr("k", "v"));
        let mut out = String::new();
        write_node(&node, 0, &mut out);
        assert_eq!(out, "<Root name=\"n\">\n  <Leaf k=\"v\" />\n</Root>\n");
    }
}
