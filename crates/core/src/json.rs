//! A small hand-written JSON layer, in the same spirit as the hand-written
//! XML dialect in [`crate::adl::xml`].
//!
//! The build environment carries no external serialization crates, so the
//! ADL's JSON form ([`crate::adl::to_json`] / [`crate::adl::from_json`]) is
//! implemented over this module. It supports the JSON subset the ADL
//! schema needs: objects, arrays, strings, booleans, `null` and (signed)
//! integers — fractional and exponent number forms are rejected.

use std::fmt::Write as _;

use crate::ModelError;

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the ADL schema uses no fractional numbers).
    Number(i128),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The string payload, for string nodes.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, for number nodes.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, when it fits.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i128().and_then(|n| u64::try_from(n).ok())
    }

    /// The number as a `usize`, when it fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_i128().and_then(|n| usize::try_from(n).ok())
    }

    /// The number as a `u32`, when it fits.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_i128().and_then(|n| u32::try_from(n).ok())
    }

    /// The number as a `u8`, when it fits.
    pub fn as_u8(&self) -> Option<u8> {
        self.as_i128().and_then(|n| u8::try_from(n).ok())
    }

    /// The element list, for array nodes.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, for object nodes.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Looks up a member of an object node.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// True for `null` nodes.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::String(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(key, out);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts; deeper documents are
/// refused with a parse error instead of overflowing the stack.
const MAX_DEPTH: usize = 128;

/// Parses a JSON document (the subset described in the module docs).
///
/// # Errors
///
/// [`ModelError::Parse`] with the 1-based line of the failure (0 for
/// semantic failures with no source position).
pub fn parse(text: &str) -> crate::Result<JsonValue> {
    let mut parser = Parser {
        chars: text.chars().collect(),
        pos: 0,
        line: 1,
        depth: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.chars.len() {
        return Err(parser.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    depth: usize,
}

impl Parser {
    fn error(&self, detail: impl Into<String>) -> ModelError {
        ModelError::Parse {
            line: self.line,
            detail: detail.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, c: char) -> crate::Result<()> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            Some(got) => Err(self.error(format!("expected '{c}', found '{got}'"))),
            None => Err(self.error(format!("expected '{c}', found end of input"))),
        }
    }

    fn keyword(&mut self, word: &str, value: JsonValue) -> crate::Result<JsonValue> {
        for expected in word.chars() {
            match self.bump() {
                Some(got) if got == expected => {}
                _ => return Err(self.error(format!("malformed literal (expected '{word}')"))),
            }
        }
        Ok(value)
    }

    fn value(&mut self) -> crate::Result<JsonValue> {
        match self.peek() {
            Some('{') => self.nested(Self::object),
            Some('[') => self.nested(Self::array),
            Some('"') => Ok(JsonValue::String(self.string()?)),
            Some('t') => self.keyword("true", JsonValue::Bool(true)),
            Some('f') => self.keyword("false", JsonValue::Bool(false)),
            Some('n') => self.keyword("null", JsonValue::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected character '{c}'"))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn nested(
        &mut self,
        f: impl FnOnce(&mut Self) -> crate::Result<JsonValue>,
    ) -> crate::Result<JsonValue> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error(format!("nesting exceeds {MAX_DEPTH} levels")));
        }
        self.depth += 1;
        let value = f(self);
        self.depth -= 1;
        value
    }

    fn object(&mut self) -> crate::Result<JsonValue> {
        self.expect('{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(',') => {}
                Some('}') => return Ok(JsonValue::Object(members)),
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> crate::Result<JsonValue> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => {}
                Some(']') => return Ok(JsonValue::Array(items)),
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> crate::Result<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let unit = self.hex4()?;
                        let scalar = if (0xD800..0xDC00).contains(&unit) {
                            // High surrogate: a \uXXXX low surrogate must follow.
                            if self.bump() != Some('\\') || self.bump() != Some('u') {
                                return Err(self.error("unpaired surrogate escape"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.error("invalid low surrogate"));
                            }
                            0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            unit
                        };
                        match char::from_u32(scalar) {
                            Some(c) => out.push(c),
                            None => return Err(self.error("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.error("unknown escape sequence")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> crate::Result<u32> {
        let mut value = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| self.error("truncated unicode escape"))?;
            let digit = c
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit in unicode escape"))?;
            value = value * 16 + digit;
        }
        Ok(value)
    }

    fn number(&mut self) -> crate::Result<JsonValue> {
        let mut text = String::new();
        if self.peek() == Some('-') {
            text.push(self.bump().expect("peeked"));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            text.push(self.bump().expect("peeked"));
        }
        if matches!(self.peek(), Some('.' | 'e' | 'E')) {
            return Err(self.error("fractional numbers are not part of the ADL JSON subset"));
        }
        text.parse::<i128>()
            .map(JsonValue::Number)
            .map_err(|_| self.error(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let value = JsonValue::Object(vec![
            ("name".into(), JsonValue::from("quote \" backslash \\")),
            ("count".into(), JsonValue::Number(-42)),
            (
                "items".into(),
                JsonValue::Array(vec![
                    JsonValue::Null,
                    JsonValue::Bool(true),
                    JsonValue::from("tab\there"),
                ]),
            ),
            ("empty_arr".into(), JsonValue::Array(vec![])),
            ("empty_obj".into(), JsonValue::Object(vec![])),
        ]);
        let text = value.to_pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse("{\n  \"a\": 1,\n  oops\n}").unwrap_err();
        match err {
            ModelError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"s": "x", "n": 7, "a": [1, 2], "b": false, "z": null}"#).unwrap();
        assert_eq!(doc.get("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(doc.get("n").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(
            doc.get("a").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(2)
        );
        assert!(doc.get("z").is_some_and(JsonValue::is_null));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn unicode_escapes() {
        // \u0041 = 'A'; \ud83d\ude00 is the surrogate pair for U+1F600.
        let doc = parse(r#""\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(doc.as_str(), Some("A\u{1F600}"));
        assert!(parse(r#""\ud83d oops""#).is_err());
    }

    #[test]
    fn rejects_fractions_and_garbage() {
        assert!(parse("1.5").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("true false").is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(200_000) + &"]".repeat(200_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        // Reasonable depth still parses.
        let ok = "[".repeat(MAX_DEPTH - 1) + &"]".repeat(MAX_DEPTH - 1);
        assert!(parse(&ok).is_ok());
    }
}
