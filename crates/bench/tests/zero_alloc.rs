//! The zero-allocation steady-state gate.
//!
//! The paper's evaluation rests on the claim that generated systems
//! provision all memory at initialization and never allocate in steady
//! state — that is what makes them GC-immune and their latency
//! deterministic. This test makes the claim falsifiable at the Rust-heap
//! level: a counting global allocator observes complete end-to-end
//! transactions of the motivation scenario and requires **zero**
//! allocations per steady-state transaction in every generation mode, and
//! the substrate's own allocation counter must stay pinned at its
//! bootstrap value.
//!
//! Run in release (CI's `bench-smoke` job does):
//! `cargo test -p soleil-bench --release --test zero_alloc`

#[path = "../src/alloc_probe.rs"]
mod alloc_probe;

use soleil::generator::{deploy, deploy_parallel};
use soleil::prelude::*;
use soleil::scenario::{motivation_validated, registry_with_probe, OoSystem, ScenarioProbe};

const WARMUP: usize = 500;
const OBSERVATIONS: u64 = 2_000;
/// Checkpoint cadence for the gates: captures land every 500 activations.
const CADENCE: u32 = 500;

#[test]
fn steady_state_transactions_never_touch_the_rust_heap() {
    let arch = motivation_validated().expect("fixture validates");
    for mode in [Mode::Soleil, Mode::MergeAll, Mode::UltraMerge] {
        let probe = ScenarioProbe::new();
        let mut dep = deploy(&arch, mode, &registry_with_probe(&probe)).expect("deploys");
        let head = dep.resolve("ProductionLine").expect("head exists");

        // The claim must hold for the *monitored* hot path too: a deadline
        // contract records every transaction into its preallocated
        // histogram and an armed-but-never-due release keeps the timer
        // queue live throughout the measured run.
        dep.attach_contract(head, soleil_bench::baseline_contract())
            .expect("contract attaches in every mode");
        dep.schedule_release(head, AbsoluteTime::MAX)
            .expect("release arms");

        // Supervision must be free on the healthy path: the head carries a
        // restart policy and an idle (rate-0) fault injector compiled into
        // its activation plan, and a downstream component is isolated —
        // none of which may cost an allocation per transaction.
        dep.set_fault_policy(
            head,
            FaultPolicy::Restart {
                max_restarts: 3,
                window: RelativeTime::from_millis(1_000),
                backoff: RelativeTime::from_millis(1),
            },
        )
        .expect("policy attaches");
        dep.install_fault_injector(head, FaultInjector::new("ProductionLine", 0xC0FFEE, 0))
            .expect("idle injector installs");
        let monitoring = dep.resolve("MonitoringSystem").expect("monitor exists");
        dep.set_fault_policy(monitoring, FaultPolicy::Isolate)
            .expect("policy attaches");

        // The full robustness apparatus rides along: a supervision tree
        // above the head and the warm-state Checkpoint capability on it,
        // capturing into its preallocated image every CADENCE activations.
        // Neither may cost the healthy path an allocation.
        let audit = dep.resolve("AuditLog").expect("audit exists");
        dep.set_supervisor(head, Some(monitoring))
            .expect("edge attaches in every mode");
        dep.set_supervisor(monitoring, Some(audit))
            .expect("edge attaches in every mode");
        dep.enable_checkpoint(head, CADENCE)
            .expect("capability enables in every mode");

        // Warm every lazily-grown engine structure: the pending-message
        // heap, domain scope stacks, ring slots.
        for _ in 0..WARMUP {
            dep.run_transaction(head).expect("warmup transaction");
        }

        let substrate_before = dep.memory().alloc_count();
        let heap_before = alloc_probe::allocations();
        let compares_before = dep.string_compares();
        let arcs_before = dep.arc_clones();
        for _ in 0..OBSERVATIONS {
            dep.run_transaction(head).expect("steady transaction");
        }
        let heap_allocs = alloc_probe::allocations() - heap_before;

        assert_eq!(
            heap_allocs, 0,
            "{mode}: {OBSERVATIONS} steady-state transactions performed \
             {heap_allocs} Rust-heap allocations; the steady state must not allocate"
        );
        assert_eq!(
            dep.memory().alloc_count(),
            substrate_before,
            "{mode}: substrate allocations must stay pinned at their bootstrap value"
        );
        // The compiled dispatch plan: once warm-up has interned the port
        // ids, steady-state transactions scan no strings and clone no Arcs.
        assert_eq!(
            dep.string_compares() - compares_before,
            0,
            "{mode}: steady-state dispatch must not compare port names"
        );
        assert_eq!(
            dep.arc_clones() - arcs_before,
            0,
            "{mode}: steady-state dispatch must not clone Arcs"
        );
        // The release engine stayed live the whole run without disturbing
        // the counters above — and the generous contract never missed.
        assert_eq!(dep.armed_timers(), 1, "{mode}: release must stay armed");
        assert_eq!(
            dep.deadline_misses(),
            0,
            "{mode}: the baseline contract must never miss"
        );
        let snapshot = dep
            .latency_snapshot(head)
            .expect("head resolves")
            .expect("contract attached");
        assert_eq!(
            snapshot.activations,
            WARMUP as u64 + OBSERVATIONS,
            "{mode}: every transaction lands in the histogram"
        );
        // The idle injector saw every activation and fired on none; the
        // supervisor never moved.
        let (seen, injected) = dep
            .injector_counts(head)
            .expect("head resolves")
            .expect("injector installed");
        assert_eq!(seen, WARMUP as u64 + OBSERVATIONS, "{mode}: injector armed");
        assert_eq!(injected, 0, "{mode}: idle injector must never fire");
        assert!(!dep.quarantined(head).expect("head resolves"));
        assert_eq!(
            dep.supervision_counts(head).expect("head resolves"),
            (0, 0, 0),
            "{mode}: supervision counters must stay untouched on the healthy path"
        );
        // Captures happened exactly on the cadence (plus the one probing
        // capture at enable time), and nothing was ever restored.
        let total = WARMUP as u64 + OBSERVATIONS;
        assert_eq!(
            dep.checkpoint_counts(head)
                .expect("head resolves")
                .expect("capability enabled"),
            (1 + total / CADENCE as u64, 0),
            "{mode}: the checkpoint must capture only on its cadence"
        );
    }
}

/// The parallel mode obeys the same discipline on *every* shard thread:
/// the motivation scenario sharded by thread domain performs zero
/// Rust-heap and zero substrate allocations per steady-state tick, while
/// demonstrably ticking distinct domains on distinct OS threads.
#[test]
fn parallel_steady_state_is_allocation_free_on_every_thread() {
    let arch = motivation_validated().expect("fixture validates");
    let probe = ScenarioProbe::new();
    let mut sys =
        deploy_parallel(&arch, Mode::MergeAll, &registry_with_probe(&probe)).expect("deploys");
    assert!(
        sys.shard_count() >= 2,
        "motivation scenario must shard: got {}",
        sys.shard_count()
    );

    // Same monitored-hot-path discipline as the serial gate: contract on
    // the head's shard, release armed but never due.
    sys.attach_contract("ProductionLine", soleil_bench::baseline_contract())
        .expect("contract attaches");
    sys.schedule_release("ProductionLine", AbsoluteTime::MAX)
        .expect("release arms");

    // Parallel shards pay the same nothing for supervision: restart policy
    // plus idle injector on the head's shard, isolation on a sibling shard.
    sys.set_fault_policy(
        "ProductionLine",
        FaultPolicy::Restart {
            max_restarts: 3,
            window: RelativeTime::from_millis(1_000),
            backoff: RelativeTime::from_millis(1),
        },
    )
    .expect("policy attaches");
    sys.install_fault_injector(
        "ProductionLine",
        FaultInjector::new("ProductionLine", 0xC0FFEE, 0),
    )
    .expect("idle injector installs");
    sys.set_fault_policy("MonitoringSystem", FaultPolicy::Isolate)
        .expect("policy attaches");

    // Supervision trees are shard-local by design — escalation must never
    // block on another shard's thread — and every active component of the
    // motivation scenario owns its domain, so the cross-shard edge is
    // refused (the recorded limit) while the warm-state Checkpoint
    // capability, being per-component, arms fine on the head's shard.
    let err = sys
        .set_supervisor("ProductionLine", Some("MonitoringSystem"))
        .expect_err("cross-shard supervisor edges are refused");
    assert!(
        err.to_string().contains("shard"),
        "refusal must name the shard boundary: {err}"
    );
    sys.enable_checkpoint("ProductionLine", CADENCE)
        .expect("capability enables on the shard");

    // Warm up separately so the dispatch-counter deltas below cover only
    // the measured steady phase (interning pays its name scans here).
    sys.run_ticks(WARMUP as u64).expect("parallel warmup");
    let compares_before = sys.string_compares();
    let arcs_before = sys.arc_clones();
    let runs = sys
        .run_ticks_instrumented(0, OBSERVATIONS, &alloc_probe::allocations)
        .expect("parallel run");

    // Distinct OS threads, none of them this one.
    let mut threads: Vec<_> = runs.iter().map(|r| format!("{:?}", r.thread)).collect();
    threads.sort();
    threads.dedup();
    assert_eq!(threads.len(), runs.len(), "every shard on its own thread");
    assert!(runs.iter().all(|r| r.thread != std::thread::current().id()));

    for r in &runs {
        assert_eq!(
            r.probe_delta, 0,
            "shard '{}': {OBSERVATIONS} steady-state ticks performed {} Rust-heap \
             allocations on its thread; the steady state must not allocate",
            r.label, r.probe_delta
        );
        assert_eq!(
            r.substrate_allocs, 0,
            "shard '{}': substrate allocations must stay pinned at their bootstrap value",
            r.label
        );
    }
    assert_eq!(
        sys.string_compares() - compares_before,
        0,
        "parallel steady-state dispatch must not compare port names on any shard"
    );
    assert_eq!(
        sys.arc_clones() - arcs_before,
        0,
        "parallel steady-state dispatch must not clone Arcs on any shard"
    );
    assert_eq!(sys.armed_timers(), 1, "release must stay armed");
    assert_eq!(
        sys.deadline_misses(),
        0,
        "the baseline contract must never miss on any shard"
    );
    let (seen, injected) = sys
        .injector_counts("ProductionLine")
        .expect("head resolves")
        .expect("injector installed");
    assert_eq!(seen, WARMUP as u64 + OBSERVATIONS, "injector armed");
    assert_eq!(injected, 0, "idle injector must never fire");
    assert_eq!(
        sys.supervision_counts("ProductionLine").expect("resolves"),
        (0, 0, 0),
        "supervision counters must stay untouched on the healthy parallel path"
    );
    assert_eq!(
        sys.checkpoint_counts("ProductionLine")
            .expect("resolves")
            .expect("capability enabled"),
        (1 + (WARMUP as u64 + OBSERVATIONS) / CADENCE as u64, 0),
        "the parallel checkpoint must capture only on its cadence"
    );
}

#[test]
fn oo_baseline_is_equally_allocation_free() {
    // The comparison in Fig. 7 is only fair if the hand-written baseline
    // obeys the same discipline.
    let probe = ScenarioProbe::new();
    let mut oo = OoSystem::new(&probe).expect("baseline builds");
    for _ in 0..WARMUP {
        oo.run_transaction().expect("warmup transaction");
    }
    let before = alloc_probe::allocations();
    for _ in 0..OBSERVATIONS {
        oo.run_transaction().expect("steady transaction");
    }
    assert_eq!(alloc_probe::allocations() - before, 0);
}
