//! Reconfiguration-churn bench: the cost of a transactional rebind cycle
//! under live traffic, per generation mode.
//!
//! Each iteration flips a synchronous client port between two equivalent
//! services inside one `reconfigure` transaction (stop → rebind → start),
//! paying the full transactional machinery: undo journaling, the
//! architectural edit, and commit-time RTSJ re-validation. SOLEIL routes
//! the rebind through the reified membrane's BindingController; MERGE-ALL
//! patches the compiled slot. This seeds the perf trajectory for the
//! multi-deployment/scale direction — reconfiguration is the control-plane
//! hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use soleil::prelude::*;

#[derive(Debug, Default)]
struct Caller;
impl Content<u64> for Caller {
    fn on_invoke(&mut self, _p: &str, msg: &mut u64, out: &mut dyn Ports<u64>) -> InvokeResult {
        out.call("svc", msg)
    }
}

#[derive(Debug, Default)]
struct Svc;
impl Content<u64> for Svc {
    fn on_invoke(&mut self, _p: &str, msg: &mut u64, _o: &mut dyn Ports<u64>) -> InvokeResult {
        *msg += 1;
        Ok(())
    }
}

fn fixture(mode: Mode) -> Deployment<u64> {
    let mut b = BusinessView::new("churn");
    b.active_periodic("caller", "5ms").expect("design");
    b.passive("svc-a").expect("design");
    b.passive("svc-b").expect("design");
    b.content("caller", "Caller").expect("design");
    b.content("svc-a", "Svc").expect("design");
    b.content("svc-b", "Svc").expect("design");
    b.require("caller", "svc", "ISvc").expect("design");
    b.provide("svc-a", "svc", "ISvc").expect("design");
    b.provide("svc-b", "svc", "ISvc").expect("design");
    b.bind_sync("caller", "svc", "svc-a", "svc")
        .expect("design");
    let mut flow = DesignFlow::new(b);
    flow.thread_domain("rt", ThreadKind::Realtime, 22, &["caller"])
        .expect("design");
    flow.memory_area(
        "imm",
        MemoryKind::Immortal,
        Some(64 * 1024),
        &["rt", "svc-a", "svc-b"],
    )
    .expect("design");
    let arch = flow
        .merge()
        .expect("merges")
        .into_validated()
        .expect("valid");
    deploy(&arch, mode, &{
        let mut r: ContentRegistry<u64> = ContentRegistry::new();
        r.register("Caller", || Box::new(Caller));
        r.register("Svc", || Box::new(Svc));
        r
    })
    .expect("deploys")
}

fn bench_reconfig_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconfig_churn");
    for mode in [Mode::Soleil, Mode::MergeAll] {
        let mut dep = fixture(mode);
        let caller = dep.resolve("caller").expect("caller");
        let a = dep.resolve("svc-a").expect("svc-a");
        let b = dep.resolve("svc-b").expect("svc-b");
        let mut target_b = true;
        group.bench_function(format!("{mode}/rebind_txn"), |bench| {
            bench.iter(|| {
                let target = if target_b { b } else { a };
                target_b = !target_b;
                dep.reconfigure(|txn| {
                    txn.stop(caller)?;
                    txn.rebind(caller, "svc", target)?;
                    txn.start(caller)
                })
                .expect("transaction commits");
                // Keep traffic flowing between churns so rebinds hit a
                // live, running engine.
                dep.run_transaction(caller).expect("transaction");
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reconfig_churn);
criterion_main!(benches);
