//! Microbench: the release engine's primitives.
//!
//! Three costs matter for the real-time story: arming and disarming a
//! release on the preallocated timer queue (steady-state churn), the full
//! arm→due→fire cycle, and the contract monitor's histogram record. The
//! `monitored_transaction` group then measures the end-to-end price a
//! transaction pays when a deadline contract is attached vs. the bare
//! engine — the "zero cost when unused, one branch when armed" claim,
//! measured rather than asserted.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use rtsj::thread::Priority;
use soleil::generator::deploy;
use soleil::membrane::monitor::LatencyMonitor;
use soleil::prelude::*;
use soleil::scenario::{motivation_validated, registry};

fn bench_timer_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("timer_queue");

    // Arm/disarm churn against a warm, half-full queue: the backlog keeps
    // the heap honest (every schedule sifts past it), the cancel exercises
    // the generation check.
    group.bench_function("schedule_cancel", |b| {
        let mut q: TimerQueue<u32> = TimerQueue::with_capacity(64);
        for _ in 0..32 {
            q.schedule(AbsoluteTime::MAX, Priority::new(20), 0)
                .expect("backlog arms");
        }
        b.iter(|| {
            let h = q
                .schedule(AbsoluteTime::from_nanos(100), Priority::new(25), 1)
                .expect("arms");
            assert!(q.cancel(h));
        });
    });

    // The full release cycle: arm, come due, fire.
    group.bench_function("schedule_fire", |b| {
        let mut q: TimerQueue<u32> = TimerQueue::with_capacity(64);
        for _ in 0..32 {
            q.schedule(AbsoluteTime::MAX, Priority::new(20), 0)
                .expect("backlog arms");
        }
        b.iter(|| {
            q.schedule(AbsoluteTime::from_nanos(100), Priority::new(25), 1)
                .expect("arms");
            let fired = q
                .pop_due(AbsoluteTime::from_nanos(100))
                .expect("timer is due");
            criterion::black_box(fired.handle);
        });
    });

    // One histogram record: bucket index + deadline compare + jitter
    // update, no allocation.
    group.bench_function("histogram_record", |b| {
        let mut monitor = LatencyMonitor::new(Some(500_000_000), None);
        let mut latency = 1_000u64;
        b.iter(|| {
            latency = latency
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407)
                % 1_000_000;
            monitor.observe(Instant::now(), latency);
        });
    });

    group.finish();
}

fn bench_monitored_transaction(c: &mut Criterion) {
    let arch = motivation_validated().expect("fixture validates");
    let mut group = c.benchmark_group("monitored_transaction");
    for (label, monitored) in [("bare", false), ("contract", true)] {
        let mut sys = deploy(&arch, Mode::MergeAll, &registry()).expect("deploys");
        let head = sys.resolve("ProductionLine").expect("head");
        if monitored {
            sys.attach_contract(
                head,
                TimingContract::new().with_deadline(RelativeTime::from_millis(500)),
            )
            .expect("contract attaches");
        }
        group.bench_function(label, |b| {
            b.iter(|| sys.run_transaction(head).expect("transaction"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_timer_queue, bench_monitored_transaction);
criterion_main!(benches);
