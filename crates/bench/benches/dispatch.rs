//! Microbench: compiled (interned) dispatch vs. the string-scan fallback.
//!
//! The tentpole claim of the static dispatch plan: once client ports are
//! interned into dense ids, a steady-state transaction dispatches through
//! the `[slot][port_id]` jump table — no per-call name scan, no `Arc`
//! traffic. This bench runs the motivation scenario twice per mode, once
//! with the scenario's interned contents and once with a string-dispatch
//! clone of them, so the per-transaction delta *is* the dispatch cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soleil::generator::deploy;
use soleil::prelude::*;
use soleil::scenario::{
    busy_work, motivation_validated, registry, work, AuditLogImpl, ConsoleImpl, Measurement,
};

/// `ProductionLineImpl` as it looked before interning: every send pays a
/// name scan against the deployment's binding table.
#[derive(Debug, Default)]
struct StringProductionLine {
    seq: u64,
}

impl Content<Measurement> for StringProductionLine {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Measurement,
        out: &mut dyn Ports<Measurement>,
    ) -> InvokeResult {
        self.seq += 1;
        msg.seq = self.seq;
        msg.value = busy_work(work::PRODUCTION, self.seq as f64);
        msg.anomalous = self.seq.is_multiple_of(work::ANOMALY_EVERY);
        out.send("iMonitor", *msg)
    }
}

/// `MonitoringSystemImpl`, string-dispatch variant.
#[derive(Debug, Default)]
struct StringMonitoring;

impl Content<Measurement> for StringMonitoring {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Measurement,
        out: &mut dyn Ports<Measurement>,
    ) -> InvokeResult {
        msg.value = busy_work(work::MONITORING, msg.value);
        if msg.anomalous {
            out.call("iConsole", msg)?;
        }
        out.send("iAudit", *msg)
    }
}

fn string_registry() -> ContentRegistry<Measurement> {
    let mut r = ContentRegistry::new();
    r.register("ProductionLineImpl", || {
        Box::new(StringProductionLine::default())
    });
    r.register("MonitoringSystemImpl", || Box::new(StringMonitoring));
    r.register("ConsoleImpl", || Box::new(ConsoleImpl::default()));
    r.register("AuditLogImpl", || Box::new(AuditLogImpl::default()));
    r
}

fn bench_dispatch(c: &mut Criterion) {
    let arch = motivation_validated().expect("fixture validates");
    let mut group = c.benchmark_group("dispatch");
    for mode in [Mode::Soleil, Mode::MergeAll, Mode::UltraMerge] {
        let mut sys = deploy(&arch, mode, &registry()).expect("deploys");
        let head = sys.resolve("ProductionLine").expect("head");
        group.bench_with_input(
            BenchmarkId::new("interned", mode.to_string()),
            &mode,
            |b, _| {
                b.iter(|| sys.run_transaction(head).expect("transaction"));
            },
        );

        let mut sys = deploy(&arch, mode, &string_registry()).expect("deploys");
        let head = sys.resolve("ProductionLine").expect("head");
        group.bench_with_input(
            BenchmarkId::new("string_scan", mode.to_string()),
            &mode,
            |b, _| {
                b.iter(|| sys.run_transaction(head).expect("transaction"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
