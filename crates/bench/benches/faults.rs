//! Microbench: the price of supervision.
//!
//! The fault-containment design claims the healthy path pays a single
//! integer compare for the whole supervision apparatus: the activation
//! plan folds "is this component quarantined, does it carry an injector"
//! into `u16` sentinels checked once per activation, and the policy
//! itself is only read after a fault. The `supervised_transaction` group
//! measures that claim end-to-end — a bare transaction vs. one with a
//! restart policy attached vs. one with policy *and* an idle (rate-0)
//! injector compiled into the plan vs. one whose head additionally sits
//! in a supervision tree with the Checkpoint capability capturing at
//! every activation; all four must be indistinguishable.
//! The `quarantine_drop` function prices the unhealthy path: a
//! transaction whose downstream consumer is quarantined count-drops the
//! message at the gate instead of activating it.

use criterion::{criterion_group, criterion_main, Criterion};
use soleil::generator::deploy;
use soleil::prelude::*;
use soleil::scenario::{motivation_validated, registry};

fn bench_supervised_transaction(c: &mut Criterion) {
    let arch = motivation_validated().expect("fixture validates");
    let mut group = c.benchmark_group("supervised_transaction");
    for (label, policy, injector, checkpoint) in [
        ("bare", false, false, false),
        ("policy", true, false, false),
        ("policy_idle_injector", true, true, false),
        ("policy_checkpoint", true, false, true),
    ] {
        let mut sys = deploy(&arch, Mode::MergeAll, &registry()).expect("deploys");
        let head = sys.resolve("ProductionLine").expect("head");
        if policy {
            sys.set_fault_policy(
                head,
                FaultPolicy::Restart {
                    max_restarts: 3,
                    window: RelativeTime::from_millis(1_000),
                    backoff: RelativeTime::from_millis(1),
                },
            )
            .expect("policy attaches");
            let monitor = sys.resolve("MonitoringSystem").expect("monitor");
            sys.set_fault_policy(monitor, FaultPolicy::Isolate)
                .expect("policy attaches");
        }
        if injector {
            sys.install_fault_injector(head, FaultInjector::new("ProductionLine", 0xC0FFEE, 0))
                .expect("idle injector installs");
        }
        if checkpoint {
            // Worst case for the healthy path: a supervision tree above
            // the head plus a cadence-1 checkpoint capturing the head's
            // warm state into its preallocated image on every activation.
            let monitor = sys.resolve("MonitoringSystem").expect("monitor");
            let audit = sys.resolve("AuditLog").expect("audit");
            sys.set_supervisor(head, Some(monitor)).expect("edge");
            sys.set_supervisor(monitor, Some(audit)).expect("edge");
            sys.enable_checkpoint(head, 1).expect("capability enables");
        }
        group.bench_function(label, |b| {
            b.iter(|| sys.run_transaction(head).expect("transaction"));
        });
    }
    group.finish();
}

fn bench_quarantine_drop(c: &mut Criterion) {
    let arch = motivation_validated().expect("fixture validates");
    let mut sys = deploy(&arch, Mode::MergeAll, &registry()).expect("deploys");
    let head = sys.resolve("ProductionLine").expect("head");
    let monitor = sys.resolve("MonitoringSystem").expect("monitor");
    sys.set_fault_policy(monitor, FaultPolicy::Isolate)
        .expect("policy attaches");
    // One injected fault quarantines the monitor; every transaction after
    // that count-drops its measurement at the quarantine gate.
    sys.install_fault_injector(
        monitor,
        FaultInjector::new("MonitoringSystem", 1, 1).with_menu(FaultInjector::MENU_ERROR),
    )
    .expect("injector installs");
    sys.run_transaction(head).expect("containment");
    assert!(sys.quarantined(monitor).expect("resolves"));
    sys.remove_fault_injector(monitor).expect("removes");

    c.bench_function("quarantine_drop_transaction", |b| {
        b.iter(|| sys.run_transaction(head).expect("transaction"));
    });
}

criterion_group!(benches, bench_supervised_transaction, bench_quarantine_drop);
criterion_main!(benches);
