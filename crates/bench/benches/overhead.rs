//! Criterion benches for Fig. 7(a)/(b): one end-to-end transaction of the
//! motivation scenario per implementation (OO baseline + the three
//! generation modes). The paper's claim to check: SOLEIL ≈ a few percent
//! above OO, MERGE-ALL between, ULTRA-MERGE on par with (or below) OO.

use criterion::{criterion_group, criterion_main, Criterion};
use soleil::prelude::*;
use soleil::scenario::{motivation_validated, registry_with_probe, OoSystem, ScenarioProbe};

fn bench_transaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_transaction");

    let probe = ScenarioProbe::new();
    let mut oo = OoSystem::new(&probe).expect("OO baseline builds");
    group.bench_function("OO", |b| {
        b.iter(|| oo.run_transaction().expect("transaction"));
    });

    let arch = motivation_validated().expect("fixture validates");
    for mode in [Mode::Soleil, Mode::MergeAll, Mode::UltraMerge] {
        let probe = ScenarioProbe::new();
        let mut sys = deploy(&arch, mode, &registry_with_probe(&probe)).expect("system deploys");
        let head = sys.resolve("ProductionLine").expect("head exists");
        group.bench_function(mode.to_string(), |b| {
            b.iter(|| sys.run_transaction(head).expect("transaction"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transaction);
criterion_main!(benches);
