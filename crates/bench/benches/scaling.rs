//! Ablation: how framework overhead scales with pipeline depth.
//!
//! DESIGN.md's design-choice question: the SOLEIL membrane cost is
//! per-invocation, so a transaction through an N-stage pipeline pays it N
//! times — the gap to ULTRA-MERGE should widen linearly with N while both
//! stay linear overall.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soleil::prelude::*;
use soleil_bench::build_relay_pipeline;

fn bench_pipeline_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_depth");
    for stages in [1usize, 4, 16] {
        for mode in [Mode::Soleil, Mode::MergeAll, Mode::UltraMerge] {
            let mut sys = build_relay_pipeline(stages, mode).expect("pipeline builds");
            let head = sys.resolve("stage0").expect("head");
            group.bench_with_input(
                BenchmarkId::new(mode.to_string(), stages),
                &stages,
                |b, _| {
                    b.iter(|| sys.run_transaction(head).expect("transaction"));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_depth);
criterion_main!(benches);
