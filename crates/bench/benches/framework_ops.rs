//! Ablation micro-benches for the framework's design choices (DESIGN.md):
//! the costs behind the end-to-end numbers — design-time validation, ADL
//! parsing, compilation, full generation per mode, and the substrate
//! operations the memory interceptors execute per crossing.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rtsj::memory::{MemoryManager, ScopedMemoryParams};
use rtsj::thread::ThreadKind;
use soleil::core::adl::{from_xml, MOTIVATION_EXAMPLE_XML};
use soleil::generator::{compile, generate};
use soleil::prelude::*;
use soleil::scenario::{motivation_architecture, motivation_validated, registry};

fn bench_design_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("design_time");
    group.bench_function("adl_parse", |b| {
        b.iter(|| from_xml(MOTIVATION_EXAMPLE_XML).expect("parses"));
    });
    let arch = motivation_architecture().expect("fixture parses");
    group.bench_function("validate", |b| {
        b.iter(|| validate(&arch));
    });
    group.bench_function("validate_into", |b| {
        b.iter(|| arch.clone().into_validated().expect("compliant"));
    });
    let validated = motivation_validated().expect("fixture validates");
    group.bench_function("compile", |b| {
        b.iter(|| compile(&validated).expect("compiles"));
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_and_bootstrap");
    let arch = motivation_validated().expect("fixture validates");
    for mode in [Mode::Soleil, Mode::MergeAll, Mode::UltraMerge] {
        group.bench_function(mode.to_string(), |b| {
            b.iter_batched(
                registry,
                |reg| generate(&arch, mode, &reg).expect("builds"),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_substrate_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_ops");

    let mut mm = MemoryManager::new(0, 1 << 20);
    let scope = mm
        .create_scoped(ScopedMemoryParams::new("s", 64 * 1024))
        .expect("scope");
    let mut ctx = mm.context(ThreadKind::Realtime);
    group.bench_function("scope_enter_exit", |b| {
        b.iter(|| {
            mm.enter(&mut ctx, scope).expect("enter");
            mm.exit(&mut ctx).expect("exit");
        });
    });

    let ctx2 = mm.context(ThreadKind::Realtime);
    let handle = mm
        .alloc(&ctx2, rtsj::memory::AreaId::IMMORTAL, 7u64)
        .expect("alloc");
    group.bench_function("handle_deref", |b| {
        b.iter(|| *mm.get(&ctx2, handle).expect("valid handle"));
    });

    group.bench_function("assignment_check", |b| {
        b.iter(|| {
            mm.check_assignment(rtsj::memory::AreaId::IMMORTAL, rtsj::memory::AreaId::HEAP)
                .expect("legal")
        });
    });

    // Slab alloc/free cycle: slot reuse through the free list — the path
    // that used to box every stored object.
    group.bench_function("alloc_free_cycle", |b| {
        b.iter(|| {
            let h = mm
                .alloc(&ctx2, rtsj::memory::AreaId::HEAP, 42u64)
                .expect("alloc");
            mm.heap_free(h.raw()).expect("free");
        });
    });

    // Fixed-ring exchange buffer: one message through a provisioned ring.
    let buf: soleil::patterns::ExchangeBuffer<u64> = soleil::patterns::ExchangeBuffer::create(
        &mut mm,
        &ctx2,
        rtsj::memory::AreaId::IMMORTAL,
        16,
    )
    .expect("buffer");
    group.bench_function("ring_push_pop", |b| {
        b.iter(|| {
            buf.push(&mut mm, &ctx2, 7u64).expect("push");
            buf.pop(&mut mm, &ctx2).expect("pop")
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_design_time,
    bench_generation,
    bench_substrate_ops
);
criterion_main!(benches);
