//! Isolation bench for the membrane's compiled interceptor plan: the
//! pre/post protocol cost at chain depths 0/1/2/4, dynamic dispatch vs.
//! the compiled `InterceptStep` plan.
//!
//! The `dyn` rows walk the same membrane machinery but through
//! interceptors the plan compiler does not recognize (forced onto the
//! `Dyn` fallback step — two virtual calls per interceptor per
//! invocation, the pre-flattening price). The `compiled` rows use the
//! known `ActiveInterceptor`, flattened into enum steps and, at depth 1,
//! fused into the single-pass gate. Depth 0 measures the shared floor
//! (lifecycle gate + fusion dispatch) and is emitted once under
//! `compiled` — there is no chain left to dispatch dynamically.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soleil::membrane::interceptors::{ActiveInterceptor, Interceptor};
use soleil::membrane::{FrameworkError, Membrane};
use soleil::rtsj::memory::{MemoryContext, MemoryManager};
use soleil::rtsj::thread::ThreadKind;

/// An `ActiveInterceptor` hidden behind a type the plan compiler does not
/// know: same state machine, but every `pre`/`post` goes through the
/// `Box<dyn Interceptor>` vtable — the dynamic-dispatch baseline.
#[derive(Debug)]
struct OpaqueActive(ActiveInterceptor);

impl Interceptor for OpaqueActive {
    fn name(&self) -> &str {
        "opaque-active"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any + Send> {
        self
    }

    fn pre(
        &mut self,
        mm: &mut MemoryManager,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        self.0.pre(mm, ctx)
    }

    fn post(
        &mut self,
        mm: &mut MemoryManager,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        self.0.post(mm, ctx)
    }
}

fn membrane_at_depth(depth: usize, compiled: bool) -> Membrane {
    let mut m = Membrane::new("bench");
    m.lifecycle.start();
    for _ in 0..depth {
        if compiled {
            m.push_interceptor(Box::new(ActiveInterceptor::new()));
        } else {
            m.push_interceptor(Box::new(OpaqueActive(ActiveInterceptor::new())));
        }
    }
    // The property the flattening claims: known interceptors leave no dyn
    // step in the plan; the opaque baseline keeps them all dynamic.
    assert_eq!(
        m.plan().is_fully_compiled(),
        compiled || depth == 0,
        "plan compilation mismatch at depth {depth}"
    );
    m
}

fn bench_interceptor_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("interceptor_chain");
    for depth in [0usize, 1, 2, 4] {
        for compiled in [true, false] {
            if depth == 0 && !compiled {
                continue; // no chain to dispatch dynamically
            }
            let mut mm = MemoryManager::default();
            let mut ctx = mm.context(ThreadKind::Realtime);
            let mut m = membrane_at_depth(depth, compiled);
            let label = if compiled { "compiled" } else { "dyn" };
            group.bench_with_input(BenchmarkId::new(label, depth), &depth, |b, _| {
                b.iter(|| {
                    m.pre_invoke(&mut mm, &mut ctx).expect("pre");
                    m.post_invoke(&mut mm, &mut ctx).expect("post");
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_interceptor_chain);
criterion_main!(benches);
