//! A counting global allocator for the zero-allocation steady-state gate.
//!
//! Not part of the `soleil-bench` library (which forbids unsafe code):
//! binary crates that need allocator-level observability include this file
//! with `#[path]`, which also installs [`GLOBAL`] as their global
//! allocator. Counting is per-thread, so parallel test threads cannot
//! pollute each other's measurements, and the counter itself never
//! allocates (`const`-initialized TLS `Cell`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Heap allocations observed on the current thread since it started.
/// Subtract two readings around a region to count its allocations.
pub fn allocations() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// System allocator wrapper that counts every allocating entry point
/// (`alloc`, `alloc_zeroed`, `realloc`); frees are not counted — the gate
/// is about acquiring memory in steady state.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// The installed counting allocator.
#[global_allocator]
pub static GLOBAL: CountingAllocator = CountingAllocator;
