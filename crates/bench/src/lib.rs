//! # soleil-bench — the evaluation harness (§5 / Fig. 7)
//!
//! One runner per table/figure of the paper's evaluation, shared by the
//! `reproduce` binary, the Criterion benches and the integration tests:
//!
//! | Experiment | Paper artifact | Runner |
//! |---|---|---|
//! | E1 | Fig. 7(a) execution-time distribution | [`run_overhead`] + [`fig7a_report`] |
//! | E2 | Fig. 7(b) median + jitter table | [`run_overhead`] + [`fig7b_table`] |
//! | E3 | Fig. 7(c) memory footprint | [`run_footprint`] + [`fig7c_table`] |
//! | E4 | §5.2 code-generation metrics | [`run_codegen`] + [`codegen_table`] |
//! | E5 | §5.1 determinism claim (GC immunity) | [`run_determinism`] + [`determinism_table`] |
//!
//! The harness reproduces the paper's *shape* — who wins and by roughly
//! what factor — not its absolute 2007-era numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use rtsj::gc::GcConfig;
use rtsj::thread::ThreadKind;
use rtsj::time::{AbsoluteTime, RelativeTime};
use soleil::generator::{compile, deploy, deploy_parallel, emit_source};
use soleil::prelude::*;
use soleil::runtime::instrument::{measure_steady, LatencySamples};
use soleil::runtime::sim::{deploy as sim_deploy, SimCosts, SimOptions};
use soleil::scenario::{motivation_validated, registry_with_probe, OoSystem, ScenarioProbe};

/// Convenience alias for harness results: every layer's failure converts
/// into the unified [`SoleilError`].
pub type HarnessResult<T> = SoleilResult<T>;

/// Latency samples for one implementation of the scenario.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Implementation label (`OO`, `SOLEIL`, `MERGE-ALL`, `ULTRA-MERGE`).
    pub label: String,
    /// Steady-state observations.
    pub samples: LatencySamples,
}

/// Runs the Fig. 7(a)/(b) benchmark: `observations` steady-state end-to-end
/// iterations of the motivation scenario for the OO baseline and the three
/// generation modes.
///
/// # Errors
///
/// Propagates substrate/framework errors (none expected for the fixture).
pub fn run_overhead(warmup: usize, observations: usize) -> HarnessResult<Vec<OverheadRow>> {
    let mut rows = Vec::with_capacity(4);

    // OO baseline.
    let probe = ScenarioProbe::new();
    let mut oo = OoSystem::new(&probe)?;
    let samples = measure_steady(warmup, observations, || oo.run_transaction())?;
    rows.push(OverheadRow {
        label: "OO".into(),
        samples,
    });

    // Framework modes: deploy once, resolve the head once, then drive the
    // steady-state loop through the token (no name resolution per call).
    let arch = motivation_validated()?;
    for mode in [Mode::Soleil, Mode::MergeAll, Mode::UltraMerge] {
        let probe = ScenarioProbe::new();
        let mut sys = deploy(&arch, mode, &registry_with_probe(&probe))?;
        let head = sys.resolve("ProductionLine")?;
        let samples = measure_steady(warmup, observations, || sys.run_transaction(head))?;
        rows.push(OverheadRow {
            label: mode.to_string(),
            samples,
        });
    }
    Ok(rows)
}

/// Renders the Fig. 7(a) execution-time distributions as ASCII histograms.
pub fn fig7a_report(rows: &[OverheadRow], buckets: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 7(a) — execution time distribution ({} observations each)\n",
        rows.first().map(|r| r.samples.len()).unwrap_or(0)
    );
    for r in rows {
        let _ = writeln!(out, "--- {} ---", r.label);
        out.push_str(&r.samples.histogram(buckets, 50));
        out.push('\n');
    }
    out
}

/// Renders the Fig. 7(b) median/jitter table.
pub fn fig7b_table(rows: &[OverheadRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 7(b) — execution time median and jitter");
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>12} {:>12}",
        "impl", "median(us)", "jitter(us)", "max(us)"
    );
    let baseline = rows
        .first()
        .and_then(|r| r.samples.summary())
        .map(|s| s.median.as_micros_f64());
    for r in rows {
        if let Some(s) = r.samples.summary() {
            let _ = write!(
                out,
                "{:<12} {:>12.2} {:>12.3} {:>12.2}",
                r.label,
                s.median.as_micros_f64(),
                s.jitter.as_micros_f64(),
                s.max.as_micros_f64()
            );
            if let Some(b) = baseline {
                let _ = writeln!(
                    out,
                    "   ({:+.1}% vs OO)",
                    (s.median.as_micros_f64() / b - 1.0) * 100.0
                );
            } else {
                let _ = writeln!(out);
            }
        }
    }
    out
}

/// Footprint reports for the OO baseline and the three generation modes
/// (Fig. 7(c)).
///
/// # Errors
///
/// Propagates build errors.
pub fn run_footprint() -> HarnessResult<Vec<FootprintReport>> {
    let mut reports = Vec::with_capacity(4);
    let probe = ScenarioProbe::new();
    let mut oo = OoSystem::new(&probe)?;
    // Steady state: footprint after the pipeline has run.
    for _ in 0..100 {
        oo.run_transaction()?;
    }
    reports.push(oo.footprint());

    let arch = motivation_validated()?;
    for mode in [Mode::Soleil, Mode::MergeAll, Mode::UltraMerge] {
        let probe = ScenarioProbe::new();
        let mut sys = deploy(&arch, mode, &registry_with_probe(&probe))?;
        let head = sys.resolve("ProductionLine")?;
        for _ in 0..100 {
            sys.run_transaction(head)?;
        }
        reports.push(sys.footprint());
    }
    Ok(reports)
}

/// Renders the Fig. 7(c) footprint table (application + framework bytes,
/// overhead vs. the OO baseline).
pub fn fig7c_table(reports: &[FootprintReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 7(c) — memory footprint");
    let _ = writeln!(
        out,
        "{:<12} {:>14} {:>14} {:>14} {:>14} {:>16}",
        "impl", "app bytes", "framework B", "release eng B", "total B", "overhead vs OO"
    );
    let baseline = reports.first();
    for r in reports {
        let overhead = baseline.map(|b| r.overhead_vs(b)).unwrap_or(0);
        let _ = writeln!(
            out,
            "{:<12} {:>14} {:>14} {:>14} {:>14} {:>16}",
            r.label,
            r.application_bytes(),
            r.framework_bytes,
            r.release_engine_bytes,
            r.total_bytes(),
            overhead
        );
    }
    out
}

/// One row of the §5.2 code-generation study.
#[derive(Debug, Clone)]
pub struct CodegenRow {
    /// Mode label.
    pub label: String,
    /// Generated compilation units.
    pub units: usize,
    /// Generated source lines.
    pub lines: usize,
    /// Dispatch indirections per invocation.
    pub indirections: usize,
    /// Reconfigurability at membrane level.
    pub membrane_reconfig: bool,
    /// Reconfigurability at functional level.
    pub functional_reconfig: bool,
}

/// Runs the E4 code-generation metrics over the motivation architecture.
///
/// # Errors
///
/// Propagates compilation errors.
pub fn run_codegen() -> HarnessResult<Vec<CodegenRow>> {
    let arch = motivation_validated()?;
    let spec = compile(&arch)?;
    Ok([Mode::Soleil, Mode::MergeAll, Mode::UltraMerge]
        .into_iter()
        .map(|mode| {
            let m = emit_source(&spec, mode).metrics();
            CodegenRow {
                label: mode.to_string(),
                units: m.units,
                lines: m.lines,
                indirections: m.indirections_per_call,
                membrane_reconfig: m.membrane_reconfigurable,
                functional_reconfig: m.functional_reconfigurable,
            }
        })
        .collect())
}

/// Renders the E4 table.
pub fn codegen_table(rows: &[CodegenRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "§5.2 — code generation metrics (E4)");
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>8} {:>14} {:>18} {:>20}",
        "mode", "units", "lines", "indirections", "membrane-reconf", "functional-reconf"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>8} {:>14} {:>18} {:>20}",
            r.label, r.units, r.lines, r.indirections, r.membrane_reconfig, r.functional_reconfig
        );
    }
    out
}

/// One row of the determinism experiment: a real-time pipeline stage under
/// one deployment.
#[derive(Debug, Clone)]
pub struct DeterminismRow {
    /// Deployment label.
    pub label: String,
    /// Pipeline stage (component name).
    pub stage: String,
    /// Median response time of the stage (virtual time).
    pub median: RelativeTime,
    /// Response jitter (mean absolute deviation).
    pub jitter: RelativeTime,
    /// Worst-case response observed.
    pub max: RelativeTime,
    /// Deadline misses of the stage.
    pub deadline_misses: u64,
}

/// Runs the E5 determinism experiment: the motivation pipeline deployed in
/// virtual time under an aggressive collector, once as designed (the
/// real-time stages on NHRT domains, immune to GC) and once with every
/// domain forced onto regular threads. The paper's claim: the NHRT stages
/// show flat response times and zero misses; the regular deployment is at
/// the collector's mercy.
///
/// # Errors
///
/// Propagates compilation errors.
pub fn run_determinism(horizon_ms: u64) -> HarnessResult<Vec<DeterminismRow>> {
    let arch = motivation_validated()?;
    let spec = compile(&arch)?;
    let costs = SimCosts::uniform(RelativeTime::from_micros(50))
        .with("ProductionLine", RelativeTime::from_micros(40))
        .with("MonitoringSystem", RelativeTime::from_micros(80))
        .with("AuditLog", RelativeTime::from_micros(40));
    // A collector aggressive enough that a stage stalled by a full pause
    // blows its 10 ms deadline.
    let gc = GcConfig::periodic(RelativeTime::from_millis(40), RelativeTime::from_millis(12));

    let mut rows = Vec::new();
    for (label, force) in [
        ("NHRT (as designed)", None),
        ("Regular threads", Some(ThreadKind::Regular)),
    ] {
        let mut d = sim_deploy(
            &spec,
            &costs,
            &SimOptions {
                force_thread_kind: force,
                gc: Some(gc),
            },
        );
        d.simulator.run_until(AbsoluteTime::from_millis(horizon_ms));
        for stage in ["ProductionLine", "MonitoringSystem"] {
            let task = *d
                .tasks
                .get(stage)
                .ok_or_else(|| SoleilError::Framework(format!("stage '{stage}' not deployed")))?;
            let stats = d.simulator.stats(task)?;
            let summary = stats
                .response_summary()
                .ok_or_else(|| SoleilError::Framework("stage completed no jobs".into()))?;
            rows.push(DeterminismRow {
                label: label.to_string(),
                stage: stage.to_string(),
                median: summary.median,
                jitter: summary.jitter,
                max: summary.max,
                deadline_misses: stats.deadline_misses,
            });
        }
    }
    Ok(rows)
}

/// Renders the E5 table.
pub fn determinism_table(rows: &[DeterminismRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "§5.1 determinism (E5) — real-time stages under GC (virtual time)"
    );
    let _ = writeln!(
        out,
        "{:<22} {:<18} {:>12} {:>12} {:>12} {:>8}",
        "deployment", "stage", "median(us)", "jitter(us)", "max(us)", "misses"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<22} {:<18} {:>12.1} {:>12.1} {:>12.1} {:>8}",
            r.label,
            r.stage,
            r.median.as_micros_f64(),
            r.jitter.as_micros_f64(),
            r.max.as_micros_f64(),
            r.deadline_misses
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Steady-state perf gate (BENCH_steady_state.json)
// ---------------------------------------------------------------------------

/// One row of the steady-state perf artifact: the motivation scenario's
/// per-transaction cost and allocation behavior under one implementation.
#[derive(Debug, Clone)]
pub struct SteadyStateRow {
    /// Implementation label (`OO`, `SOLEIL`, `MERGE-ALL`, `ULTRA-MERGE`,
    /// `PARALLEL`).
    pub label: String,
    /// Median wall-clock nanoseconds per steady-state transaction.
    pub median_ns: u64,
    /// Rust-heap allocations per transaction (0 is the gate).
    pub allocs_per_transaction: f64,
    /// Substrate allocations per transaction (0 is the gate).
    pub substrate_allocs_per_transaction: f64,
    /// Port-name string comparisons per transaction (0 is the gate: the
    /// compiled dispatch plan interns every hot port at warm-up).
    pub string_compares_per_transaction: f64,
    /// `Arc` clones per transaction (0 is the gate: dispatch headers are
    /// `Copy`, the enter-path arena is indexed by range).
    pub arc_clones_per_transaction: f64,
    /// Deadline misses recorded across the measured observations by the
    /// baseline scenario's timing contract (0 is the gate: every steady
    /// run arms a generous deadline contract plus an unfired release
    /// timer, so the zero-alloc claim covers the monitored hot path).
    pub deadline_misses: u64,
}

/// Runs the steady-state perf gate: warms each implementation, then times
/// `observations` transactions while counting heap allocations through
/// `heap_allocs` (a reading of the caller's counting global allocator —
/// binaries include `alloc_probe.rs` to get one; passing a constant
/// function degrades gracefully to timing only).
///
/// The measured loop itself is allocation-free: the sample buffer is
/// provisioned before counting starts.
///
/// # Errors
///
/// Propagates substrate/framework errors (none expected for the fixture).
pub fn run_steady_state(
    warmup: usize,
    observations: usize,
    heap_allocs: impl Fn() -> u64 + Sync,
) -> HarnessResult<Vec<SteadyStateRow>> {
    use std::time::Instant;

    let mut rows = Vec::with_capacity(4);
    // `dispatch` reads the engine's (string_compares, arc_clones) pair;
    // warm-up precedes the baseline reading, so one-time interning scans
    // are excluded from the steady-state deltas.
    let measure = |label: &str,
                   substrate: &mut dyn FnMut() -> u64,
                   dispatch: &mut dyn FnMut() -> (u64, u64),
                   misses: &mut dyn FnMut() -> u64,
                   op: &mut dyn FnMut() -> HarnessResult<()>|
     -> HarnessResult<SteadyStateRow> {
        for _ in 0..warmup {
            op()?;
        }
        let mut nanos: Vec<u64> = Vec::with_capacity(observations);
        let substrate_before = substrate();
        let (compares_before, arcs_before) = dispatch();
        let misses_before = misses();
        let heap_before = heap_allocs();
        for _ in 0..observations {
            let start = Instant::now();
            op()?;
            nanos.push(start.elapsed().as_nanos() as u64);
        }
        let heap_delta = heap_allocs() - heap_before;
        let substrate_delta = substrate() - substrate_before;
        let (compares_after, arcs_after) = dispatch();
        let samples = soleil::runtime::instrument::LatencySamples::from_nanos(nanos);
        Ok(SteadyStateRow {
            label: label.to_string(),
            median_ns: samples.percentile(50.0).unwrap_or(0),
            allocs_per_transaction: heap_delta as f64 / observations as f64,
            substrate_allocs_per_transaction: substrate_delta as f64 / observations as f64,
            string_compares_per_transaction: (compares_after - compares_before) as f64
                / observations as f64,
            arc_clones_per_transaction: (arcs_after - arcs_before) as f64 / observations as f64,
            deadline_misses: misses() - misses_before,
        })
    };

    let probe = ScenarioProbe::new();
    let oo = std::cell::RefCell::new(OoSystem::new(&probe)?);
    rows.push(measure(
        "OO",
        &mut || oo.borrow().alloc_count(),
        &mut || (0, 0),
        &mut || 0,
        &mut || Ok(oo.borrow_mut().run_transaction()?),
    )?);

    let arch = motivation_validated()?;
    for mode in [Mode::Soleil, Mode::MergeAll, Mode::UltraMerge] {
        let probe = ScenarioProbe::new();
        let dep = std::cell::RefCell::new(deploy(&arch, mode, &registry_with_probe(&probe))?);
        let head = dep.borrow().resolve("ProductionLine")?;
        // The gate covers the *monitored* hot path: a deadline contract on
        // the head (generous enough that a healthy run never misses) plus
        // an armed-but-unfired release keep the release engine live
        // through every measured transaction.
        dep.borrow_mut()
            .attach_contract(head, baseline_contract())?;
        dep.borrow_mut().schedule_release(head, AbsoluteTime::MAX)?;
        rows.push(measure(
            &mode.to_string(),
            &mut || dep.borrow().memory().alloc_count(),
            &mut || (dep.borrow().string_compares(), dep.borrow().arc_clones()),
            &mut || dep.borrow().deadline_misses(),
            &mut || Ok(dep.borrow_mut().run_transaction(head)?),
        )?);
    }

    rows.push(run_parallel_steady(warmup, observations, &heap_allocs)?);
    Ok(rows)
}

/// The timing contract armed on the baseline scenario's head during every
/// steady-state measurement: a 500 ms deadline no healthy transaction
/// (microseconds end-to-end) can miss — any recorded miss is a genuine
/// engine regression, not measurement noise.
pub fn baseline_contract() -> TimingContract {
    TimingContract::new().with_deadline(RelativeTime::from_millis(500))
}

/// The `PARALLEL` row of the steady-state artifact: the motivation
/// scenario sharded by thread domain ([`deploy_parallel`]), every shard
/// ticking on its own OS thread, cross-domain messages on wait-free SPSC
/// rings. One tick of the producer shard is the analogue of one serial
/// transaction; the reported median is the *slowest* shard's (the
/// parallel critical path). Allocation counters are per-thread and summed
/// across shards — the zero-alloc gate applies to every thread.
///
/// # Errors
///
/// Propagates substrate/framework errors (none expected for the fixture).
pub fn run_parallel_steady(
    warmup: usize,
    observations: usize,
    heap_allocs: impl Fn() -> u64 + Sync,
) -> HarnessResult<SteadyStateRow> {
    let arch = motivation_validated()?;
    let probe = ScenarioProbe::new();
    let mut sys = deploy_parallel(&arch, Mode::MergeAll, &registry_with_probe(&probe))?;
    // The same monitored-hot-path discipline as the serial rows: a
    // generous contract on the head's shard and an armed release that
    // never comes due within the run.
    sys.attach_contract("ProductionLine", baseline_contract())?;
    sys.schedule_release("ProductionLine", AbsoluteTime::MAX)?;
    // Warm up outside the instrumented run so the one-time interning scans
    // stay out of the measured dispatch-counter deltas.
    sys.run_ticks(warmup as u64)?;
    let compares_before = sys.string_compares();
    let arcs_before = sys.arc_clones();
    let misses_before = sys.deadline_misses();
    let runs = sys.run_ticks_instrumented(0, observations as u64, &heap_allocs)?;
    Ok(SteadyStateRow {
        label: "PARALLEL".into(),
        median_ns: runs.iter().map(|r| r.median_tick_ns).max().unwrap_or(0),
        allocs_per_transaction: runs.iter().map(|r| r.probe_delta).sum::<u64>() as f64
            / observations as f64,
        substrate_allocs_per_transaction: runs.iter().map(|r| r.substrate_allocs).sum::<u64>()
            as f64
            / observations as f64,
        string_compares_per_transaction: (sys.string_compares() - compares_before) as f64
            / observations as f64,
        arc_clones_per_transaction: (sys.arc_clones() - arcs_before) as f64 / observations as f64,
        deadline_misses: sys.deadline_misses() - misses_before,
    })
}

/// Compares a fresh steady-state run against the committed
/// `BENCH_steady_state.json` artifact — the CI regression gate.
///
/// A failure line is produced for every mode whose fresh median exceeds
/// the committed median by more than `threshold_pct` percent, for any
/// fresh row whose allocs/transaction (Rust heap or substrate) leave 0,
/// for any fresh row reporting a deadline miss under the baseline
/// scenario's generous contract, and for modes present in the committed
/// artifact but missing from the fresh run (artifact drift). An empty
/// result means the gate passes.
///
/// The committed artifact is integer-valued by construction (medians in
/// nanoseconds, allocation counts pinned at 0 — a fractional count would
/// already be a gate violation and fails the parse loudly).
///
/// # Errors
///
/// Parse errors on a malformed committed artifact.
pub fn steady_state_regressions(
    committed_json: &str,
    fresh: &[SteadyStateRow],
    threshold_pct: f64,
) -> HarnessResult<Vec<String>> {
    let doc = soleil::core::json::parse(committed_json)?;
    let modes = doc
        .get("modes")
        .and_then(|m| m.as_array())
        .ok_or_else(|| SoleilError::Framework("committed artifact has no 'modes' array".into()))?;
    let mut failures = Vec::new();
    // Median gate: every committed mode must be present and within the
    // threshold of its committed baseline.
    for entry in modes {
        let mode = entry
            .get("mode")
            .and_then(|v| v.as_str())
            .ok_or_else(|| SoleilError::Framework("artifact mode entry lacks 'mode'".into()))?;
        let committed = entry
            .get("median_ns_per_transaction")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| {
                SoleilError::Framework(format!("artifact mode '{mode}' lacks an integer median"))
            })?;
        let Some(row) = fresh.iter().find(|r| r.label == mode) else {
            failures.push(format!(
                "mode '{mode}' is in the committed artifact but missing from the fresh run"
            ));
            continue;
        };
        let limit = committed as f64 * (1.0 + threshold_pct / 100.0);
        if row.median_ns as f64 > limit {
            failures.push(format!(
                "{mode}: fresh median {} ns regressed more than {threshold_pct}% over the \
                 committed {committed} ns (limit {:.0} ns)",
                row.median_ns, limit
            ));
        }
    }
    // Allocation gate: every fresh row must be allocation-free, including
    // modes newer than the committed artifact (no baseline needed for 0).
    for row in fresh {
        if row.allocs_per_transaction != 0.0 {
            failures.push(format!(
                "{}: {} Rust-heap allocations/transaction; the steady state must stay at 0",
                row.label, row.allocs_per_transaction
            ));
        }
        if row.substrate_allocs_per_transaction != 0.0 {
            failures.push(format!(
                "{}: {} substrate allocations/transaction; the steady state must stay at 0",
                row.label, row.substrate_allocs_per_transaction
            ));
        }
        if row.string_compares_per_transaction != 0.0 {
            failures.push(format!(
                "{}: {} string compares/transaction; compiled dispatch must stay at 0",
                row.label, row.string_compares_per_transaction
            ));
        }
        if row.arc_clones_per_transaction != 0.0 {
            failures.push(format!(
                "{}: {} Arc clones/transaction; compiled dispatch must stay at 0",
                row.label, row.arc_clones_per_transaction
            ));
        }
        if row.deadline_misses != 0 {
            failures.push(format!(
                "{}: {} deadline miss(es); the baseline scenario's contract must never miss",
                row.label, row.deadline_misses
            ));
        }
    }
    // Lead gate: the merged modes exist to shed SOLEIL's reified-membrane
    // overhead. If MERGE-ALL's fresh median falls behind SOLEIL's by more
    // than measurement noise, the compiled plan has regressed — regardless
    // of how both compare to the committed artifact.
    const LEAD_NOISE_PCT: f64 = 5.0;
    if let (Some(soleil), Some(merge)) = (
        fresh.iter().find(|r| r.label == "SOLEIL"),
        fresh.iter().find(|r| r.label == "MERGE-ALL"),
    ) {
        let limit = soleil.median_ns as f64 * (1.0 + LEAD_NOISE_PCT / 100.0);
        if merge.median_ns as f64 > limit {
            failures.push(format!(
                "MERGE-ALL: fresh median {} ns fell behind SOLEIL's {} ns by more than \
                 {LEAD_NOISE_PCT}% noise (limit {:.0} ns); the merged mode must not lose \
                 its compiled-dispatch lead",
                merge.median_ns, soleil.median_ns, limit
            ));
        }
    }
    Ok(failures)
}

/// Renders the steady-state rows as the machine-readable
/// `BENCH_steady_state.json` artifact that seeds the perf trajectory.
pub fn steady_state_json(rows: &[SteadyStateRow], observations: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"steady_state_transaction\",\n");
    let _ = writeln!(out, "  \"observations\": {observations},");
    out.push_str("  \"modes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"mode\": \"{}\", \"median_ns_per_transaction\": {}, \
             \"allocs_per_transaction\": {}, \"substrate_allocs_per_transaction\": {}, \
             \"string_compares_per_transaction\": {}, \"arc_clones_per_transaction\": {}, \
             \"deadline_misses\": {}}}",
            r.label,
            r.median_ns,
            r.allocs_per_transaction,
            r.substrate_allocs_per_transaction,
            r.string_compares_per_transaction,
            r.arc_clones_per_transaction,
            r.deadline_misses
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Chaos gate (fault containment under a seeded storm)
// ---------------------------------------------------------------------------

/// One seeded fault storm against one generation mode: the conservation
/// ledger and the health verdicts it must explain.
#[derive(Debug, Clone)]
pub struct ChaosGateRow {
    /// Generation mode the storm ran against.
    pub mode: String,
    /// The storm's seed (drives both injectors).
    pub seed: u64,
    /// Async messages pushed over the run.
    pub pushed: u64,
    /// Messages delivered to an activation boundary.
    pub delivered: u64,
    /// Messages counted-dropped (quarantine gates; none silently lost).
    pub dropped: u64,
    /// Faults contained by supervision (escalations would fail the run).
    pub faults_contained: u64,
    /// Supervised restarts performed through the timer queue.
    pub restarts: u64,
    /// Components still quarantined when the storm ended.
    pub quarantined: Vec<String>,
    /// SOL-020/021/022 findings rendered as `CODE subject`.
    pub verdicts: Vec<String>,
}

/// Runs the chaos gate: for every seed and every generation mode, the
/// motivation scenario weathers a deterministic fault storm — an
/// error+panic injector on `MonitoringSystem` under a supervised-restart
/// policy and one on `AuditLog` under isolation — then the injectors are
/// disarmed and the system settles. Containment means no tick may error;
/// the returned rows carry the ledger for [`chaos_gate_failures`].
///
/// # Errors
///
/// Deployment errors, or a fault escaping containment mid-storm.
pub fn run_chaos_gate(seeds: &[u64], ticks: u64) -> HarnessResult<Vec<ChaosGateRow>> {
    let arch = motivation_validated()?;
    let mut rows = Vec::with_capacity(seeds.len() * 3);
    for &seed in seeds {
        for mode in [Mode::Soleil, Mode::MergeAll, Mode::UltraMerge] {
            let probe = ScenarioProbe::new();
            let mut dep = deploy(&arch, mode, &registry_with_probe(&probe))?;
            let monitor = dep.resolve("MonitoringSystem")?;
            let audit = dep.resolve("AuditLog")?;
            dep.set_fault_policy(
                monitor,
                FaultPolicy::Restart {
                    max_restarts: ticks as u32 + 1,
                    window: RelativeTime::from_millis(3_600_000),
                    backoff: RelativeTime::from_millis(1),
                },
            )?;
            dep.set_fault_policy(audit, FaultPolicy::Isolate)?;
            let menu = FaultInjector::MENU_ERROR | FaultInjector::MENU_PANIC;
            dep.install_fault_injector(
                monitor,
                FaultInjector::new("MonitoringSystem", seed, 3).with_menu(menu),
            )?;
            dep.install_fault_injector(
                audit,
                FaultInjector::new("AuditLog", seed ^ 0x9E37_79B9, 5).with_menu(menu),
            )?;

            for tick in 0..ticks {
                dep.run_tick().map_err(|e| {
                    SoleilError::Framework(format!(
                        "{mode}/seed {seed}: fault escaped containment at tick {tick}: {e}"
                    ))
                })?;
            }

            // Disarm and settle: contained faults defer the rest of the
            // pending heap to the next drain, so two fault-free ticks
            // flush every deferred message (delivered or counted-dropped).
            dep.remove_fault_injector(monitor)?;
            dep.remove_fault_injector(audit)?;
            let quarantined: Vec<String> = [monitor, audit]
                .into_iter()
                .filter(|c| dep.quarantined(*c).unwrap_or(false))
                .map(|c| dep.name_of(c).unwrap_or("?").to_string())
                .collect();
            let report = dep.health_report();
            let verdicts: Vec<String> = ["SOL-020", "SOL-021", "SOL-022"]
                .iter()
                .flat_map(|code| {
                    report
                        .by_code(code)
                        .map(move |d| format!("{code} {}", d.subject))
                })
                .collect();
            for _ in 0..2 {
                dep.run_tick().map_err(|e| {
                    SoleilError::Framework(format!("{mode}/seed {seed}: settling tick failed: {e}"))
                })?;
            }

            let stats = dep.stats();
            let (m_faults, m_restarts, _) = dep.supervision_counts(monitor)?;
            let (a_faults, _, _) = dep.supervision_counts(audit)?;
            rows.push(ChaosGateRow {
                mode: mode.to_string(),
                seed,
                pushed: stats.async_messages,
                delivered: stats.delivered_messages,
                dropped: stats.dropped_messages,
                faults_contained: m_faults + a_faults,
                restarts: m_restarts,
                quarantined,
                verdicts,
            });
        }
    }
    Ok(rows)
}

/// Judges the chaos-gate rows: a failure line per storm that lost a
/// message (`pushed != delivered + dropped`), injected no fault at all
/// (an inert storm proves nothing), or left a verdict unexplained — a
/// quarantined component without its SOL-020 finding, or counted drops
/// without SOL-022. An empty result means the gate passes.
pub fn chaos_gate_failures(rows: &[ChaosGateRow]) -> Vec<String> {
    let mut failures = Vec::new();
    for r in rows {
        let tag = format!("{} seed {}", r.mode, r.seed);
        if r.pushed != r.delivered + r.dropped {
            failures.push(format!(
                "{tag}: ledger leak — pushed {} but delivered {} + dropped {}",
                r.pushed, r.delivered, r.dropped
            ));
        }
        if r.faults_contained == 0 {
            failures.push(format!("{tag}: inert storm — no fault was contained"));
        }
        for q in &r.quarantined {
            if !r.verdicts.iter().any(|v| v == &format!("SOL-020 {q}")) {
                failures.push(format!(
                    "{tag}: '{q}' is quarantined but SOL-020 does not say so"
                ));
            }
        }
        if r.dropped > 0 && !r.verdicts.iter().any(|v| v.starts_with("SOL-022")) {
            failures.push(format!(
                "{tag}: {} messages counted-dropped but no SOL-022 finding",
                r.dropped
            ));
        }
    }
    failures
}

/// Renders the chaos-gate rows as an aligned table.
pub fn chaos_gate_table(rows: &[ChaosGateRow]) -> String {
    let mut out = String::new();
    out.push_str("chaos gate: seeded fault storms (pushed == delivered + counted-dropped)\n");
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>8} {:>10} {:>8} {:>7} {:>8}  verdicts",
        "mode", "seed", "pushed", "delivered", "dropped", "faults", "restarts"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>8} {:>10} {:>8} {:>7} {:>8}  {}",
            r.mode,
            r.seed,
            r.pushed,
            r.delivered,
            r.dropped,
            r.faults_contained,
            r.restarts,
            if r.verdicts.is_empty() {
                "-".to_string()
            } else {
                r.verdicts.join(", ")
            }
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Recovery gate (supervision trees + warm-state handoff in virtual time)
// ---------------------------------------------------------------------------

/// The declared supervision tree of the recovery gate's scenario, rendered
/// the way a SOL-023 verdict renders the walked escalation path: every
/// fault originates at `ProductionLine`, escalates through
/// `MonitoringSystem` and is contained by `AuditLog`'s restart policy.
pub const RECOVERY_TREE: &str = "ProductionLine -> MonitoringSystem -> AuditLog";

/// The recovery budget the gate declares: quarantine-to-health in virtual
/// time. The restart backoff is 1 ms doubling inside a 50 ms window (so at
/// most ~4 ms before the window rolls), but a restarted head can be
/// re-faulted by the storm on its first release back, chaining episodes —
/// the budget grants a dozen 10 ms release quanta to cover such streaks.
pub fn recovery_budget() -> RelativeTime {
    RelativeTime::from_millis(120)
}

/// One seeded recovery campaign against one generation mode: the
/// virtual-time recovery metrics plus the warm-state and verdict evidence
/// [`recovery_gate_failures`] judges.
#[derive(Debug, Clone)]
pub struct RecoveryGateRow {
    /// Generation mode the campaign ran against.
    pub mode: String,
    /// The storm's seed.
    pub seed: u64,
    /// Storm ticks driven (the disarmed settling window comes after).
    pub ticks: u64,
    /// Virtual time elapsed across the storm — release quanta plus every
    /// injected latency spike charged to the engine clock.
    pub elapsed_virtual: RelativeTime,
    /// Faults contained by the supervision tree.
    pub faults_contained: u64,
    /// Supervised restarts performed through the timer queue.
    pub restarts: u64,
    /// Releases suppressed while watched components sat quarantined.
    pub suppressed_releases: u64,
    /// Deadline misses recorded while an episode was open.
    pub deadline_misses_during_recovery: u64,
    /// Fault episodes observed (quarantine → health transitions).
    pub episodes: usize,
    /// The longest quarantine-to-health interval among recovered episodes.
    pub max_time_to_restart: Option<RelativeTime>,
    /// Episodes still open when the storm ended (they get the settling
    /// window to recover; components still down after it fail the gate).
    pub open_at_storm_end: usize,
    /// Components still quarantined after the disarmed settling window.
    pub quarantined_after_settle: Vec<String>,
    /// Conservation ledger at quiescence (`pushed == delivered + dropped`).
    pub ledger_balanced: bool,
    /// The SOL-023 escalation path recorded on the containing supervisor.
    pub sol023_path: Option<String>,
    /// Warm-state restores performed into fresh `ProductionLine` instances.
    pub checkpoint_restores: u64,
    /// Highest measurement sequence number audited downstream.
    pub max_seq: u64,
    /// Times an audited sequence number regressed below the running
    /// maximum — any cold restart of the line trips this.
    pub seq_regressions: u64,
}

/// Runs the recovery gate: for every seed and generation mode, the
/// motivation scenario is deployed with its declared supervision tree
/// ([`RECOVERY_TREE`]: the head escalates through monitoring into an
/// `AuditLog` restart policy), the head's `seq` counter is carried across
/// restarts by the Checkpoint capability, and a seeded
/// error+panic+latency storm — virtual-clock latency spikes included —
/// drives [`run_recovery_campaign`] for `ticks`. The injector is then
/// disarmed and the deployment settles. Warm state is witnessed end to
/// end: the audit trail records a sequence regression iff a restart ever
/// lost the head's counter.
///
/// # Errors
///
/// Deployment errors, or a fault escaping the declared tree mid-storm.
pub fn run_recovery_gate(seeds: &[u64], ticks: u64) -> HarnessResult<Vec<RecoveryGateRow>> {
    const SETTLE_TICKS: u64 = 5;
    let arch = motivation_validated()?;
    let mut rows = Vec::with_capacity(seeds.len() * 3);
    for &seed in seeds {
        for mode in [Mode::Soleil, Mode::MergeAll, Mode::UltraMerge] {
            let probe = ScenarioProbe::new();
            let mut dep = deploy(&arch, mode, &registry_with_probe(&probe))?;
            let line = dep.resolve("ProductionLine")?;
            let monitor = dep.resolve("MonitoringSystem")?;
            let audit = dep.resolve("AuditLog")?;

            // The declared tree: faults walk line → monitor → audit, and
            // the audit-side policy restarts the failed subtree as a unit.
            dep.set_supervisor(line, Some(monitor))?;
            dep.set_supervisor(monitor, Some(audit))?;
            dep.set_fault_policy(
                audit,
                FaultPolicy::Restart {
                    max_restarts: ticks as u32 + 1,
                    window: RelativeTime::from_millis(50),
                    backoff: RelativeTime::from_millis(1),
                },
            )?;
            dep.enable_checkpoint(line, 1)?;
            dep.install_fault_injector(
                line,
                FaultInjector::new("ProductionLine", seed, 4)
                    .with_menu(
                        FaultInjector::MENU_ERROR
                            | FaultInjector::MENU_PANIC
                            | FaultInjector::MENU_LATENCY,
                    )
                    .with_latency_spike_ns(2_000_000)
                    .with_virtual_clock(),
            )?;

            let metrics =
                run_recovery_campaign(&mut dep, &[line, monitor], seed, ticks).map_err(|e| {
                    SoleilError::Framework(format!(
                        "{mode}/seed {seed}: fault escaped the supervision tree: {e}"
                    ))
                })?;

            // Disarm and settle: episodes still open at storm end get this
            // window — itself far inside the budget — to restart.
            dep.remove_fault_injector(line)?;
            let settle = run_recovery_campaign(&mut dep, &[line, monitor], seed, SETTLE_TICKS)
                .map_err(|e| {
                    SoleilError::Framework(format!("{mode}/seed {seed}: settling failed: {e}"))
                })?;
            let quarantined_after_settle: Vec<String> = [line, monitor, audit]
                .into_iter()
                .filter(|c| dep.quarantined(*c).unwrap_or(false))
                .map(|c| dep.name_of(c).unwrap_or("?").to_string())
                .collect();

            let (_, restores) = dep.checkpoint_counts(line)?.unwrap_or((0, 0));
            rows.push(RecoveryGateRow {
                mode: mode.to_string(),
                seed,
                ticks,
                elapsed_virtual: metrics.elapsed_virtual,
                faults_contained: metrics.faults_contained,
                restarts: metrics.restarts + settle.restarts,
                suppressed_releases: metrics.suppressed_releases + settle.suppressed_releases,
                deadline_misses_during_recovery: metrics.deadline_misses_during_recovery,
                episodes: metrics.episodes.len(),
                max_time_to_restart: metrics.max_time_to_restart(),
                open_at_storm_end: metrics.unrecovered(),
                quarantined_after_settle,
                ledger_balanced: metrics.ledger_balanced && settle.ledger_balanced,
                sol023_path: dep.escalation_path(audit)?,
                checkpoint_restores: restores,
                max_seq: probe.max_seq(),
                seq_regressions: probe.seq_regressions(),
            });
        }
    }
    Ok(rows)
}

/// Judges the recovery-gate rows: a failure line per campaign that was
/// inert (no fault contained, no restart performed), recovered slower than
/// the declared budget, left a component quarantined after the settling
/// window, lost a message off the conservation ledger, recorded an
/// escalation path other than the declared tree, or failed the warm-state
/// witness (no checkpoint restore, or an audited sequence regression
/// betraying a cold restart). An empty result means the gate passes.
pub fn recovery_gate_failures(rows: &[RecoveryGateRow]) -> Vec<String> {
    let budget = recovery_budget();
    let mut failures = Vec::new();
    for r in rows {
        let tag = format!("{} seed {}", r.mode, r.seed);
        if r.faults_contained == 0 {
            failures.push(format!("{tag}: inert storm — no fault was contained"));
        }
        if r.restarts == 0 {
            failures.push(format!("{tag}: no supervised restart was performed"));
        }
        if let Some(worst) = r.max_time_to_restart {
            if worst > budget {
                failures.push(format!(
                    "{tag}: slowest recovery took {worst} of virtual time; the declared \
                     budget is {budget}"
                ));
            }
        }
        for q in &r.quarantined_after_settle {
            failures.push(format!(
                "{tag}: '{q}' still quarantined after the disarmed settling window"
            ));
        }
        if !r.ledger_balanced {
            failures.push(format!(
                "{tag}: conservation ledger leaked (pushed != delivered + dropped)"
            ));
        }
        match r.sol023_path.as_deref() {
            Some(RECOVERY_TREE) => {}
            other => failures.push(format!(
                "{tag}: SOL-023 path {other:?} does not match the declared tree \
                 '{RECOVERY_TREE}'"
            )),
        }
        if r.checkpoint_restores == 0 {
            failures.push(format!(
                "{tag}: warm state never witnessed — no checkpoint restore happened"
            ));
        }
        if r.seq_regressions != 0 {
            failures.push(format!(
                "{tag}: {} audited sequence regression(s) — a restart lost the head's \
                 warm state",
                r.seq_regressions
            ));
        }
        if r.max_seq == 0 {
            failures.push(format!(
                "{tag}: nothing was audited — the pipeline never ran"
            ));
        }
    }
    failures
}

/// Renders the recovery-gate rows as an aligned table.
pub fn recovery_gate_table(rows: &[RecoveryGateRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "recovery gate: tree '{RECOVERY_TREE}', budget {} of virtual time",
        recovery_budget()
    );
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>9} {:>7} {:>8} {:>10} {:>9} {:>13} {:>8} {:>7}",
        "mode",
        "seed",
        "virtual",
        "faults",
        "restarts",
        "suppressed",
        "episodes",
        "worst-restart",
        "restores",
        "max-seq"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>9} {:>7} {:>8} {:>10} {:>9} {:>13} {:>8} {:>7}",
            r.mode,
            r.seed,
            r.elapsed_virtual.to_string(),
            r.faults_contained,
            r.restarts,
            r.suppressed_releases,
            r.episodes,
            r.max_time_to_restart
                .map_or_else(|| "-".to_string(), |t| t.to_string()),
            r.checkpoint_restores,
            r.max_seq
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Reconfiguration gate (live parallel transactions under traffic)
// ---------------------------------------------------------------------------

/// One generation mode's run of the reconfiguration gate: a live sharded
/// deployment taken through committed transactions under traffic, plus the
/// ledger and verdicts the gate judges.
#[derive(Debug, Clone)]
pub struct ReconfigGateRow {
    /// Generation mode the gate ran against.
    pub mode: String,
    /// Committed reconfiguration transactions.
    pub transactions: usize,
    /// Async messages pushed over the whole run, reconfigurations included.
    pub pushed: u64,
    /// Messages delivered to an activation boundary.
    pub delivered: u64,
    /// Messages counted-dropped (must be 0: every epoch drains its rings).
    pub dropped: u64,
    /// Rust-heap allocations during the post-commit steady-state ticks.
    pub heap_allocs: u64,
    /// Substrate allocations during the post-commit steady-state ticks.
    pub substrate_allocs: u64,
    /// Deadline misses under the baseline contract across the run.
    pub deadline_misses: u64,
    /// True when the refused probe transaction left every shard's
    /// structural digest byte-identical.
    pub rollback_identical: bool,
}

/// The gate's fixture: a periodic producer (its own shard) fanning out to
/// two consumers whose ThreadDomains a synchronous peer binding couples
/// into one shard — so the gate can rewire cross-shard rings *and*
/// re-seat a component across same-shard domains (re-homing its
/// allocation region between the per-domain immortal areas).
fn reconfig_fixture() -> HarnessResult<soleil::core::ValidatedArchitecture> {
    let mut b = BusinessView::new("reconfig-gate");
    b.active_periodic("producer", "10ms")?;
    b.active_sporadic("consumerB")?;
    b.active_sporadic("consumerC")?;
    b.content("producer", "GateFan")?;
    b.content("consumerB", "GateSink")?;
    b.content("consumerC", "GateSink")?;
    b.require("producer", "out1", "I")?;
    b.require("producer", "out2", "I")?;
    b.require("consumerB", "peer", "I")?;
    b.provide("consumerB", "in", "I")?;
    b.provide("consumerC", "in", "I")?;
    b.bind_async("producer", "out1", "consumerB", "in", 64)?;
    b.bind_async("producer", "out2", "consumerC", "in", 64)?;
    b.bind_sync("consumerB", "peer", "consumerC", "in")?;
    let mut flow = DesignFlow::new(b);
    flow.thread_domain("A", ThreadKind::NoHeapRealtime, 30, &["producer"])?;
    flow.thread_domain("B", ThreadKind::NoHeapRealtime, 25, &["consumerB"])?;
    flow.thread_domain("C", ThreadKind::Realtime, 20, &["consumerC"])?;
    flow.memory_area("Imm1", MemoryKind::Immortal, Some(256 * 1024), &["A"])?;
    flow.memory_area("ImmB", MemoryKind::Immortal, Some(256 * 1024), &["B"])?;
    flow.memory_area("ImmC", MemoryKind::Immortal, Some(256 * 1024), &["C"])?;
    Ok(flow.merge()?.into_validated()?)
}

fn reconfig_registry() -> ContentRegistry<u64> {
    #[derive(Debug)]
    struct GateFan;
    impl Content<u64> for GateFan {
        fn on_invoke(&mut self, _p: &str, msg: &mut u64, out: &mut dyn Ports<u64>) -> InvokeResult {
            *msg += 1;
            out.send("out1", *msg)?;
            out.send("out2", *msg)
        }
    }
    #[derive(Debug)]
    struct GateSink;
    impl Content<u64> for GateSink {
        fn on_invoke(
            &mut self,
            _p: &str,
            _msg: &mut u64,
            _out: &mut dyn Ports<u64>,
        ) -> InvokeResult {
            Ok(())
        }
    }
    let mut r = ContentRegistry::new();
    r.register("GateFan", || Box::new(GateFan));
    r.register("GateSink", || Box::new(GateSink));
    r
}

/// Runs the reconfiguration gate: for SOLEIL and MERGE-ALL (ULTRA-MERGE is
/// checked to *refuse*), a live parallel deployment under a baseline
/// deadline contract first weathers a refused probe transaction (its
/// structural digests must round-trip byte-identically), then commits
/// `transactions` live transactions — each combining a cross-ring rebind,
/// a same-shard domain re-assignment with region re-homing and a policy
/// swap — with `ticks_per_txn` ticks of traffic between commits, and
/// finally proves the reconfigured partition still ticks allocation-free.
///
/// # Errors
///
/// Deployment/validation errors, a transaction failing to commit, or
/// ULTRA-MERGE accepting a reconfiguration.
pub fn run_reconfig_gate(
    transactions: usize,
    ticks_per_txn: u64,
    heap_allocs: impl Fn() -> u64 + Sync,
) -> HarnessResult<Vec<ReconfigGateRow>> {
    let arch = reconfig_fixture()?;
    let mut rows = Vec::with_capacity(2);
    for mode in [Mode::Soleil, Mode::MergeAll] {
        let mut sys = deploy_parallel(&arch, mode, &reconfig_registry())?;
        sys.attach_contract("producer", baseline_contract())?;
        sys.run_ticks(ticks_per_txn)?;

        // Refusal probe: the combined transaction aborts at the last step;
        // every shard engine must come back byte-identical.
        let digests = sys.structural_digests();
        let refusal = sys.reconfigure(|txn| -> Result<(), FrameworkError> {
            txn.rebind_async("producer", "out1", "consumerC")?;
            txn.reassign_domain("consumerB", "C")?;
            Err(FrameworkError::Content(
                "reconfig-gate refusal probe".into(),
            ))
        });
        let rollback_identical = refusal.is_err() && sys.structural_digests() == digests;

        // Committed transactions under traffic: ping-pong the ring target,
        // the consumer's domain (re-homing its region each way) and the
        // sibling's supervision policy.
        for i in 0..transactions {
            let flip = i % 2 == 0;
            sys.reconfigure(|txn| {
                txn.rebind_async(
                    "producer",
                    "out1",
                    if flip { "consumerC" } else { "consumerB" },
                )?;
                txn.reassign_domain("consumerB", if flip { "C" } else { "B" })?;
                txn.set_fault_policy(
                    "consumerC",
                    if flip {
                        FaultPolicy::Isolate
                    } else {
                        FaultPolicy::Escalate
                    },
                )
            })?;
            sys.run_ticks(ticks_per_txn)?;
        }

        // The reconfigured partition must still tick allocation-free.
        let runs = sys.run_ticks_instrumented(2, ticks_per_txn, &heap_allocs)?;
        let stats = sys.stats();
        rows.push(ReconfigGateRow {
            mode: mode.to_string(),
            transactions,
            pushed: stats.async_messages,
            delivered: stats.delivered_messages,
            dropped: stats.dropped_messages,
            heap_allocs: runs.iter().map(|r| r.probe_delta).sum(),
            substrate_allocs: runs.iter().map(|r| r.substrate_allocs).sum(),
            deadline_misses: sys.deadline_misses(),
            rollback_identical,
        });
    }

    // ULTRA-MERGE is purely static: accepting a transaction would be a
    // containment hole, not a feature.
    let mut ultra = deploy_parallel(&arch, Mode::UltraMerge, &reconfig_registry())?;
    if ultra.reconfigure(|_txn| Ok(())).is_ok() {
        return Err(SoleilError::Framework(
            "ULTRA-MERGE accepted a reconfiguration transaction".into(),
        ));
    }
    Ok(rows)
}

/// Judges the reconfiguration-gate rows: a failure line per mode that lost
/// or dropped a message across its reconfiguration epochs, allocated on
/// the Rust heap or in the substrate during the post-commit steady state,
/// missed a deadline under the baseline contract, failed to restore the
/// refused probe byte-identically, or committed no transaction at all. An
/// empty result means the gate passes.
pub fn reconfig_gate_failures(rows: &[ReconfigGateRow]) -> Vec<String> {
    let mut failures = Vec::new();
    for r in rows {
        let tag = &r.mode;
        if r.transactions == 0 {
            failures.push(format!("{tag}: inert gate — no transaction committed"));
        }
        if r.pushed != r.delivered + r.dropped {
            failures.push(format!(
                "{tag}: ledger leak — pushed {} but delivered {} + dropped {}",
                r.pushed, r.delivered, r.dropped
            ));
        }
        if r.dropped != 0 {
            failures.push(format!(
                "{tag}: {} message(s) dropped; every reconfiguration epoch must drain its rings",
                r.dropped
            ));
        }
        if r.heap_allocs != 0 {
            failures.push(format!(
                "{tag}: {} Rust-heap allocation(s) in the post-commit steady state",
                r.heap_allocs
            ));
        }
        if r.substrate_allocs != 0 {
            failures.push(format!(
                "{tag}: {} substrate allocation(s) in the post-commit steady state",
                r.substrate_allocs
            ));
        }
        if r.deadline_misses != 0 {
            failures.push(format!(
                "{tag}: {} deadline miss(es) under the baseline contract",
                r.deadline_misses
            ));
        }
        if !r.rollback_identical {
            failures.push(format!(
                "{tag}: the refused probe transaction did not restore the shards byte-identically"
            ));
        }
    }
    failures
}

/// Renders the reconfiguration-gate rows as an aligned table.
pub fn reconfig_gate_table(rows: &[ReconfigGateRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "reconfig gate: live parallel transactions under traffic \
         (pushed == delivered, zero-alloc steady state, byte-identical rollback)\n",
    );
    let _ = writeln!(
        out,
        "{:<12} {:>5} {:>8} {:>10} {:>8} {:>6} {:>10} {:>7}  rollback",
        "mode", "txns", "pushed", "delivered", "dropped", "heap", "substrate", "misses"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>5} {:>8} {:>10} {:>8} {:>6} {:>10} {:>7}  {}",
            r.mode,
            r.transactions,
            r.pushed,
            r.delivered,
            r.dropped,
            r.heap_allocs,
            r.substrate_allocs,
            r.deadline_misses,
            if r.rollback_identical {
                "byte-identical"
            } else {
                "DIVERGED"
            }
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Synthetic pipelines (ablation: overhead vs. pipeline depth)
// ---------------------------------------------------------------------------

/// Builds an `stages`-deep asynchronous relay pipeline (periodic head, then
/// `stages` sporadic relays, all NHRT in immortal memory) and returns the
/// running system. Used by the scaling ablation bench and tests.
///
/// # Errors
///
/// Propagates design or build errors (none expected for valid inputs).
pub fn build_relay_pipeline(
    stages: usize,
    mode: Mode,
) -> HarnessResult<soleil::runtime::Deployment<u64>> {
    use soleil::prelude::*;

    let mut b = BusinessView::new(format!("relay-{stages}"));
    b.active_periodic("stage0", "10ms")?;
    b.content("stage0", "Relay")?;
    for i in 1..=stages {
        let name = format!("stage{i}");
        b.active_sporadic(&name)?;
        b.content(&name, "Relay")?;
    }
    for i in 0..stages {
        let (from, to) = (format!("stage{i}"), format!("stage{}", i + 1));
        b.require(&from, "out", "I")?;
        b.provide(&to, "in", "I")?;
        b.bind_async(&from, "out", &to, "in", 4)?;
    }
    let mut flow = DesignFlow::new(b);
    let members: Vec<String> = (0..=stages).map(|i| format!("stage{i}")).collect();
    let member_refs: Vec<&str> = members.iter().map(String::as_str).collect();
    flow.thread_domain("nhrt", ThreadKind::NoHeapRealtime, 30, &member_refs)?;
    flow.memory_area("imm", MemoryKind::Immortal, Some(1 << 20), &["nhrt"])?;
    let arch = flow.merge()?;

    #[derive(Debug)]
    struct Relay {
        out: soleil::membrane::content::InternedPort,
    }
    impl Default for Relay {
        fn default() -> Self {
            Relay {
                out: soleil::membrane::content::InternedPort::new("out"),
            }
        }
    }
    impl Content<u64> for Relay {
        fn on_invoke(&mut self, _p: &str, msg: &mut u64, out: &mut dyn Ports<u64>) -> InvokeResult {
            *msg = msg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match self.out.send(out, *msg) {
                Ok(()) => Ok(()),
                // The tail stage has no outgoing binding.
                Err(FrameworkError::Binding(_)) => Ok(()),
                Err(e) => Err(e),
            }
        }
    }
    let mut registry: ContentRegistry<u64> = ContentRegistry::new();
    registry.register("Relay", || Box::new(Relay::default()));
    Ok(deploy(&arch.into_validated()?, mode, &registry)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_runner_produces_all_rows() {
        let rows = run_overhead(50, 200).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].label, "OO");
        for r in &rows {
            assert_eq!(r.samples.len(), 200);
            assert!(r.samples.summary().is_some());
        }
        let table = fig7b_table(&rows);
        assert!(table.contains("SOLEIL"));
        assert!(table.contains("median"));
        let hist = fig7a_report(&rows, 10);
        assert!(hist.contains("ULTRA-MERGE"));
    }

    #[test]
    fn footprint_runner_matches_paper_shape() {
        let reports = run_footprint().unwrap();
        assert_eq!(reports.len(), 4);
        let by_label = |l: &str| {
            reports
                .iter()
                .find(|r| r.label == l)
                .unwrap_or_else(|| panic!("missing {l}"))
        };
        let oo = by_label("OO");
        let soleil = by_label("SOLEIL");
        let merge = by_label("MERGE-ALL");
        let ultra = by_label("ULTRA-MERGE");
        // Shape: SOLEIL >> MERGE-ALL > ULTRA-MERGE; SOLEIL biggest overhead.
        assert!(soleil.framework_bytes > merge.framework_bytes);
        assert!(merge.framework_bytes > ultra.framework_bytes);
        assert!(soleil.overhead_vs(oo) > merge.overhead_vs(oo));
        let table = fig7c_table(&reports);
        assert!(table.contains("overhead vs OO"));
    }

    #[test]
    fn codegen_runner_matches_paper_claims() {
        let rows = run_codegen().unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].units > rows[1].units && rows[1].units > rows[2].units);
        assert_eq!(rows[2].units, 1, "ULTRA-MERGE is one unit");
        assert!(rows[0].membrane_reconfig && !rows[1].membrane_reconfig);
        assert!(rows[1].functional_reconfig && !rows[2].functional_reconfig);
        let table = codegen_table(&rows);
        assert!(table.contains("indirections"));
    }

    #[test]
    fn relay_pipeline_runs_at_every_depth_and_mode() {
        for stages in [1usize, 3, 8] {
            for mode in [Mode::Soleil, Mode::MergeAll, Mode::UltraMerge] {
                let mut sys = build_relay_pipeline(stages, mode).unwrap();
                let head = sys.resolve("stage0").unwrap();
                for _ in 0..10 {
                    sys.run_transaction(head).unwrap();
                }
                let st = sys.stats();
                assert_eq!(st.transactions, 10);
                // One activation per stage (head + N relays) per transaction.
                assert_eq!(st.activations, 10 * (stages as u64 + 1));
                assert_eq!(st.dropped_messages, 0);
            }
        }
    }

    #[test]
    fn steady_state_json_threads_the_real_observation_count() {
        // Regression: the artifact used to be emitted with a count baked
        // into the caller; the JSON must reflect whatever was measured.
        let rows = vec![
            SteadyStateRow {
                label: "OO".into(),
                median_ns: 1200,
                allocs_per_transaction: 0.0,
                substrate_allocs_per_transaction: 0.0,
                string_compares_per_transaction: 0.0,
                arc_clones_per_transaction: 0.0,
                deadline_misses: 0,
            },
            SteadyStateRow {
                label: "PARALLEL".into(),
                median_ns: 900,
                allocs_per_transaction: 0.0,
                substrate_allocs_per_transaction: 0.0,
                string_compares_per_transaction: 0.0,
                arc_clones_per_transaction: 0.0,
                deadline_misses: 0,
            },
        ];
        let json = steady_state_json(&rows, 1234);
        assert!(json.contains("\"observations\": 1234"), "{json}");
        assert!(json.contains("\"mode\": \"PARALLEL\""), "{json}");
        assert!(
            json.contains("\"median_ns_per_transaction\": 900"),
            "{json}"
        );
        assert!(
            json.contains("\"string_compares_per_transaction\": 0"),
            "{json}"
        );
        assert!(json.contains("\"arc_clones_per_transaction\": 0"), "{json}");
        assert!(json.contains("\"deadline_misses\": 0"), "{json}");
        let other = steady_state_json(&rows, 77);
        assert!(other.contains("\"observations\": 77"), "{other}");
    }

    #[test]
    fn regression_gate_separates_pass_from_fail() {
        let committed = r#"{
  "benchmark": "steady_state_transaction",
  "observations": 100,
  "modes": [
    {"mode": "SOLEIL", "median_ns_per_transaction": 1000, "allocs_per_transaction": 0, "substrate_allocs_per_transaction": 0},
    {"mode": "MERGE-ALL", "median_ns_per_transaction": 1000, "allocs_per_transaction": 0, "substrate_allocs_per_transaction": 0},
    {"mode": "PARALLEL", "median_ns_per_transaction": 500, "allocs_per_transaction": 0, "substrate_allocs_per_transaction": 0}
  ]
}"#;
        let row = |label: &str, median_ns: u64, allocs: f64| SteadyStateRow {
            label: label.into(),
            median_ns,
            allocs_per_transaction: allocs,
            substrate_allocs_per_transaction: 0.0,
            string_compares_per_transaction: 0.0,
            arc_clones_per_transaction: 0.0,
            deadline_misses: 0,
        };

        // Within threshold, allocation-free, all modes present: clean.
        let fresh = vec![
            row("SOLEIL", 1249, 0.0),
            row("MERGE-ALL", 900, 0.0),
            row("PARALLEL", 500, 0.0),
        ];
        assert!(steady_state_regressions(committed, &fresh, 25.0)
            .unwrap()
            .is_empty());

        // A >25% median regression, a non-zero alloc count and a missing
        // mode each produce a failure line.
        let fresh = vec![row("SOLEIL", 1300, 0.0), row("MERGE-ALL", 900, 0.5)];
        let failures = steady_state_regressions(committed, &fresh, 25.0).unwrap();
        assert_eq!(failures.len(), 3, "{failures:?}");
        assert!(failures[0].contains("SOLEIL") && failures[0].contains("regressed"));
        assert!(failures[1].contains("PARALLEL") && failures[1].contains("missing"));
        assert!(failures[2].contains("MERGE-ALL") && failures[2].contains("Rust-heap"));

        // A mode newer than the committed artifact has no median baseline,
        // but its allocation discipline is still gated.
        let fresh = vec![
            row("SOLEIL", 1000, 0.0),
            row("MERGE-ALL", 1000, 0.0),
            row("PARALLEL", 500, 0.0),
            row("NEW-MODE", 10, 2.0),
        ];
        let failures = steady_state_regressions(committed, &fresh, 25.0).unwrap();
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("NEW-MODE") && failures[0].contains("Rust-heap"));

        // A malformed artifact fails loudly, never silently passes.
        assert!(steady_state_regressions("{}", &fresh, 25.0).is_err());
        assert!(steady_state_regressions("not json", &fresh, 25.0).is_err());
    }

    #[test]
    fn regression_gate_catches_dispatch_counter_and_lead_regressions() {
        let committed = r#"{
  "benchmark": "steady_state_transaction",
  "observations": 100,
  "modes": [
    {"mode": "SOLEIL", "median_ns_per_transaction": 1000, "allocs_per_transaction": 0, "substrate_allocs_per_transaction": 0},
    {"mode": "MERGE-ALL", "median_ns_per_transaction": 1000, "allocs_per_transaction": 0, "substrate_allocs_per_transaction": 0}
  ]
}"#;
        let row = |label: &str, median_ns: u64, compares: f64, arcs: f64| SteadyStateRow {
            label: label.into(),
            median_ns,
            allocs_per_transaction: 0.0,
            substrate_allocs_per_transaction: 0.0,
            string_compares_per_transaction: compares,
            arc_clones_per_transaction: arcs,
            deadline_misses: 0,
        };

        // A deadline miss is its own failure line, even with every other
        // counter clean.
        let mut missed = row("SOLEIL", 1000, 0.0, 0.0);
        missed.deadline_misses = 2;
        let fresh = vec![missed, row("MERGE-ALL", 1000, 0.0, 0.0)];
        let failures = steady_state_regressions(committed, &fresh, 25.0).unwrap();
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(
            failures[0].contains("SOLEIL") && failures[0].contains("deadline miss"),
            "{failures:?}"
        );

        // MERGE-ALL within its committed threshold (1000 → 990) yet
        // behind SOLEIL by more than the 5% lead noise: the lead gate must
        // still fire — that's exactly the regression the committed-median
        // comparison alone cannot see.
        let fresh = vec![
            row("SOLEIL", 900, 0.0, 0.0),
            row("MERGE-ALL", 990, 0.0, 0.0),
        ];
        let failures = steady_state_regressions(committed, &fresh, 25.0).unwrap();
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(
            failures[0].contains("MERGE-ALL") && failures[0].contains("lead"),
            "{failures:?}"
        );

        // Non-zero dispatch counters each produce a failure line, even
        // when every median is fine.
        let fresh = vec![
            row("SOLEIL", 1000, 3.0, 0.0),
            row("MERGE-ALL", 900, 0.0, 1.0),
        ];
        let failures = steady_state_regressions(committed, &fresh, 25.0).unwrap();
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains("SOLEIL") && failures[0].contains("string compares"));
        assert!(failures[1].contains("MERGE-ALL") && failures[1].contains("Arc clones"));

        // At exactly the noise boundary the lead gate stays quiet.
        let fresh = vec![
            row("SOLEIL", 1000, 0.0, 0.0),
            row("MERGE-ALL", 1050, 0.0, 0.0),
        ];
        assert!(steady_state_regressions(committed, &fresh, 25.0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn regression_gate_accepts_the_committed_artifact() {
        // The committed artifact must always gate against itself: a
        // re-run reproducing identical numbers passes by construction.
        let committed = include_str!("../../../BENCH_steady_state.json");
        let doc = soleil::core::json::parse(committed).expect("committed artifact parses");
        let fresh: Vec<SteadyStateRow> = doc
            .get("modes")
            .and_then(|m| m.as_array())
            .expect("modes array")
            .iter()
            .map(|e| SteadyStateRow {
                label: e.get("mode").and_then(|v| v.as_str()).unwrap().to_string(),
                median_ns: e
                    .get("median_ns_per_transaction")
                    .and_then(|v| v.as_u64())
                    .unwrap(),
                allocs_per_transaction: 0.0,
                substrate_allocs_per_transaction: 0.0,
                string_compares_per_transaction: 0.0,
                arc_clones_per_transaction: 0.0,
                deadline_misses: 0,
            })
            .collect();
        assert!(steady_state_regressions(committed, &fresh, 25.0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn parallel_steady_row_reports_motivation_shards() {
        let row = run_parallel_steady(50, 200, || 0).unwrap();
        assert_eq!(row.label, "PARALLEL");
        assert_eq!(row.substrate_allocs_per_transaction, 0.0);
        assert_eq!(row.deadline_misses, 0, "generous contract must hold");
    }

    #[test]
    fn determinism_runner_shows_gc_contrast() {
        let rows = run_determinism(1_000).unwrap();
        assert_eq!(rows.len(), 4);
        let nhrt: Vec<_> = rows.iter().filter(|r| r.label.contains("NHRT")).collect();
        let reg: Vec<_> = rows
            .iter()
            .filter(|r| r.label.contains("Regular"))
            .collect();
        for r in &nhrt {
            assert_eq!(r.deadline_misses, 0, "NHRT stage {} immune to GC", r.stage);
            assert_eq!(
                r.jitter,
                RelativeTime::ZERO,
                "NHRT stage {} is flat",
                r.stage
            );
        }
        let reg_misses: u64 = reg.iter().map(|r| r.deadline_misses).sum();
        assert!(
            reg_misses > 0,
            "regular deployment must miss deadlines under GC"
        );
        let reg_worst = reg.iter().map(|r| r.max).max().unwrap();
        let nhrt_worst = nhrt.iter().map(|r| r.max).max().unwrap();
        assert!(
            reg_worst > nhrt_worst * 10,
            "GC dominates the regular worst case"
        );
    }

    #[test]
    fn chaos_gate_conserves_and_explains() {
        let rows = run_chaos_gate(&[7, 0xDEAD_BEEF], 60).unwrap();
        assert_eq!(rows.len(), 6, "two seeds x three modes");
        let failures = chaos_gate_failures(&rows);
        assert!(failures.is_empty(), "chaos gate failed: {failures:?}");
        assert!(
            rows.iter().all(|r| r.faults_contained > 0),
            "every storm must actually inject"
        );
        assert!(
            rows.iter().any(|r| r.restarts > 0),
            "the supervised-restart path must exercise"
        );
        let table = chaos_gate_table(&rows);
        assert!(table.contains("SOL-020") || table.contains('-'));
    }

    #[test]
    fn recovery_gate_recovers_warm_within_budget() {
        let rows = run_recovery_gate(&[11, 0xC0FF_EE00, 42], 120).unwrap();
        assert_eq!(rows.len(), 9, "three seeds x three modes");
        let failures = recovery_gate_failures(&rows);
        assert!(failures.is_empty(), "recovery gate failed: {failures:?}");
        assert!(
            rows.iter().all(|r| r.restarts > 0),
            "every campaign must exercise the restart path"
        );
        assert!(
            rows.iter()
                .all(|r| r.elapsed_virtual >= RelativeTime::from_millis(10 * 120)),
            "virtual time must cover the release quanta plus injected spikes"
        );
        let table = recovery_gate_table(&rows);
        assert!(table.contains(RECOVERY_TREE));
    }

    #[test]
    fn recovery_gate_failures_catch_cooked_rows() {
        let mut rows = run_recovery_gate(&[11], 60).unwrap();
        rows[0].seq_regressions = 3; // simulate a cold restart
        rows[1].sol023_path = Some("ProductionLine -> AuditLog".into());
        rows[2].ledger_balanced = false;
        let failures = recovery_gate_failures(&rows);
        assert!(failures.iter().any(|f| f.contains("warm state")));
        assert!(failures.iter().any(|f| f.contains("declared tree")));
        assert!(failures.iter().any(|f| f.contains("ledger")));
    }

    #[test]
    fn reconfig_gate_conserves_and_rolls_back() {
        let rows = run_reconfig_gate(4, 10, || 0).unwrap();
        assert_eq!(rows.len(), 2, "SOLEIL and MERGE-ALL");
        let failures = reconfig_gate_failures(&rows);
        assert!(failures.is_empty(), "reconfig gate failed: {failures:?}");
        assert!(
            rows.iter().all(|r| r.pushed > 0),
            "the gate must actually push traffic"
        );
        let table = reconfig_gate_table(&rows);
        assert!(table.contains("byte-identical"));
    }

    #[test]
    fn reconfig_gate_failures_catch_a_cooked_row() {
        let mut rows = run_reconfig_gate(2, 10, || 0).unwrap();
        rows[0].pushed += 1; // simulate a silently lost message
        rows[1].rollback_identical = false;
        let failures = reconfig_gate_failures(&rows);
        assert!(failures.iter().any(|f| f.contains("ledger leak")));
        assert!(failures.iter().any(|f| f.contains("byte-identically")));
    }

    #[test]
    fn chaos_gate_failures_catch_a_cooked_ledger() {
        let mut rows = run_chaos_gate(&[7], 30).unwrap();
        rows[0].pushed += 1; // simulate a silently lost message
        rows[1].quarantined.push("ghost".into());
        let failures = chaos_gate_failures(&rows);
        assert!(failures.iter().any(|f| f.contains("ledger leak")));
        assert!(failures.iter().any(|f| f.contains("ghost")));
    }
}
