//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p soleil-bench --release --bin reproduce            # everything
//! cargo run -p soleil-bench --release --bin reproduce -- fig7a   # one artifact
//! ```
//!
//! Artifacts: `fig7a`, `fig7b`, `fig7c`, `codegen` (E4), `determinism`
//! (E5), `steady` (the zero-allocation perf gate, emitting
//! `BENCH_steady_state.json`), `steady-gate` (CI regression gate: re-runs
//! the steady measurement and exits non-zero when any mode's median
//! regresses >25% vs the committed artifact, when allocs, string compares
//! or Arc clones per transaction leave 0, when the baseline scenario's
//! deadline contract records a miss, or when MERGE-ALL's median falls
//! behind SOLEIL's by more than noise; never part of `all`), `chaos-gate`
//! (fault-containment gate: deterministic seeded fault storms against all
//! three modes must end with `pushed == delivered + counted-dropped` and
//! every quarantine/drop verdict explained by SOL-020…022; exits non-zero
//! otherwise, never part of `all`), `reconfig-gate` (live-reconfiguration
//! gate: N committed transactions — cross-ring rebinds, domain
//! re-assignments with region re-homing, policy swaps — against a running
//! parallel deployment under traffic must conserve every message, keep the
//! post-commit steady state allocation-free, miss no deadline and restore
//! a refused probe transaction byte-identically, while ULTRA-MERGE refuses
//! to reconfigure at all; exits non-zero otherwise, never part of `all`),
//! `recovery-gate` (supervision-tree gate: seeded virtual-time fault
//! campaigns against all three modes must recover every quarantine within
//! the declared backoff budget, witness warm state across at least one
//! checkpointed restart, record the declared escalation path as SOL-023
//! and balance the conservation ledger at quiescence; exits non-zero
//! otherwise, never part of `all`), `all` (default). Raw observation CSVs
//! are written to `target/experiments/`.
//!
//! `--observations N` overrides the number of measured iterations (the
//! same count is threaded into the emitted JSON, never hardcoded):
//!
//! ```text
//! cargo run -p soleil-bench --release --bin reproduce -- steady --observations 5000
//! ```

use std::fs;
use std::path::Path;

use soleil::SoleilError;

use soleil_bench::{
    chaos_gate_failures, chaos_gate_table, codegen_table, determinism_table, fig7a_report,
    fig7b_table, fig7c_table, reconfig_gate_failures, reconfig_gate_table, recovery_gate_failures,
    recovery_gate_table, run_chaos_gate, run_codegen, run_determinism, run_footprint, run_overhead,
    run_reconfig_gate, run_recovery_gate, run_steady_state, steady_state_json,
    steady_state_regressions,
};

// Installs the counting global allocator so the steady artifact can report
// allocs/transaction.
#[path = "../alloc_probe.rs"]
mod alloc_probe;

const DEFAULT_OBSERVATIONS: usize = 10_000;
const WARMUP: usize = 2_000;

fn main() -> Result<(), SoleilError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut what: Option<String> = None;
    let mut observations = DEFAULT_OBSERVATIONS;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--observations" {
            let value = it.next().and_then(|v| v.parse::<usize>().ok());
            match value {
                Some(n) if n > 0 => observations = n,
                _ => {
                    eprintln!("--observations expects a positive integer");
                    std::process::exit(2);
                }
            }
        } else if what.is_none() {
            what = Some(arg);
        } else {
            eprintln!("unexpected argument '{arg}'");
            std::process::exit(2);
        }
    }
    let what = what.as_deref().unwrap_or("all");
    let out_dir = Path::new("target/experiments");
    fs::create_dir_all(out_dir)?;

    let wants = |k: &str| what == "all" || what == k;
    let mut ran = false;

    if wants("fig7a") || wants("fig7b") {
        eprintln!(
            "running overhead benchmark ({observations} observations x 4 implementations)..."
        );
        let rows = run_overhead(WARMUP, observations)?;
        if wants("fig7a") {
            let report = fig7a_report(&rows, 24);
            println!("{report}");
            fs::write(out_dir.join("fig7a.txt"), &report)?;
            for r in &rows {
                let name = format!("fig7a_{}.csv", r.label.to_lowercase().replace('-', "_"));
                fs::write(out_dir.join(name), r.samples.to_csv())?;
            }
            ran = true;
        }
        if wants("fig7b") {
            let table = fig7b_table(&rows);
            println!("{table}");
            fs::write(out_dir.join("fig7b.txt"), &table)?;
            ran = true;
        }
    }

    if wants("fig7c") {
        let reports = run_footprint()?;
        let table = fig7c_table(&reports);
        println!("{table}");
        fs::write(out_dir.join("fig7c.txt"), &table)?;
        ran = true;
    }

    if wants("codegen") {
        let rows = run_codegen()?;
        let table = codegen_table(&rows);
        println!("{table}");
        fs::write(out_dir.join("codegen.txt"), &table)?;
        // Full generated-source listings per mode (the E4 artifact).
        let arch = soleil::scenario::motivation_validated()?;
        let spec = soleil::generator::compile(&arch)?;
        for mode in [
            soleil::runtime::Mode::Soleil,
            soleil::runtime::Mode::MergeAll,
            soleil::runtime::Mode::UltraMerge,
        ] {
            let listing = soleil::generator::emit_source(&spec, mode).render();
            let name = format!(
                "generated_{}.rs.txt",
                mode.to_string().to_lowercase().replace('-', "_")
            );
            fs::write(out_dir.join(name), listing)?;
        }
        ran = true;
    }

    if wants("steady") {
        eprintln!(
            "running steady-state perf gate ({observations} observations x 5 implementations)..."
        );
        let rows = run_steady_state(WARMUP, observations, alloc_probe::allocations)?;
        println!(
            "steady-state transaction (median ns, allocs/txn, substrate allocs/txn, \
             string compares/txn, Arc clones/txn, deadline misses):"
        );
        for r in &rows {
            println!(
                "  {:<12} {:>10} ns   {:>6} heap   {:>6} substrate   {:>6} compares   {:>6} arcs   {:>6} misses",
                r.label,
                r.median_ns,
                r.allocs_per_transaction,
                r.substrate_allocs_per_transaction,
                r.string_compares_per_transaction,
                r.arc_clones_per_transaction,
                r.deadline_misses
            );
        }
        let json = steady_state_json(&rows, observations);
        fs::write("BENCH_steady_state.json", &json)?;
        fs::write(out_dir.join("BENCH_steady_state.json"), &json)?;
        eprintln!("wrote BENCH_steady_state.json");
        ran = true;
    }

    // The CI regression gate: never part of `all` (it needs the committed
    // artifact as its baseline and fails the process on regression).
    if what == "steady-gate" {
        let committed = fs::read_to_string("BENCH_steady_state.json").map_err(|e| {
            SoleilError::Framework(format!(
                "cannot read committed BENCH_steady_state.json: {e}"
            ))
        })?;
        eprintln!(
            "running steady-state regression gate ({observations} observations x 5 implementations)..."
        );
        let rows = run_steady_state(WARMUP, observations, alloc_probe::allocations)?;
        println!(
            "steady-state transaction (median ns, allocs/txn, substrate allocs/txn, \
             string compares/txn, Arc clones/txn, deadline misses):"
        );
        for r in &rows {
            println!(
                "  {:<12} {:>10} ns   {:>6} heap   {:>6} substrate   {:>6} compares   {:>6} arcs   {:>6} misses",
                r.label,
                r.median_ns,
                r.allocs_per_transaction,
                r.substrate_allocs_per_transaction,
                r.string_compares_per_transaction,
                r.arc_clones_per_transaction,
                r.deadline_misses
            );
        }
        // Re-emit the fresh artifact next to the raw data (the committed
        // file stays the baseline; refresh it with `steady`).
        fs::write(
            out_dir.join("BENCH_steady_state.fresh.json"),
            steady_state_json(&rows, observations),
        )?;
        const THRESHOLD_PCT: f64 = 25.0;
        let failures = steady_state_regressions(&committed, &rows, THRESHOLD_PCT)?;
        if failures.is_empty() {
            eprintln!(
                "steady-state gate passed: no mode regressed >{THRESHOLD_PCT}% vs the \
                 committed artifact; allocs, string compares and Arc clones per \
                 transaction are 0 everywhere; no deadline miss under the baseline \
                 contract; MERGE-ALL kept its lead on SOLEIL"
            );
        } else {
            eprintln!("steady-state gate FAILED:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        ran = true;
    }

    // The fault-containment gate: deterministic seeded storms against
    // every generation mode must end with a balanced ledger (pushed ==
    // delivered + counted-dropped) and every verdict explained. Like
    // `steady-gate`, it fails the process and is never part of `all`.
    if what == "chaos-gate" {
        const SEEDS: [u64; 3] = [7, 0xDEAD_BEEF, 0x5EED_CAFE];
        const STORM_TICKS: u64 = 200;
        eprintln!(
            "running chaos gate ({} seeds x 3 modes x {STORM_TICKS} ticks)...",
            SEEDS.len()
        );
        // Injected panics are caught at the activation boundary; keep the
        // default hook from spraying backtraces over the artifact.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let rows = run_chaos_gate(&SEEDS, STORM_TICKS);
        std::panic::set_hook(hook);
        let rows = rows?;
        let table = chaos_gate_table(&rows);
        println!("{table}");
        fs::write(out_dir.join("chaos_gate.txt"), &table)?;
        let failures = chaos_gate_failures(&rows);
        if failures.is_empty() {
            eprintln!(
                "chaos gate passed: every storm conserved its messages and every \
                 quarantine/drop verdict is explained by SOL-020…022"
            );
        } else {
            eprintln!("chaos gate FAILED:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        ran = true;
    }

    // The live-reconfiguration gate: committed transactions against a
    // running parallel deployment must conserve traffic, stay
    // allocation-free afterwards and roll a refused probe back
    // byte-identically. Like the other gates, it fails the process and is
    // never part of `all`.
    if what == "reconfig-gate" {
        const TRANSACTIONS: usize = 8;
        const TICKS_PER_TXN: u64 = 20;
        eprintln!(
            "running reconfiguration gate ({TRANSACTIONS} transactions x \
             {TICKS_PER_TXN} ticks, 2 modes + ULTRA-MERGE refusal)..."
        );
        let rows = run_reconfig_gate(TRANSACTIONS, TICKS_PER_TXN, alloc_probe::allocations)?;
        let table = reconfig_gate_table(&rows);
        println!("{table}");
        fs::write(out_dir.join("reconfig_gate.txt"), &table)?;
        let failures = reconfig_gate_failures(&rows);
        if failures.is_empty() {
            eprintln!(
                "reconfiguration gate passed: every transaction committed with exact \
                 message conservation, the post-commit steady state is \
                 allocation-free, the refused probe rolled back byte-identically \
                 and ULTRA-MERGE refused to reconfigure"
            );
        } else {
            eprintln!("reconfiguration gate FAILED:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        ran = true;
    }

    // The supervision-tree recovery gate: seeded virtual-time fault
    // campaigns must recover bounded and warm. Like the other gates, it
    // fails the process and is never part of `all`.
    if what == "recovery-gate" {
        const SEEDS: [u64; 3] = [11, 0xC0FF_EE00, 0x5EED_0042];
        const STORM_TICKS: u64 = 200;
        eprintln!(
            "running recovery gate ({} seeds x 3 modes x {STORM_TICKS} ticks, virtual time)...",
            SEEDS.len()
        );
        // Injected panics are caught at the activation boundary; keep the
        // default hook from spraying backtraces over the artifact.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let rows = run_recovery_gate(&SEEDS, STORM_TICKS);
        std::panic::set_hook(hook);
        let rows = rows?;
        let table = recovery_gate_table(&rows);
        println!("{table}");
        fs::write(out_dir.join("recovery_gate.txt"), &table)?;
        let failures = recovery_gate_failures(&rows);
        if failures.is_empty() {
            eprintln!(
                "recovery gate passed: every quarantine recovered within the declared \
                 budget of virtual time, warm state survived every checkpointed \
                 restart, SOL-023 matches the declared supervision tree and the \
                 conservation ledger balances at quiescence"
            );
        } else {
            eprintln!("recovery gate FAILED:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        ran = true;
    }

    if wants("determinism") {
        let rows = run_determinism(2_000)?;
        let table = determinism_table(&rows);
        println!("{table}");
        fs::write(out_dir.join("determinism.txt"), &table)?;
        ran = true;
    }

    if !ran {
        eprintln!(
            "unknown artifact '{what}'; expected fig7a | fig7b | fig7c | codegen | determinism | steady | steady-gate | chaos-gate | reconfig-gate | recovery-gate | all"
        );
        std::process::exit(2);
    }
    eprintln!("raw data written to {}", out_dir.display());
    Ok(())
}
