//! Property-based parity check for the compiled dispatch plan.
//!
//! The interned jump-table path (`PortId` → `[slot][id]` index) and the
//! legacy string-scan path must be observationally identical: same
//! functional results, same error texts, same engine counters — on random
//! architectures, random call scripts, in all three serial modes. The
//! script deliberately mixes bound ports, ports bound on a *different*
//! component (unbound here), names outside the deployment's intern
//! universe (string fallback), and protocol mismatches (call on an async
//! port, send on a sync port), so every cold path is compared too.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use rtsj::memory::MemoryKind;
use rtsj::thread::ThreadKind;
use rtsj::time::RelativeTime;
use soleil_membrane::content::{Content, ContentRegistry, InternedPort, InvokeResult, Ports};
use soleil_patterns::PatternKind;
use soleil_runtime::spec::{
    Activation, AreaSpec, BindingSpec, BufferPlacement, ComponentSpec, DomainSpec, ProtocolSpec,
    SystemSpec,
};
use soleil_runtime::{Mode, System};

/// Static pool of client-port names: `InternedPort::new` wants
/// `&'static str`, so the generated architectures draw from a fixed pool.
const SYNC_PORTS: [&str; 6] = ["p0", "p1", "p2", "p3", "p4", "p5"];
/// Async port from the hub to the sink.
const ASYNC_PORT: &str = "q0";
/// Bound by the spare component, never by the hub: exercises the
/// unbound-interned cold path.
const FOREIGN_PORT: &str = "px";
/// Outside the intern universe entirely: exercises the string fallback.
const GHOST_PORT: &str = "ghost0";

// `Payload` is blanket-implemented for any `Clone + Default + Debug + Send`.
#[derive(Debug, Clone, Default, PartialEq)]
struct Probe {
    value: i64,
}

type Log = Arc<Mutex<Vec<String>>>;

/// One scripted dispatch from the hub.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    Call(usize),
    Send(usize),
}

fn port_of(ix: usize) -> &'static str {
    match ix {
        0..=5 => SYNC_PORTS[ix],
        6 => ASYNC_PORT,
        7 => FOREIGN_PORT,
        _ => GHOST_PORT,
    }
}

/// The scripted hub, string-dispatch variant: executes every op via the
/// name path and records the outcome.
#[derive(Debug)]
struct StringHub {
    script: Vec<Op>,
    log: Log,
}
impl Content<Probe> for StringHub {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Probe,
        out: &mut dyn Ports<Probe>,
    ) -> InvokeResult {
        for op in &self.script {
            let outcome = match *op {
                Op::Call(ix) => out.call(port_of(ix), msg),
                Op::Send(ix) => out.send(port_of(ix), msg.clone()),
            };
            record(&self.log, *op, msg, outcome);
        }
        Ok(())
    }
}

/// The scripted hub, interned variant: same script, but every dispatch
/// goes through a memoized [`InternedPort`].
#[derive(Debug)]
struct InternedHub {
    script: Vec<Op>,
    ports: Vec<InternedPort>,
    log: Log,
}
impl Content<Probe> for InternedHub {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Probe,
        out: &mut dyn Ports<Probe>,
    ) -> InvokeResult {
        for op in &self.script {
            let outcome = match *op {
                Op::Call(ix) => self.ports[ix].call(out, msg),
                Op::Send(ix) => self.ports[ix].send(out, msg.clone()),
            };
            record(&self.log, *op, msg, outcome);
        }
        Ok(())
    }
}

fn record(log: &Log, op: Op, msg: &Probe, outcome: InvokeResult) {
    let text = match outcome {
        Ok(()) => format!("{op:?} value={} ok", msg.value),
        Err(e) => format!("{op:?} value={} err={e}", msg.value),
    };
    log.lock().unwrap().push(text);
}

/// Passive service `i`: adds a distinct increment so the log captures
/// which server actually ran.
#[derive(Debug)]
struct Adder {
    step: i64,
}
impl Content<Probe> for Adder {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Probe,
        _out: &mut dyn Ports<Probe>,
    ) -> InvokeResult {
        msg.value += self.step;
        Ok(())
    }
}

/// The async sink: records every drained message.
#[derive(Debug)]
struct Sink {
    log: Log,
}
impl Content<Probe> for Sink {
    fn on_invoke(
        &mut self,
        _port: &str,
        msg: &mut Probe,
        _out: &mut dyn Ports<Probe>,
    ) -> InvokeResult {
        self.log.lock().unwrap().push(format!("sink {}", msg.value));
        Ok(())
    }
}

/// A random-but-valid deployment: a periodic hub in immortal memory, a
/// sporadic sink behind an async binding, `n_services` passive adders in
/// immortal or scoped areas (scoped ⇒ EnterInner), and a spare passive
/// client owning [`FOREIGN_PORT`].
fn arch(n_services: usize, scoped: &[bool]) -> SystemSpec {
    let mut areas = vec![AreaSpec {
        name: "Imm".into(),
        kind: MemoryKind::Immortal,
        size: Some(512 * 1024),
        parent: None,
    }];
    let mut components = vec![
        ComponentSpec {
            name: "hub".into(),
            content_class: "Hub".into(),
            activation: Activation::Periodic {
                period: RelativeTime::from_millis(10),
            },
            domain: Some(0),
            area: 0,
            server_ports: vec![],
            ceiling: None,
        },
        ComponentSpec {
            name: "sink".into(),
            content_class: "Sink".into(),
            activation: Activation::Sporadic,
            domain: Some(0),
            area: 0,
            server_ports: vec!["in".into()],
            ceiling: None,
        },
    ];
    let mut bindings = vec![BindingSpec {
        client: 0,
        client_port: ASYNC_PORT.into(),
        server: 1,
        server_port: "in".into(),
        protocol: ProtocolSpec::Async {
            capacity: 64,
            placement: BufferPlacement::Immortal,
        },
        pattern: PatternKind::ImmortalExchange,
        enter_path: vec![],
    }];
    for i in 0..n_services {
        let area = if scoped[i] {
            areas.push(AreaSpec {
                name: format!("S{i}"),
                kind: MemoryKind::Scoped,
                size: Some(16 * 1024),
                parent: None,
            });
            areas.len() - 1
        } else {
            0
        };
        components.push(ComponentSpec {
            name: format!("svc{i}"),
            content_class: format!("Adder{i}"),
            activation: Activation::Passive,
            domain: None,
            area,
            server_ports: vec![format!("s{i}")],
            ceiling: None,
        });
        bindings.push(BindingSpec {
            client: 0,
            client_port: SYNC_PORTS[i].into(),
            server: components.len() - 1,
            server_port: format!("s{i}"),
            protocol: ProtocolSpec::Sync,
            pattern: if scoped[i] {
                PatternKind::EnterInner
            } else {
                PatternKind::Direct
            },
            enter_path: if scoped[i] { vec![area] } else { vec![] },
        });
    }
    if n_services > 0 {
        // The spare client binds FOREIGN_PORT so the name is in the intern
        // universe, yet the hub's row has no entry for it.
        components.push(ComponentSpec {
            name: "spare".into(),
            content_class: "Spare".into(),
            activation: Activation::Passive,
            domain: None,
            area: 0,
            server_ports: vec![],
            ceiling: None,
        });
        bindings.push(BindingSpec {
            client: components.len() - 1,
            client_port: FOREIGN_PORT.into(),
            server: 2,
            server_port: "s0".into(),
            protocol: ProtocolSpec::Sync,
            pattern: PatternKind::Direct,
            enter_path: vec![],
        });
    }
    SystemSpec {
        name: "parity".into(),
        areas,
        domains: vec![DomainSpec {
            name: "RT".into(),
            kind: ThreadKind::Realtime,
            priority: 20,
        }],
        components,
        bindings,
    }
}

fn registry(
    n_services: usize,
    script: Vec<Op>,
    interned: bool,
    log: Log,
) -> ContentRegistry<Probe> {
    let mut r = ContentRegistry::new();
    let hub_log = log.clone();
    if interned {
        r.register("Hub", move || {
            Box::new(InternedHub {
                script: script.clone(),
                ports: (0..=8).map(|ix| InternedPort::new(port_of(ix))).collect(),
                log: hub_log.clone(),
            })
        });
    } else {
        r.register("Hub", move || {
            Box::new(StringHub {
                script: script.clone(),
                log: hub_log.clone(),
            })
        });
    }
    let sink_log = log.clone();
    r.register("Sink", move || {
        Box::new(Sink {
            log: sink_log.clone(),
        })
    });
    for i in 0..n_services {
        r.register(format!("Adder{i}"), move || {
            Box::new(Adder {
                step: (i as i64 + 1) * 7,
            })
        });
    }
    r.register("Spare", || Box::new(Adder { step: 0 }));
    r
}

/// Runs the deployment with one dispatch variant and returns the ordered
/// event log plus the engine counters the paper's figures are built from.
fn run_variant(
    spec: &SystemSpec,
    mode: Mode,
    n_services: usize,
    script: &[Op],
    interned: bool,
    transactions: usize,
) -> (Vec<String>, String) {
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let reg = registry(n_services, script.to_vec(), interned, log.clone());
    let mut sys = System::build(spec, mode, &reg).expect("build");
    let head = sys.slot_of("hub").expect("hub slot");
    for _ in 0..transactions {
        sys.run_transaction(head).expect("scripted hub never fails");
    }
    let st = sys.stats();
    let counters = format!(
        "txn={} act={} sync={} async={} dropped={}",
        st.transactions, st.activations, st.sync_calls, st.async_messages, st.dropped_messages
    );
    let events = log.lock().unwrap().clone();
    (events, counters)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Index 0..9: sync services (0..6), async port (6), foreign (7), ghost (8).
    prop_oneof![
        (0usize..9).prop_map(Op::Call),
        (0usize..9).prop_map(Op::Send),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interned and string dispatch agree — events, errors and engine
    /// counters — on random architectures in every serial mode.
    #[test]
    fn interned_and_string_dispatch_agree(
        n_services in 0usize..7,
        scoped in proptest::collection::vec(prop_oneof![Just(false), Just(true)], 6..7),
        script in proptest::collection::vec(op_strategy(), 0..16),
        transactions in 1usize..4,
    ) {
        // Ops referencing services beyond n_services resolve to unbound
        // names on the hub — remap them into the ghost slot is NOT done:
        // they stay as-is precisely to compare the unbound error paths.
        let spec = arch(n_services, &scoped);
        spec.check().expect("generated spec is structurally valid");
        for mode in [Mode::Soleil, Mode::MergeAll, Mode::UltraMerge] {
            let (string_events, string_counters) =
                run_variant(&spec, mode, n_services, &script, false, transactions);
            let (interned_events, interned_counters) =
                run_variant(&spec, mode, n_services, &script, true, transactions);
            prop_assert_eq!(
                &interned_events, &string_events,
                "event logs diverged in {} (script {:?})", mode, script
            );
            prop_assert_eq!(
                &interned_counters, &string_counters,
                "counters diverged in {}", mode
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Parity across a rebind boundary
// ---------------------------------------------------------------------------

/// Builds the rebind fixture: a periodic hub whose sync port `p0` starts
/// bound to `svcA` (step 7) and is live-rebound to `svcB` (step 70), with
/// the matching architectural model so `Deployment::reconfigure` can
/// re-validate the transaction.
fn rebind_fixture(
    interned: bool,
    log: Log,
) -> (
    SystemSpec,
    soleil_core::Architecture,
    ContentRegistry<Probe>,
) {
    let spec = SystemSpec {
        name: "rebind-parity".into(),
        areas: vec![AreaSpec {
            name: "imm".into(),
            kind: MemoryKind::Immortal,
            size: Some(128 * 1024),
            parent: None,
        }],
        domains: vec![DomainSpec {
            name: "rt".into(),
            kind: ThreadKind::Realtime,
            priority: 20,
        }],
        components: vec![
            ComponentSpec {
                name: "hub".into(),
                content_class: "Hub".into(),
                activation: Activation::Periodic {
                    period: RelativeTime::from_millis(10),
                },
                domain: Some(0),
                area: 0,
                server_ports: vec![],
                ceiling: None,
            },
            ComponentSpec {
                name: "svcA".into(),
                content_class: "AdderA".into(),
                activation: Activation::Passive,
                domain: None,
                area: 0,
                server_ports: vec!["s".into()],
                ceiling: None,
            },
            ComponentSpec {
                name: "svcB".into(),
                content_class: "AdderB".into(),
                activation: Activation::Passive,
                domain: None,
                area: 0,
                server_ports: vec!["s".into()],
                ceiling: None,
            },
        ],
        bindings: vec![BindingSpec {
            client: 0,
            client_port: SYNC_PORTS[0].into(),
            server: 1,
            server_port: "s".into(),
            protocol: ProtocolSpec::Sync,
            pattern: PatternKind::Direct,
            enter_path: vec![],
        }],
    };

    let mut bv = soleil_core::views::BusinessView::new("rebind-parity");
    bv.active_periodic("hub", "10ms").unwrap();
    bv.passive("svcA").unwrap();
    bv.passive("svcB").unwrap();
    bv.content("hub", "Hub").unwrap();
    bv.content("svcA", "AdderA").unwrap();
    bv.content("svcB", "AdderB").unwrap();
    bv.require("hub", SYNC_PORTS[0], "I").unwrap();
    bv.provide("svcA", "s", "I").unwrap();
    bv.provide("svcB", "s", "I").unwrap();
    bv.bind_sync("hub", SYNC_PORTS[0], "svcA", "s").unwrap();
    let mut flow = soleil_core::views::DesignFlow::new(bv);
    flow.thread_domain("rt", rtsj::thread::ThreadKind::Realtime, 20, &["hub"])
        .unwrap();
    flow.memory_area(
        "imm",
        rtsj::memory::MemoryKind::Immortal,
        Some(128 * 1024),
        &["rt", "svcA", "svcB"],
    )
    .unwrap();
    let arch = flow
        .merge()
        .unwrap()
        .into_validated()
        .unwrap()
        .architecture()
        .clone();

    let script = vec![Op::Call(0)];
    let reg = {
        let mut r = ContentRegistry::new();
        let hub_log = log.clone();
        if interned {
            r.register("Hub", move || {
                Box::new(InternedHub {
                    script: script.clone(),
                    ports: (0..=8).map(|ix| InternedPort::new(port_of(ix))).collect(),
                    log: hub_log.clone(),
                })
            });
        } else {
            r.register("Hub", move || {
                Box::new(StringHub {
                    script: script.clone(),
                    log: hub_log.clone(),
                })
            });
        }
        r.register("AdderA", || Box::new(Adder { step: 7 }));
        r.register("AdderB", || Box::new(Adder { step: 70 }));
        r
    };
    (spec, arch, reg)
}

/// Runs transactions across a live rebind boundary with one dispatch
/// variant: pre-rebind activations hit `svcA`, then `p0` is rebound to
/// `svcB` and the same script runs again.
fn run_rebind_variant(mode: soleil_runtime::Mode, interned: bool) -> Vec<String> {
    use soleil_runtime::Deployment;
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let (spec, arch, reg) = rebind_fixture(interned, log.clone());
    let mut dep = Deployment::build(&spec, mode, &reg, arch).expect("build");
    let hub = dep.resolve("hub").unwrap();
    let svc_b = dep.resolve("svcB").unwrap();
    for _ in 0..3 {
        dep.run_transaction(hub).expect("pre-rebind transaction");
    }
    dep.reconfigure(|txn| txn.rebind(hub, SYNC_PORTS[0], svc_b))
        .expect("rebind commits");
    for _ in 0..3 {
        dep.run_transaction(hub).expect("post-rebind transaction");
    }
    let events = log.lock().unwrap().clone();
    events
}

/// Satellite regression: an [`InternedPort`] memo minted before a rebind
/// must not keep dispatching into the old server. Interned and string
/// dispatch must agree on every event across the rebind boundary, and the
/// post-rebind events must actually reach the new server.
#[test]
fn interned_dispatch_survives_a_rebind_boundary() {
    for mode in [soleil_runtime::Mode::Soleil, soleil_runtime::Mode::MergeAll] {
        let string_events = run_rebind_variant(mode, false);
        let interned_events = run_rebind_variant(mode, true);
        assert_eq!(
            interned_events, string_events,
            "{mode}: dispatch variants diverged across the rebind"
        );
        // 3 activations into svcA (+7 each), then 3 into svcB (+70 each):
        // a stale memo would keep printing value=7.
        let expect: Vec<String> = ["7", "7", "7", "70", "70", "70"]
            .iter()
            .map(|v| format!("Call(0) value={v} ok"))
            .collect();
        assert_eq!(interned_events, expect, "{mode}: rebind took effect");
    }
}
