//! Property-based checks for live reconfiguration of parallel deployments.
//!
//! Two properties, the parallel analogues of the serial transaction
//! guarantees:
//!
//! * **Equivalence** — a live partition taken through a random sequence of
//!   committed reconfiguration transactions (cross-ring rebinds, domain
//!   re-assignments, policy swaps), each interleaved with traffic, routes
//!   subsequent traffic exactly like a fresh deployment of the *final*
//!   topology, torn down and rebuilt from scratch: same per-consumer
//!   delivery counts, same conservation, same policies.
//! * **Atomicity** — a transaction carrying a random batch of operations
//!   that ends in an error leaves every shard engine byte-identical to its
//!   pre-transaction state (witnessed by the structural digests) and the
//!   traffic flowing exactly as before.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use rtsj::memory::MemoryKind;
use rtsj::thread::ThreadKind;
use rtsj::time::RelativeTime;
use soleil_membrane::content::{Content, ContentRegistry, InvokeResult, Ports};
use soleil_patterns::PatternKind;
use soleil_runtime::spec::{
    Activation, AreaSpec, BindingSpec, BufferPlacement, ComponentSpec, DomainSpec, ProtocolSpec,
    SystemSpec,
};
use soleil_runtime::{FaultPolicy, Mode, ParallelSystem};

type Counts = Arc<Mutex<HashMap<String, u64>>>;

/// Fans every message out on both client ports.
#[derive(Debug)]
struct Fan;
impl Content<u64> for Fan {
    fn on_invoke(&mut self, _p: &str, msg: &mut u64, out: &mut dyn Ports<u64>) -> InvokeResult {
        *msg += 1;
        out.send("out1", *msg)?;
        out.send("out2", *msg)
    }
}

/// Counts deliveries under its own name.
#[derive(Debug)]
struct Recorder {
    name: &'static str,
    counts: Counts,
}
impl Content<u64> for Recorder {
    fn on_invoke(&mut self, _p: &str, _msg: &mut u64, _out: &mut dyn Ports<u64>) -> InvokeResult {
        *self
            .counts
            .lock()
            .unwrap()
            .entry(self.name.into())
            .or_insert(0) += 1;
        Ok(())
    }
}

fn registry(counts: &Counts) -> ContentRegistry<u64> {
    let mut r = ContentRegistry::new();
    r.register("Fan", || Box::new(Fan));
    for name in ["consumerB", "consumerC"] {
        let c = counts.clone();
        r.register(name, move || {
            Box::new(Recorder {
                name,
                counts: c.clone(),
            })
        });
    }
    r
}

/// Producer in its own domain; two consumers whose domains are coupled
/// into one shard by a (never exercised) synchronous peer binding, so
/// same-shard domain re-assignment is legal. All areas immortal — they
/// replicate on every shard.
fn base_spec() -> SystemSpec {
    let area = |name: &str| AreaSpec {
        name: name.into(),
        kind: MemoryKind::Immortal,
        size: Some(256 * 1024),
        parent: None,
    };
    let consumer = |name: &str, class: &str, domain: usize, area: usize| ComponentSpec {
        name: name.into(),
        content_class: class.into(),
        activation: Activation::Sporadic,
        domain: Some(domain),
        area,
        server_ports: vec!["in".into()],
        ceiling: None,
    };
    let ring = |port: &str, server: usize| BindingSpec {
        client: 0,
        client_port: port.into(),
        server,
        server_port: "in".into(),
        protocol: ProtocolSpec::Async {
            capacity: 64,
            placement: BufferPlacement::Immortal,
        },
        pattern: PatternKind::ImmortalExchange,
        enter_path: vec![],
    };
    SystemSpec {
        name: "fan".into(),
        areas: vec![area("Imm1"), area("ImmB"), area("ImmC")],
        domains: vec![
            DomainSpec {
                name: "A".into(),
                kind: ThreadKind::NoHeapRealtime,
                priority: 30,
            },
            DomainSpec {
                name: "B".into(),
                kind: ThreadKind::NoHeapRealtime,
                priority: 25,
            },
            DomainSpec {
                name: "C".into(),
                kind: ThreadKind::Realtime,
                priority: 20,
            },
        ],
        components: vec![
            ComponentSpec {
                name: "producer".into(),
                content_class: "Fan".into(),
                activation: Activation::Periodic {
                    period: RelativeTime::from_millis(10),
                },
                domain: Some(0),
                area: 0,
                server_ports: vec![],
                ceiling: None,
            },
            consumer("consumerB", "consumerB", 1, 1),
            consumer("consumerC", "consumerC", 2, 2),
        ],
        bindings: vec![
            ring("out1", 1),
            ring("out2", 2),
            BindingSpec {
                client: 1,
                client_port: "peer".into(),
                server: 2,
                server_port: "in".into(),
                protocol: ProtocolSpec::Sync,
                pattern: PatternKind::Direct,
                enter_path: vec![],
            },
        ],
    }
}

/// One live reconfiguration operation, applied both to the running
/// partition and to the external model of the final topology.
#[derive(Debug, Clone, Copy)]
enum ReOp {
    /// Retarget `producer.out1` / `producer.out2` (ring rewiring).
    Rebind { port_ix: usize, server: usize },
    /// Re-seat consumerB onto domain "B" or "C" (same shard).
    MoveB { to_c: bool },
    /// Swap consumerC's supervision policy.
    Policy { isolate: bool },
}

fn op_strategy() -> impl Strategy<Value = ReOp> {
    prop_oneof![
        (0..2usize, 1..3usize).prop_map(|(port_ix, server)| ReOp::Rebind { port_ix, server }),
        (0..2usize).prop_map(|b| ReOp::MoveB { to_c: b == 1 }),
        (0..2usize).prop_map(|b| ReOp::Policy { isolate: b == 1 }),
    ]
}

const CONSUMERS: [&str; 2] = ["consumerB", "consumerC"];

/// Applies `op` to the external spec/policy model — the bookkeeping a
/// teardown-redeploy of the final topology is built from.
fn apply_to_model(op: ReOp, spec: &mut SystemSpec, policy_c: &mut FaultPolicy) {
    match op {
        ReOp::Rebind { port_ix, server } => spec.bindings[port_ix].server = server,
        ReOp::MoveB { to_c } => spec.components[1].domain = Some(if to_c { 2 } else { 1 }),
        ReOp::Policy { isolate } => {
            *policy_c = if isolate {
                FaultPolicy::Isolate
            } else {
                FaultPolicy::Escalate
            }
        }
    }
}

/// Applies `op` to the live partition through one reconfiguration
/// transaction.
fn apply_live(sys: &mut ParallelSystem<u64>, op: ReOp) {
    sys.reconfigure(|txn| match op {
        ReOp::Rebind { port_ix, server } => txn.rebind_async(
            "producer",
            if port_ix == 0 { "out1" } else { "out2" },
            CONSUMERS[server - 1],
        ),
        ReOp::MoveB { to_c } => txn.reassign_domain("consumerB", if to_c { "C" } else { "B" }),
        ReOp::Policy { isolate } => txn.set_fault_policy(
            "consumerC",
            if isolate {
                FaultPolicy::Isolate
            } else {
                FaultPolicy::Escalate
            },
        ),
    })
    .expect("every generated operation commits");
}

/// Runs `ticks` and returns the per-consumer delivery deltas.
fn measure(sys: &mut ParallelSystem<u64>, counts: &Counts, ticks: u64) -> HashMap<String, u64> {
    let before: HashMap<String, u64> = counts.lock().unwrap().clone();
    sys.run_ticks(ticks).unwrap();
    let after = counts.lock().unwrap().clone();
    CONSUMERS
        .iter()
        .map(|&name| {
            let b = before.get(name).copied().unwrap_or(0);
            (name.to_string(), after.get(name).copied().unwrap_or(0) - b)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A random sequence of committed live transactions, each under
    /// traffic, is observationally equivalent to tearing the system down
    /// and redeploying the final topology.
    #[test]
    fn live_reconfiguration_equals_teardown_redeploy(
        ops in proptest::collection::vec(op_strategy(), 0..6),
        mode_merge in 0..2usize,
    ) {
        let mode = if mode_merge == 1 { Mode::MergeAll } else { Mode::Soleil };

        // Live path: traffic between every transaction.
        let live_counts: Counts = Counts::default();
        let mut live =
            ParallelSystem::build(&base_spec(), mode, &registry(&live_counts)).unwrap();
        let mut final_spec = base_spec();
        let mut final_policy_c = FaultPolicy::Escalate;
        live.run_ticks(2).unwrap();
        for &op in &ops {
            apply_live(&mut live, op);
            apply_to_model(op, &mut final_spec, &mut final_policy_c);
            live.run_ticks(2).unwrap();
        }
        let live_delta = measure(&mut live, &live_counts, 10);

        // Redeploy path: a fresh build of the final topology.
        let fresh_counts: Counts = Counts::default();
        let mut fresh =
            ParallelSystem::build(&final_spec, mode, &registry(&fresh_counts)).unwrap();
        let fresh_delta = measure(&mut fresh, &fresh_counts, 10);

        prop_assert_eq!(&live_delta, &fresh_delta,
            "live partition and redeployed final topology route traffic identically");
        prop_assert_eq!(live.stats().dropped_messages, 0);
        prop_assert_eq!(fresh.stats().dropped_messages, 0);
        prop_assert_eq!(
            live.fault_policy("consumerC").unwrap(),
            final_policy_c,
            "policy swaps survive the sequence"
        );
        // Conservation: ten fan-outs of two messages, all delivered.
        prop_assert_eq!(live_delta.values().sum::<u64>(), 20);
    }

    /// A transaction carrying a random batch of operations that fails at
    /// the end rolls every shard back byte-identically.
    #[test]
    fn failed_transaction_rolls_back_byte_identically(
        ops in proptest::collection::vec(op_strategy(), 1..5),
        mode_merge in 0..2usize,
    ) {
        let mode = if mode_merge == 1 { Mode::MergeAll } else { Mode::Soleil };
        let counts: Counts = Counts::default();
        let mut sys = ParallelSystem::build(&base_spec(), mode, &registry(&counts)).unwrap();
        sys.run_ticks(3).unwrap();
        let digests = sys.structural_digests();
        let policy = sys.fault_policy("consumerC").unwrap();

        let err = sys
            .reconfigure(|txn| -> Result<(), soleil_membrane::FrameworkError> {
                for &op in &ops {
                    match op {
                        ReOp::Rebind { port_ix, server } => txn.rebind_async(
                            "producer",
                            if port_ix == 0 { "out1" } else { "out2" },
                            CONSUMERS[server - 1],
                        )?,
                        ReOp::MoveB { to_c } => {
                            txn.reassign_domain("consumerB", if to_c { "C" } else { "B" })?
                        }
                        ReOp::Policy { isolate } => txn.set_fault_policy(
                            "consumerC",
                            if isolate {
                                FaultPolicy::Isolate
                            } else {
                                FaultPolicy::Escalate
                            },
                        )?,
                    }
                }
                Err(soleil_membrane::FrameworkError::Content("refused".into()))
            })
            .unwrap_err();
        prop_assert_eq!(err.to_string(), "content error: refused");

        prop_assert_eq!(sys.structural_digests(), digests,
            "rollback restores every shard engine byte-identically");
        prop_assert_eq!(sys.fault_policy("consumerC").unwrap(), policy);

        // The restored topology routes exactly as the original.
        let delta = measure(&mut sys, &counts, 10);
        prop_assert_eq!(delta.get("consumerB").copied(), Some(10));
        prop_assert_eq!(delta.get("consumerC").copied(), Some(10));
        prop_assert_eq!(sys.stats().dropped_messages, 0);
    }
}
