//! Property-based check of the release-engine timer queue.
//!
//! The binary-heap queue must pop in exactly the order a sorted reference
//! model predicts — earliest absolute time first, ties broken by higher
//! priority, then FIFO by schedule sequence — across random interleavings
//! of schedules and cancellations, including cancels through deliberately
//! stale (already consumed) handles, which must be no-ops on both sides.

use proptest::prelude::*;
use rtsj::thread::Priority;
use rtsj::time::AbsoluteTime;
use soleil_runtime::{TimerHandle, TimerQueue};

/// One scripted queue operation. `Cancel(k)` disarms the k-th *live*
/// outstanding handle; `CancelStale(k)` replays the k-th already-consumed
/// handle (fired or cancelled earlier), which must be a no-op.
#[derive(Debug, Clone, Copy)]
enum Op {
    Schedule { at: u64, priority: u8 },
    Cancel(usize),
    CancelStale(usize),
    PopDue { now: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..64, 1u8..32).prop_map(|(at, priority)| Op::Schedule { at, priority }),
        (0u64..64, 1u8..32).prop_map(|(at, priority)| Op::Schedule { at, priority }),
        (0usize..64).prop_map(Op::Cancel),
        (0usize..64).prop_map(Op::CancelStale),
        (0u64..64).prop_map(|now| Op::PopDue { now }),
    ]
}

/// The reference model: a plain vector of armed entries, popped by an
/// explicit sort over (time, descending priority, schedule sequence).
#[derive(Debug)]
struct Model {
    armed: Vec<(u64, u8, u64)>, // (at, priority, seq)
    seq: u64,
}

impl Model {
    fn schedule(&mut self, at: u64, priority: u8) -> u64 {
        self.seq += 1;
        self.armed.push((at, priority, self.seq));
        self.seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        match self.armed.iter().position(|&(_, _, s)| s == seq) {
            Some(ix) => {
                self.armed.remove(ix);
                true
            }
            None => false,
        }
    }

    fn pop_due(&mut self, now: u64) -> Option<(u64, u8, u64)> {
        let best = self
            .armed
            .iter()
            .copied()
            .filter(|&(at, _, _)| at <= now)
            .min_by_key(|&(at, priority, seq)| (at, std::cmp::Reverse(priority), seq))?;
        self.cancel(best.2);
        Some(best)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Queue and model agree op-for-op: same fire order, same cancel
    /// verdicts, same armed census — and the preallocated capacity is
    /// never exceeded under churn.
    #[test]
    fn queue_matches_sorted_reference_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        const CAPACITY: usize = 16;
        let mut queue: TimerQueue<u64> = TimerQueue::with_capacity(CAPACITY);
        let mut model = Model { armed: Vec::new(), seq: 0 };
        // Live handles side by side with their model sequence numbers.
        let mut live: Vec<(TimerHandle, u64)> = Vec::new();
        // Handles already consumed (fired or cancelled): must stay inert.
        let mut stale: Vec<TimerHandle> = Vec::new();

        for op in ops {
            match op {
                Op::Schedule { at, priority } => {
                    let result = queue.schedule(
                        AbsoluteTime::from_nanos(at),
                        Priority::new(priority),
                        0,
                    );
                    if model.armed.len() == CAPACITY {
                        prop_assert!(result.is_err(), "full queue must refuse");
                    } else {
                        let handle = result.unwrap();
                        let seq = model.schedule(at, priority);
                        live.push((handle, seq));
                    }
                }
                Op::Cancel(k) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (handle, seq) = live.remove(k % live.len());
                    prop_assert!(queue.cancel(handle));
                    prop_assert!(model.cancel(seq));
                    stale.push(handle);
                }
                Op::CancelStale(k) => {
                    if stale.is_empty() {
                        continue;
                    }
                    let handle = stale[k % stale.len()];
                    let before = queue.armed();
                    prop_assert!(!queue.cancel(handle), "stale handle must be inert");
                    prop_assert_eq!(queue.armed(), before);
                }
                Op::PopDue { now } => {
                    let fired = queue.pop_due(AbsoluteTime::from_nanos(now));
                    let expected = model.pop_due(now);
                    match (fired, expected) {
                        (Some(f), Some((at, priority, seq))) => {
                            prop_assert_eq!(f.at, AbsoluteTime::from_nanos(at));
                            prop_assert_eq!(f.priority, Priority::new(priority));
                            let ix = live
                                .iter()
                                .position(|&(h, _)| h == f.handle)
                                .expect("fired handle must be a live one");
                            prop_assert_eq!(live[ix].1, seq, "fired out of model order");
                            live.remove(ix);
                            stale.push(f.handle);
                        }
                        (None, None) => {}
                        (f, e) => prop_assert!(false, "queue {f:?} vs model {e:?}"),
                    }
                }
            }
            prop_assert_eq!(queue.armed(), model.armed.len());
            prop_assert_eq!(queue.capacity(), CAPACITY, "preallocated storage never grows");
        }

        // Drain everything still armed at the end: total order must match.
        loop {
            let fired = queue.pop_due(AbsoluteTime::from_nanos(u64::MAX));
            let expected = model.pop_due(u64::MAX);
            match (fired, expected) {
                (Some(f), Some((at, priority, seq))) => {
                    prop_assert_eq!(f.at, AbsoluteTime::from_nanos(at));
                    prop_assert_eq!(f.priority, Priority::new(priority));
                    let ix = live
                        .iter()
                        .position(|&(h, _)| h == f.handle)
                        .expect("fired handle must be a live one");
                    prop_assert_eq!(live[ix].1, seq, "drain fired out of model order");
                    live.remove(ix);
                }
                (None, None) => break,
                (f, e) => prop_assert!(false, "drain: queue {f:?} vs model {e:?}"),
            }
        }
        prop_assert!(queue.is_empty());
        prop_assert!(live.is_empty());
    }
}
