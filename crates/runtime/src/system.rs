//! The executable system: bootstrap, invocation engine, reconfiguration.
//!
//! [`System::build`] materializes a [`SystemSpec`] against the RTSJ
//! substrate following the paper's bootstrapping order — immortal first,
//! scoped areas created and wedge-pinned parent-before-child, component
//! state charged to its area, buffers placed per pattern, lifecycle started
//! last — then [`System::run_transaction`] drives complete end-to-end
//! iterations exactly like the paper's benchmark scenario: a periodic head
//! component releases, asynchronous messages activate sporadic consumers in
//! priority order, synchronous calls nest run-to-completion.
//!
//! The three generation modes share this engine but walk different code
//! paths with genuinely different machinery (reified membranes vs. compiled
//! slots vs. a flat static table) — see the crate docs.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rtsj::memory::{AreaId, MemoryContext, MemoryKind, MemoryManager};
use rtsj::thread::{Priority, ThreadKind};
use rtsj::time::{AbsoluteTime, RelativeTime};
use soleil_core::contract::{ContractObservation, TimingContract};
use soleil_core::validate::{Diagnostic, Severity};
use soleil_core::ValidationReport;
use soleil_membrane::content::{
    Content, ContentFactory, ContentRegistry, Payload, PortId, StateImage,
};
use soleil_membrane::controllers::{BindingTarget, LifecycleState, MemoryAreaController};
use soleil_membrane::interceptors::{
    ActiveInterceptor, FastGate, FaultInjector, InterceptStep, Interceptor, MemoryInterceptor,
    MemoryPlan,
};
use soleil_membrane::monitor::{LatencyMonitor, LatencySnapshot};
use soleil_membrane::{ChainFusion, FaultKind, FrameworkError, Membrane, Ports};
use soleil_patterns::spsc::SpscProducer;
use soleil_patterns::{ExchangeBuffer, PatternKind, PushOutcome, ScopePin};

use crate::footprint::FootprintReport;
use crate::spec::{Activation, BufferPlacement, Mode, ProtocolSpec, SystemSpec};
use crate::timer::{TimerHandle, TimerQueue};

/// The implicit server port through which periodic components receive their
/// time-triggered releases.
pub const RELEASE_PORT: &str = "@release";

/// Minimum preallocated timer-queue slots per engine: the queue holds at
/// least one armed timer per component and never fewer than this floor
/// (capacity is fixed at build so arming never allocates).
const TIMER_SLOTS_MIN: usize = 64;

/// High bit of a timer payload marking a **supervised restart** timer
/// rather than a scheduled release: the low 31 bits carry the engine slot.
/// Restart timers ride the same preallocated queue as releases, so
/// supervision adds no second scheduling mechanism.
const RESTART_TAG: u32 = 1 << 31;

/// Exponential-backoff exponents are clamped here so `backoff * 2^attempt`
/// cannot overflow into a meaninglessly distant restart.
const MAX_BACKOFF_SHIFT: u32 = 20;

/// Mints globally unique dispatch-plan generations (see
/// [`Ports::intern_generation`]): one per compiled plan, re-minted on every
/// rebind or jump-table recompilation. Process-global so two deployments —
/// or two shard engines of one parallel deployment, each with its own port
/// universe — can never share a generation: a `static InternedPort` reached
/// from both re-interns instead of replaying one plan's id against the
/// other's table. Starts at 1; 0 is the name-only façade default.
static DISPATCH_GENERATION: AtomicU32 = AtomicU32::new(1);

fn mint_dispatch_generation() -> u32 {
    DISPATCH_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// What the engine does with a fault contained at a component's activation
/// boundary (a caught panic, or a typed [`FrameworkError::Faulted`] error).
///
/// The policy is **engine-level supervision**, like timing contracts: it
/// can be declared and changed in every generation mode, including
/// ULTRA-MERGE (which rejects *structural* reconfiguration only). The
/// healthy activation path pays one integer compare for it, exactly like
/// the `u16::MAX` contract sentinel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Propagate the fault to the caller — exactly the pre-supervision
    /// behavior, and the default for every component.
    #[default]
    Escalate,
    /// Quarantine the component and keep the tick/shard running: its
    /// releases are suppressed (and counted), messages addressed to it are
    /// counted-dropped, and sync calls into it are refused until an
    /// explicit restart.
    Isolate,
    /// Quarantine, then re-arm the component through the timer queue with
    /// exponential backoff; when more than `max_restarts` faults land
    /// inside one sliding `window`, the budget is exhausted and the fault
    /// escalates instead.
    Restart {
        /// Restarts allowed within one `window` before escalating.
        max_restarts: u32,
        /// Sliding budget window, measured on the engine's virtual clock.
        window: RelativeTime,
        /// Base restart delay; attempt `k` in a window waits
        /// `backoff * 2^k` (shift clamped, saturating add).
        backoff: RelativeTime,
    },
}

/// Per-slot supervision state: the declared policy plus the bookkeeping the
/// restart budget and the health report read. Cold data — only touched when
/// a fault is actually being handled or a report is built.
#[derive(Debug, Clone, Default)]
struct SupervisorSlot {
    policy: FaultPolicy,
    /// Engine slot of this component's declared supervisor, if any — the
    /// upward edge of the supervision tree an `Escalate` walks.
    supervisor: Option<u32>,
    /// True while the component is quarantined (mirrors the hot-path flag
    /// in the activation plan; this copy carries the cold detail).
    quarantined: bool,
    /// True when the quarantining fault was a panic. Mode-independent copy
    /// of the SOLEIL membrane's poison flag: warm-state handoff must know,
    /// in every mode, that the final instance state may be half-mutated by
    /// the unwind and only the last *healthy* checkpoint is trustworthy.
    poisoned: bool,
    /// `"{kind}: {detail}"` of the fault that caused the quarantine.
    fault_detail: Option<String>,
    /// Rendered escalation path (`"origin -> … -> supervisor"`) of the
    /// last fault this slot contained *as a supervisor* for a descendant —
    /// the subject of the SOL-023 health verdict. `None` until an
    /// escalation actually walked through here.
    escalation_path: Option<String>,
    /// Restarts consumed in the current budget window.
    restarts_in_window: u32,
    /// Start of the current budget window on the engine clock.
    window_start: AbsoluteTime,
    /// Backoff exponent for the next restart in this window.
    attempt: u32,
    /// True once the restart budget was exhausted and the fault escalated.
    budget_exhausted: bool,
    /// Faults contained at this slot's boundary (panics + errors).
    faults: u64,
    /// Supervised restarts completed.
    restarts: u64,
    /// Periodic releases suppressed while quarantined.
    suppressed_releases: u64,
    /// The pending supervised-restart timer, if one is armed. Tracked so a
    /// stop, policy change, journal rollback, or manual restart landing
    /// mid-backoff can cancel it — an untracked timer would later fire and
    /// restart a component the user had stopped (or restart under a
    /// rolled-back policy).
    restart_timer: Option<TimerHandle>,
}

/// Engine-wide counters (introspection / experiment reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Complete transactions driven.
    pub transactions: u64,
    /// Component activations (releases + message-triggered).
    pub activations: u64,
    /// Synchronous nested calls.
    pub sync_calls: u64,
    /// Asynchronous messages enqueued.
    pub async_messages: u64,
    /// Messages dropped: full buffers plus quarantine drops.
    pub dropped_messages: u64,
    /// Asynchronous messages delivered to their consumer's activation
    /// boundary. After quiescence, conservation holds:
    /// `async_messages == delivered_messages + dropped_messages` minus the
    /// full-buffer drops (which never entered a queue) — the chaos suite
    /// asserts the exact ledger.
    pub delivered_messages: u64,
    /// The subset of `dropped_messages` that were counted-dropped because
    /// their consumer was quarantined (never silently lost).
    pub quarantine_drops: u64,
    /// Faults (panics + errors) contained by a component's fault policy
    /// instead of escalating.
    pub faults_contained: u64,
    /// Scheduled releases fired by the timer queue.
    pub timer_fires: u64,
}

#[derive(Debug)]
struct RuntimeArea {
    name: String,
    id: AreaId,
    kind: MemoryKind,
    parent: Option<usize>,
    controller: MemoryAreaController,
}

#[derive(Debug)]
struct DomainRt {
    name: String,
    kind: ThreadKind,
    priority: Priority,
    ctx: Option<MemoryContext>,
}

struct Node<P: Payload> {
    name: String,
    content: Option<Box<dyn Content<P>>>,
    activation: Activation,
    domain_ix: Option<usize>,
    area_ix: usize,
    /// Server-port names, interned at build time as plain owned strings.
    /// An invocation *checks the name out* of its slot (a pointer swap, no
    /// clone, no refcount) and restores it afterwards — legal because the
    /// re-entrancy guards fire before the checkout, so a slot is never
    /// checked out twice. This drops the former per-invocation `Rc<str>`
    /// clone and, with it, the last `!Send` member of the engine.
    server_ports: Vec<Box<str>>,
    /// Index of the implicit [`RELEASE_PORT`] in `server_ports`, resolved
    /// once at build time so releases never scan port names.
    release_ix: Option<u16>,
    priority: Priority,
    /// Priority ceiling for shared passive services (introspection;
    /// priority-ceiling emulation metadata from the validator).
    ceiling: Option<Priority>,
    /// Scoped areas enclosing this component, outermost first: the
    /// component's thread executes inside this scope stack.
    scope_chain: Vec<AreaId>,
    // MERGE-ALL lifecycle state (SOLEIL keeps it in the membrane).
    started: bool,
    busy: bool,
    /// Supervision gate for compiled sync dispatch: MERGE-ALL refuses sync
    /// calls into a quarantined component here (SOLEIL refuses through the
    /// membrane's lifecycle; ULTRA-MERGE checks activation boundaries
    /// only — its sync path is contractually check-free).
    quarantined: bool,
}

impl<P: Payload> std::fmt::Debug for Node<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("name", &self.name)
            .field("activation", &self.activation)
            .field("started", &self.started)
            .finish()
    }
}

#[derive(Debug)]
struct BufferRt<P> {
    buffer: ExchangeBuffer<P>,
    consumer_slot: usize,
    consumer_port_ix: u16,
}

/// A compiled binding slot (MERGE-ALL / ULTRA-MERGE dispatch): the port
/// name, kept for the cold string-fallback scan and introspection, plus
/// the `Copy` header the hot path dispatches through.
#[derive(Debug, Clone)]
struct CompiledBinding {
    port: Box<str>,
    header: DispatchHeader,
}

/// One binding's dispatch decision, fully settled at deploy/rebind time
/// and `Copy`: resolving a call copies a few machine words — no string, no
/// `Arc` refcount, no heap traffic. `EnterInner` scope paths live in the
/// deployment-wide [`System::enter_arena`] as `(offset, len)` ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DispatchHeader {
    /// Server slot; `usize::MAX` for cross-domain rings.
    target_slot: usize,
    server_port_ix: u16,
    is_async: bool,
    buffer_ix: usize, // usize::MAX when sync
    pattern: PatternKind,
    server_area: AreaId,
    /// Range of this binding's `EnterInner` scope path in the arena.
    enter_off: u32,
    enter_len: u32,
    /// Build-time access decision: for `ExecuteInOuter`, the server area is
    /// statically on the client's scope chain, so the per-call scope-stack
    /// containment walk is skipped (prechecked substrate entry).
    outer_on_stack: bool,
    /// Build-time carrier decision: true when this binding leaves the
    /// engine's thread domain — `buffer_ix` then indexes `cross_out` (a
    /// wait-free SPSC ring to another shard) instead of `buffers`.
    is_cross: bool,
}

impl DispatchHeader {
    /// The single construction site for compiled dispatch state: build,
    /// cross-ring wiring and runtime rebinding all funnel through here, so
    /// plan fields cannot drift between them. `enter_path` is interned
    /// into the deployment-wide arena with window reuse, so a rebind that
    /// restores an earlier target reproduces the original header
    /// byte-identically (the transactional-rollback guarantee).
    #[allow(clippy::too_many_arguments)]
    fn compile(
        arena: &mut Vec<AreaId>,
        target_slot: usize,
        server_port_ix: u16,
        is_async: bool,
        buffer_ix: usize,
        pattern: PatternKind,
        server_area: AreaId,
        enter_path: &[AreaId],
        outer_on_stack: bool,
        is_cross: bool,
    ) -> DispatchHeader {
        let (enter_off, enter_len) = intern_enter_path(arena, enter_path);
        DispatchHeader {
            target_slot,
            server_port_ix,
            is_async,
            buffer_ix,
            pattern,
            server_area,
            enter_off,
            enter_len,
            outer_on_stack,
            is_cross,
        }
    }
}

/// Interns `path` into the deployment's flattened enter-path arena,
/// reusing an existing window when an identical sequence is already
/// present — so recompiling a binding back to a previous target yields
/// the exact `(offset, len)` it had before.
fn intern_enter_path(arena: &mut Vec<AreaId>, path: &[AreaId]) -> (u32, u32) {
    if path.is_empty() {
        return (0, 0);
    }
    if let Some(off) = arena.windows(path.len()).position(|w| w == path) {
        return (off as u32, path.len() as u32);
    }
    let off = arena.len() as u32;
    arena.extend_from_slice(path);
    (off, path.len() as u32)
}

/// The per-slot transaction plan, settled at build time: where the slot's
/// scope chain lives in the shared arena and which port its periodic
/// release dispatches through — `run_transaction` and the activation path
/// read straight out of this instead of walking `Node` state.
#[derive(Debug, Clone, Copy)]
struct ActivationPlan {
    /// Range of the slot's scope chain (outermost first) in the arena.
    chain_off: u32,
    chain_len: u16,
    /// Index of the implicit [`RELEASE_PORT`]; `u16::MAX` when the slot is
    /// not periodic.
    release_ix: u16,
    /// Slot of the component's latency monitor in `System::monitors`;
    /// `u16::MAX` when no timing contract is attached. A component without
    /// a contract pays exactly one integer compare per activation — the
    /// same pay-nothing-when-unused compilation as `release_ix` and the
    /// membrane `FastGate`s.
    monitor_ix: u16,
    /// Slot of the component's engine-level fault injector in
    /// `System::injectors`; `u16::MAX` when none is installed (the same
    /// one-compare sentinel as `monitor_ix`).
    fault_ix: u16,
    /// Slot of the component's warm-state checkpoint storage in
    /// `System::checkpoints`; `u16::MAX` when checkpointing is not enabled
    /// (one integer compare per healthy activation, like `monitor_ix`).
    checkpoint_ix: u16,
    /// True while the component is quarantined by its fault policy — the
    /// single compare the healthy release/delivery path pays for
    /// supervision.
    quarantined: bool,
}

/// Warm-state checkpoint storage of one checkpoint-enabled slot: the last
/// healthy cadence image plus a scratch image for the restart-boundary
/// capture, both preallocated at the component's `state_bytes` bound when
/// checkpointing is enabled (and charged to its allocation area), so no
/// capture ever allocates. Boxed like [`MonitorSlot`] — cold storage, one
/// pointer per slot until enabled.
struct CheckpointSlot {
    /// The last healthy image, captured every `cadence` successful
    /// activations — what a *poisoned* restart restores from.
    image: StateImage,
    /// Scratch for the activation-boundary capture a healthy supervised
    /// restart takes from the outgoing instance just before the fresh one
    /// installs.
    boundary: StateImage,
    /// Successful activations between cadence captures (≥ 1).
    cadence: u32,
    /// Successful activations since the last cadence capture.
    since_capture: u32,
    /// True once `image` holds a usable capture.
    valid: bool,
    /// Captures performed (cadence + restart-boundary).
    captures: u64,
    /// Restores performed into fresh instances after supervised restarts.
    restores: u64,
    /// True once any capture overflowed the `state_bytes` bound (the
    /// truncated image is not used; the health of the capture pipeline is
    /// inspectable instead of silently wrong).
    overflowed: bool,
}

/// An attached runtime timing contract with its live monitor, boxed so the
/// per-slot table stays one pointer wide (attach/detach are cold paths;
/// the monitor's histogram would otherwise fatten every slot).
pub(crate) struct MonitorSlot {
    pub(crate) contract: TimingContract,
    pub(crate) monitor: LatencyMonitor,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct PendingKey {
    priority: Priority,
    seq: Reverse<u64>,
}

/// Undo record of a [`System::repoint_async_to_cross`]: the
/// pre-transaction binding state of the repointed client port, restorable
/// byte-identically by [`System::restore_async_binding`]. Carried by the
/// parallel runtime's per-shard undo journals.
#[derive(Debug)]
pub(crate) struct AsyncRepointUndo {
    pub(crate) client_slot: usize,
    pub(crate) port: String,
    /// Index the repoint appended to `cross_out` (LIFO rollback truncates
    /// back to it).
    pub(crate) cross_ix: usize,
    old: OldAsyncBinding,
}

/// The mode-specific half of [`AsyncRepointUndo`].
#[derive(Debug)]
enum OldAsyncBinding {
    /// SOLEIL: the membrane's previous `BindingTarget`.
    Reified(BindingTarget),
    /// MERGE-ALL: the previous compiled dispatch header.
    Compiled(DispatchHeader),
}

/// A cross-domain output requested at build time: the named client port of
/// `client` routes into a wait-free SPSC ring whose consumer lives in
/// another thread-domain shard. The carrier decision is made once, here —
/// same-domain bindings keep the non-atomic `ExchangeBuffer` fast path.
pub(crate) struct CrossOutput<P> {
    /// Engine slot of the producing component.
    pub client: usize,
    /// Client-port name the ring is bound to.
    pub client_port: String,
    /// The producer endpoint of the ring.
    pub tx: SpscProducer<P>,
    /// Backing-store bytes charged to this shard's immortal area, so the
    /// ring shows up in footprint reports like any exchange buffer.
    pub charge_bytes: usize,
}

/// Introspection snapshot of a SOLEIL-mode membrane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembraneInfo {
    /// Component name.
    pub component: String,
    /// Lifecycle state.
    pub started: bool,
    /// Interceptor names in chain order.
    pub interceptors: Vec<String>,
    /// Bound client-port names.
    pub bound_ports: Vec<String>,
    /// True when every step of the compiled interceptor plan dispatches
    /// without a virtual call (no `Dyn` fallback step) — the steady-state
    /// no-`Box<dyn Interceptor>` property, made checkable.
    pub plan_fully_compiled: bool,
    /// How the compiled plan executes the pre/post protocol.
    pub plan_fusion: ChainFusion,
}

/// A deployed, runnable system. See the [module docs](self).
pub struct System<P: Payload> {
    name: String,
    mode: Mode,
    mm: MemoryManager,
    areas: Vec<RuntimeArea>,
    domains: Vec<DomainRt>,
    nodes: Vec<Node<P>>,
    buffers: Vec<BufferRt<P>>,
    /// Producer endpoints of cross-domain rings, indexed by the
    /// `buffer_ix` of compiled bindings whose `is_cross` flag is set.
    cross_out: Vec<SpscProducer<P>>,
    /// Messages currently travelling between shards (shared with every
    /// sibling engine of a parallel deployment; the quiescence condition
    /// of the parallel tick protocol). Incremented *before* the ring push
    /// so the counter never under-reports in-flight work.
    cross_in_flight: Arc<AtomicU64>,
    pending: BinaryHeap<(PendingKey, usize)>,
    seq: u64,
    /// Periodic slots in release order (highest priority first), computed
    /// at build and invalidated by reconfiguration — `run_tick` walks this
    /// instead of sorting a fresh list per tick.
    periodic_order: Vec<usize>,
    /// Pooled memory context for components outside any thread domain:
    /// reused across activations so their scope-stack storage is allocated
    /// once, not per activation.
    anon_ctx: Option<MemoryContext>,
    stats: EngineStats,
    /// Name-resolution counter (see [`System::name_lookups`]).
    lookups: Cell<u64>,
    /// String-scan dispatch resolutions (see [`System::string_compares`]).
    string_compares: Cell<u64>,
    /// `Arc` refcount bumps on the dispatch path (see
    /// [`System::arc_clones`]). The compiled plan removed the per-call
    /// `Arc<[AreaId]>` clone structurally, so nothing increments this —
    /// it stays as a tripwire the steady-state suite asserts on.
    arc_clones: Cell<u64>,
    /// The deployment's client-port intern universe: `PortId(i)` names
    /// `port_names[i]`. Spec binding ports first (first-appearance order),
    /// then cross-domain ring ports the shard compiler appended.
    port_names: Vec<Box<str>>,
    /// Generation of the current dispatch plan, re-minted on every rebind
    /// or jump recompilation; content-side `InternedPort` memos carry the
    /// generation they were interned under and re-intern on mismatch.
    dispatch_generation: u32,
    /// Jump tables for interned dispatch, `[slot][port_id]` → binding
    /// index (`compiled[slot]` position under MERGE-ALL, absolute
    /// `ultra_table` index under ULTRA-MERGE; `u32::MAX` = unbound here).
    /// SOLEIL slots are empty — their jump tables live in each membrane's
    /// `BindingController`.
    port_jump: Vec<Box<[u32]>>,
    /// Deployment-wide flattened arena of scope paths: binding
    /// `EnterInner` paths and per-slot activation chains, addressed by
    /// `(offset, len)` ranges out of the dispatch/activation plans.
    enter_arena: Vec<AreaId>,
    /// Per-slot transaction plans (release dispatch + scope-chain range).
    activation_plans: Vec<ActivationPlan>,
    /// The release-engine clock: advances one `tick_quantum` per
    /// `run_tick` (or explicitly via `advance_clock_to`), driving `timers`.
    clock: AbsoluteTime,
    /// Clock advance per tick: the smallest periodic period in the spec
    /// (1 ms when nothing is periodic), so one `run_tick` models one
    /// release cycle of the fastest component.
    tick_quantum: RelativeTime,
    /// The scheduled-release timer queue; payloads are engine slots. All
    /// storage preallocated at build — the armed steady state allocates
    /// nothing.
    timers: TimerQueue<u32>,
    /// Per-slot latency monitors for attached timing contracts; `None`
    /// everywhere until a contract is attached. The hot path never reads
    /// this directly — it tests `ActivationPlan::monitor_ix` first.
    monitors: Vec<Option<Box<MonitorSlot>>>,
    /// Per-slot fault policies + supervision bookkeeping (cold: read only
    /// when handling a fault or building a health report).
    supervisors: Vec<SupervisorSlot>,
    /// Per-slot warm-state checkpoint storage, gated by
    /// `ActivationPlan::checkpoint_ix`; `None` until checkpointing is
    /// enabled for the slot.
    checkpoints: Vec<Option<Box<CheckpointSlot>>>,
    /// Per-slot content constructors, captured at build so a supervised
    /// restart can re-instantiate a faulted component fresh — one `Arc`
    /// clone at build time, none per transaction.
    factories: Vec<ContentFactory<P>>,
    /// Engine-level deterministic fault injectors, gated by
    /// `ActivationPlan::fault_ix`; boxed so uninjected deployments pay one
    /// pointer per slot. Works in every mode — ULTRA-MERGE included —
    /// because the injector fires at the activation boundary, before any
    /// mode-specific dispatch.
    injectors: Vec<Option<Box<FaultInjector>>>,
    // SOLEIL mode: reified membranes + per-binding memory interceptors +
    // the spec kept alive for introspection.
    membranes: Vec<Option<Membrane>>,
    mem_interceptors: Vec<Option<MemoryInterceptor>>,
    /// Per-binding fused gates compiled from each binding's `MemoryPlan`
    /// at build/rebind time: when a gate proves the memory interceptor's
    /// `pre`/`post` are no-ops, the SOLEIL sync-call path skips them
    /// entirely (indexed like `mem_interceptors`).
    mem_gates: Vec<FastGate>,
    reified_spec: Option<SystemSpec>,
    // MERGE-ALL mode: per-component compiled binding slots.
    compiled: Vec<Vec<CompiledBinding>>,
    // ULTRA-MERGE mode: one flat table with per-slot ranges.
    ultra_table: Vec<CompiledBinding>,
    ultra_ranges: Vec<(u32, u32)>,
}

impl<P: Payload> std::fmt::Debug for System<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("name", &self.name)
            .field("mode", &self.mode)
            .field("components", &self.nodes.len())
            .field("buffers", &self.buffers.len())
            .finish()
    }
}

impl<P: Payload> System<P> {
    /// Materializes `spec` in the given `mode`, instantiating content
    /// classes from `registry` (the paper's final composition step).
    ///
    /// # Errors
    ///
    /// * [`FrameworkError::Content`] for unknown content classes or an
    ///   inconsistent spec.
    /// * Substrate errors when areas cannot be created or budgets overflow.
    pub fn build(
        spec: &SystemSpec,
        mode: Mode,
        registry: &ContentRegistry<P>,
    ) -> Result<System<P>, FrameworkError> {
        Self::build_with_cross(spec, mode, registry, Vec::new(), Arc::default())
    }

    /// [`System::build`] plus a set of cross-domain outputs: client ports
    /// that route into wait-free SPSC rings whose consumers live in other
    /// thread-domain shards (the parallel runtime's carrier for bindings
    /// that leave this engine). The shared `in_flight` counter tracks
    /// messages travelling between shards.
    pub(crate) fn build_with_cross(
        spec: &SystemSpec,
        mode: Mode,
        registry: &ContentRegistry<P>,
        cross_outputs: Vec<CrossOutput<P>>,
        in_flight: Arc<AtomicU64>,
    ) -> Result<System<P>, FrameworkError> {
        spec.check().map_err(FrameworkError::Content)?;
        for co in &cross_outputs {
            if co.client >= spec.components.len() {
                return Err(FrameworkError::Content(format!(
                    "cross output client slot {} out of range",
                    co.client
                )));
            }
        }

        // --- Areas: immortal budget first, then scoped creation + pinning.
        let immortal_budget: usize = spec
            .areas
            .iter()
            .filter(|a| a.kind == MemoryKind::Immortal)
            .map(|a| a.size.unwrap_or(0))
            .sum::<usize>()
            + 256 * 1024; // framework reserve (buffers, markers)
        let mut mm = MemoryManager::new(0, immortal_budget);

        let mut areas: Vec<RuntimeArea> = Vec::with_capacity(spec.areas.len());
        for a in &spec.areas {
            let id = match a.kind {
                MemoryKind::Heap => AreaId::HEAP,
                MemoryKind::Immortal => AreaId::IMMORTAL,
                MemoryKind::Scoped => mm.create_scoped(rtsj::memory::ScopedMemoryParams::new(
                    a.name.clone(),
                    a.size.unwrap_or(4096),
                ))?,
            };
            let mut controller = MemoryAreaController::new(a.name.clone(), id);
            if a.kind == MemoryKind::Scoped {
                // Wedge-pin through the scoped ancestor chain.
                let mut path = Vec::new();
                let mut cursor = a.parent;
                while let Some(p) = cursor {
                    if areas[p].kind == MemoryKind::Scoped {
                        path.push(areas[p].id);
                    }
                    cursor = areas[p].parent;
                }
                path.reverse();
                controller.set_pin(ScopePin::new(&mut mm, id, &path)?);
            }
            areas.push(RuntimeArea {
                name: a.name.clone(),
                id,
                kind: a.kind,
                parent: a.parent,
                controller,
            });
        }

        // --- Domains: one memory context per domain ("its thread").
        let domains: Vec<DomainRt> = spec
            .domains
            .iter()
            .map(|d| DomainRt {
                name: d.name.clone(),
                kind: d.kind,
                priority: Priority::new(d.priority),
                ctx: Some(mm.context(d.kind)),
            })
            .collect();

        // --- Components: instantiate content, charge state to the area.
        let boot_ctx = mm.context(ThreadKind::Realtime);
        let mut nodes: Vec<Node<P>> = Vec::with_capacity(spec.components.len());
        let mut factories: Vec<ContentFactory<P>> = Vec::with_capacity(spec.components.len());
        for c in &spec.components {
            // Keep the constructor: a supervised restart re-instantiates
            // from the same factory the deploy used (one Arc clone, here,
            // at build — the transaction path never touches it).
            let factory = registry.factory(&c.content_class)?;
            let content = factory();
            factories.push(factory);
            let state = content.state_bytes().max(1);
            mm.alloc_raw(&boot_ctx, areas[c.area].id, state)?;
            let mut server_ports: Vec<Box<str>> =
                c.server_ports.iter().map(|p| p.as_str().into()).collect();
            let release_ix = matches!(c.activation, Activation::Periodic { .. }).then(|| {
                server_ports.push(RELEASE_PORT.into());
                (server_ports.len() - 1) as u16
            });
            let priority = c
                .domain
                .map(|d| domains[d].priority)
                .unwrap_or(Priority::NORM);
            // The scoped chain this component's thread stands in.
            let mut scope_chain = Vec::new();
            let mut cursor = Some(c.area);
            while let Some(ix) = cursor {
                if areas[ix].kind == MemoryKind::Scoped {
                    scope_chain.push(areas[ix].id);
                }
                cursor = areas[ix].parent;
            }
            scope_chain.reverse();
            nodes.push(Node {
                name: c.name.clone(),
                content: Some(content),
                activation: c.activation,
                domain_ix: c.domain,
                area_ix: c.area,
                server_ports,
                release_ix,
                priority,
                ceiling: c.ceiling.map(Priority::new),
                scope_chain,
                started: false,
                busy: false,
                quarantined: false,
            });
        }

        // --- Buffers for async bindings.
        let mut buffers: Vec<BufferRt<P>> = Vec::new();
        let mut buffer_of_binding: Vec<Option<usize>> = vec![None; spec.bindings.len()];
        for (bix, b) in spec.bindings.iter().enumerate() {
            if let ProtocolSpec::Async {
                capacity,
                placement,
            } = b.protocol
            {
                let area = match placement {
                    BufferPlacement::Heap => AreaId::HEAP,
                    BufferPlacement::Immortal => AreaId::IMMORTAL,
                };
                let heap_ctx = mm.context(ThreadKind::Regular);
                let ctx = if area == AreaId::HEAP {
                    &heap_ctx
                } else {
                    &boot_ctx
                };
                let buffer = ExchangeBuffer::create(&mut mm, ctx, area, capacity)?;
                let consumer_port_ix = port_index(&nodes[b.server], &b.server_port)?;
                buffer_of_binding[bix] = Some(buffers.len());
                buffers.push(BufferRt {
                    buffer,
                    consumer_slot: b.server,
                    consumer_port_ix,
                });
            }
        }

        // --- Cross-domain outputs: charge ring backing to this shard's
        // immortal area (footprint honesty), then strip to the producer
        // endpoints; `cross_requests` drives the per-mode binding tables.
        let mut cross_requests: Vec<(usize, String)> = Vec::with_capacity(cross_outputs.len());
        let mut cross_out: Vec<SpscProducer<P>> = Vec::with_capacity(cross_outputs.len());
        for co in cross_outputs {
            mm.alloc_raw(&boot_ctx, AreaId::IMMORTAL, co.charge_bytes)?;
            cross_requests.push((co.client, co.client_port));
            cross_out.push(co.tx);
        }

        // --- The deployment-wide dispatch plan, shared by every mode:
        // the client-port intern universe (dense u16 ids by position), the
        // flattened scope-path arena, and per-slot activation plans.
        let mut port_names: Vec<Box<str>> = spec.client_port_names();
        for (_, port) in &cross_requests {
            if !port_names.iter().any(|n| n.as_ref() == port.as_str()) {
                port_names.push(port.as_str().into());
            }
        }
        let mut enter_arena: Vec<AreaId> = Vec::new();
        let activation_plans: Vec<ActivationPlan> = nodes
            .iter()
            .map(|n| {
                let (chain_off, chain_len) = intern_enter_path(&mut enter_arena, &n.scope_chain);
                ActivationPlan {
                    chain_off,
                    chain_len: chain_len as u16,
                    release_ix: n.release_ix.unwrap_or(u16::MAX),
                    monitor_ix: u16::MAX,
                    fault_ix: u16::MAX,
                    checkpoint_ix: u16::MAX,
                    quarantined: false,
                }
            })
            .collect();

        // --- Release engine: the tick quantum is the fastest periodic
        // period (one run_tick = one cycle of the fastest component); the
        // timer queue is preallocated here, once, so arming/cancelling/
        // firing in the steady state never touches the allocator.
        let tick_quantum = spec
            .components
            .iter()
            .filter_map(|c| match c.activation {
                Activation::Periodic { period } => Some(period),
                _ => None,
            })
            .min()
            .unwrap_or(RelativeTime::from_millis(1));
        let timer_capacity = nodes.len().max(TIMER_SLOTS_MIN);
        let node_count = nodes.len();

        // --- Mode-specific dispatch machinery.
        let mut membranes: Vec<Option<Membrane>> = Vec::new();
        let mut mem_interceptors: Vec<Option<MemoryInterceptor>> = Vec::new();
        let mut mem_gates: Vec<FastGate> = Vec::new();
        let mut compiled: Vec<Vec<CompiledBinding>> = Vec::new();
        let mut ultra_table: Vec<CompiledBinding> = Vec::new();
        let mut ultra_ranges: Vec<(u32, u32)> = Vec::new();

        // Per-(client, server-area) access decision, settled at build: an
        // ExecuteInOuter server area that sits on the client's static scope
        // chain is provably on the stack whenever the binding fires (the
        // client entered its whole chain at activation), so the per-call
        // containment walk can be skipped.
        let outer_on_stack = |b: &crate::spec::BindingSpec| {
            b.pattern == PatternKind::ExecuteInOuter
                && nodes[b.client]
                    .scope_chain
                    .contains(&areas[spec.components[b.server].area].id)
        };
        // Both compile helpers funnel through `DispatchHeader::compile` —
        // the one constructor shared with runtime rebinding — and take the
        // arena as a parameter so only the calling loop holds it mutably.
        let compile_one =
            |arena: &mut Vec<AreaId>, b: &crate::spec::BindingSpec, bix: usize| CompiledBinding {
                port: b.client_port.as_str().into(),
                header: DispatchHeader::compile(
                    arena,
                    b.server,
                    port_index(&nodes[b.server], &b.server_port).expect("checked by spec.check"),
                    matches!(b.protocol, ProtocolSpec::Async { .. }),
                    buffer_of_binding[bix].unwrap_or(usize::MAX),
                    b.pattern,
                    areas[spec.components[b.server].area].id,
                    &b.enter_path
                        .iter()
                        .map(|&ix| areas[ix].id)
                        .collect::<Vec<_>>(),
                    outer_on_stack(b),
                    false,
                ),
            };
        // A compiled slot routing into a cross-domain ring: asynchronous by
        // construction, no scope choreography (the consumer re-enters its
        // own chain in its own shard), `buffer_ix` indexes `cross_out`.
        let cross_compiled =
            |arena: &mut Vec<AreaId>, port: &str, cross_ix: usize| CompiledBinding {
                port: port.into(),
                header: DispatchHeader::compile(
                    arena,
                    usize::MAX,
                    0,
                    true,
                    cross_ix,
                    PatternKind::ImmortalExchange,
                    AreaId::IMMORTAL,
                    &[],
                    false,
                    true,
                ),
            };

        match mode {
            Mode::Soleil => {
                for (slot, c) in spec.components.iter().enumerate() {
                    let mut m = Membrane::new(c.name.clone());
                    if !matches!(c.activation, Activation::Passive) {
                        // Deploy-time plan construction: the known guard
                        // goes straight in as its compiled step (the boxed
                        // `push_interceptor` route compiles to the same
                        // plan; this just skips the cold downcast).
                        m.push_step(InterceptStep::Active(ActiveInterceptor::new()));
                    }
                    for (bix, b) in spec.bindings.iter().enumerate() {
                        if b.client == slot {
                            m.binding.bind(
                                b.client_port.clone(),
                                BindingTarget {
                                    target_slot: b.server,
                                    server_port: b.server_port.clone(),
                                    server_port_ix: port_index(&nodes[b.server], &b.server_port)?,
                                    is_async: matches!(b.protocol, ProtocolSpec::Async { .. }),
                                    buffer_index: buffer_of_binding[bix],
                                    binding_ix: bix,
                                    cross: false,
                                },
                            );
                        }
                    }
                    for (cross_ix, (client, port)) in cross_requests.iter().enumerate() {
                        if *client == slot {
                            m.binding.bind(
                                port.clone(),
                                BindingTarget {
                                    target_slot: usize::MAX,
                                    server_port: String::new(),
                                    server_port_ix: 0,
                                    is_async: true,
                                    buffer_index: Some(cross_ix),
                                    binding_ix: usize::MAX,
                                    cross: true,
                                },
                            );
                        }
                    }
                    membranes.push(Some(m));
                }
                for b in &spec.bindings {
                    let plan = MemoryPlan {
                        pattern: b.pattern,
                        server_area: areas[spec.components[b.server].area].id,
                        enter_path: b.enter_path.iter().map(|&ix| areas[ix].id).collect(),
                        transient_scope: None,
                        outer_on_stack: outer_on_stack(b),
                    };
                    mem_gates.push(plan.fast_gate());
                    mem_interceptors.push(Some(MemoryInterceptor::new(plan)));
                }
            }
            Mode::MergeAll => {
                for slot in 0..nodes.len() {
                    let mut row = Vec::new();
                    for (bix, b) in spec.bindings.iter().enumerate() {
                        if b.client == slot {
                            row.push(compile_one(&mut enter_arena, b, bix));
                        }
                    }
                    for (cross_ix, (client, port)) in cross_requests.iter().enumerate() {
                        if *client == slot {
                            row.push(cross_compiled(&mut enter_arena, port, cross_ix));
                        }
                    }
                    compiled.push(row);
                }
            }
            Mode::UltraMerge => {
                for slot in 0..nodes.len() {
                    let start = ultra_table.len() as u32;
                    for (bix, b) in spec.bindings.iter().enumerate() {
                        if b.client == slot {
                            ultra_table.push(compile_one(&mut enter_arena, b, bix));
                        }
                    }
                    for (cross_ix, (client, port)) in cross_requests.iter().enumerate() {
                        if *client == slot {
                            ultra_table.push(cross_compiled(&mut enter_arena, port, cross_ix));
                        }
                    }
                    ultra_ranges.push((start, ultra_table.len() as u32));
                }
            }
        }

        let mut system = System {
            name: spec.name.clone(),
            mode,
            mm,
            areas,
            domains,
            nodes,
            buffers,
            cross_out,
            cross_in_flight: in_flight,
            pending: BinaryHeap::new(),
            seq: 0,
            periodic_order: Vec::new(),
            anon_ctx: None,
            stats: EngineStats::default(),
            lookups: Cell::new(0),
            string_compares: Cell::new(0),
            arc_clones: Cell::new(0),
            port_names,
            dispatch_generation: 0, // minted by recompile_port_jump below
            port_jump: Vec::new(),
            enter_arena,
            activation_plans,
            clock: AbsoluteTime::ZERO,
            tick_quantum,
            timers: TimerQueue::with_capacity(timer_capacity),
            monitors: (0..node_count).map(|_| None).collect(),
            supervisors: vec![SupervisorSlot::default(); node_count],
            checkpoints: (0..node_count).map(|_| None).collect(),
            factories,
            injectors: (0..node_count).map(|_| None).collect(),
            membranes,
            mem_interceptors,
            mem_gates,
            reified_spec: if mode == Mode::Soleil {
                Some(spec.clone())
            } else {
                None
            },
            compiled,
            ultra_table,
            ultra_ranges,
        };

        system.recompute_periodic_order();
        system.recompile_port_jump();

        // --- Start everything (paper: activation is framework-managed).
        for slot in 0..system.nodes.len() {
            system.start_slot(slot)?;
        }
        Ok(system)
    }

    /// The generation mode this system runs in.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The system name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Engine counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Direct access to the substrate (experiments, footprint).
    pub fn memory(&self) -> &MemoryManager {
        &self.mm
    }

    /// Thread-domain roster: name, thread kind and priority of each domain
    /// (introspection; mirrors the ThreadDomain controllers).
    pub fn domain_info(&self) -> Vec<(String, ThreadKind, Priority)> {
        self.domains
            .iter()
            .map(|d| (d.name.clone(), d.kind, d.priority))
            .collect()
    }

    /// The priority ceiling of a shared passive service, when the
    /// validator assigned one (RTSJ priority-ceiling emulation metadata).
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] for unknown names.
    pub fn ceiling_of(&self, name: &str) -> Result<Option<Priority>, FrameworkError> {
        Ok(self.nodes[self.slot_ix(name)?].ceiling)
    }

    /// Resolves a component name to its engine slot.
    ///
    /// Prefer resolving once and holding the slot (or use a
    /// `Deployment`'s `ComponentRef` tokens): every call scans component
    /// names and counts against [`name_lookups`](Self::name_lookups).
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] for unknown names.
    pub fn slot_of(&self, name: &str) -> Result<usize, FrameworkError> {
        self.slot_ix(name)
    }

    /// Name resolutions performed so far (`slot_of` and the name-based
    /// driver entry points). Steady-state transaction loops driven through
    /// resolved slots / `ComponentRef`s keep this constant — the property
    /// the hot-path tests assert.
    pub fn name_lookups(&self) -> u64 {
        self.lookups.get()
    }

    /// Dispatch resolutions that fell back to a string scan: name-based
    /// `Ports::call`/`send`, the one-time `InternedPort` interning scan,
    /// and cold name resolutions in the binding tables. A steady-state
    /// transaction through interned ports keeps this constant — the
    /// property the zero-cost dispatch tests assert in every mode.
    pub fn string_compares(&self) -> u64 {
        self.string_compares.get()
    }

    /// `Arc` clones performed by dispatch resolution. The compiled
    /// dispatch plan removed the per-call `Arc<[AreaId]>` clone
    /// structurally (a `Copy` header + arena ranges replaced it), so this
    /// is always 0; it stays as a regression tripwire asserted per
    /// steady-state transaction.
    pub fn arc_clones(&self) -> u64 {
        self.arc_clones.get()
    }

    /// Resolves a client-port name to its deployment-interned dense id —
    /// the one-time cold scan [`InternedPort`](soleil_membrane::InternedPort)
    /// memoizes away.
    fn intern_port(&self, client_port: &str) -> Option<PortId> {
        self.string_compares.set(self.string_compares.get() + 1);
        self.port_names
            .iter()
            .position(|n| n.as_ref() == client_port)
            .map(|i| PortId(i as u16))
    }

    /// The name behind an interned port id (cold error reporting: unbound
    /// failures surface the port *name*, never a bare id).
    fn port_name(&self, id: PortId) -> &str {
        self.port_names
            .get(id.0 as usize)
            .map(|n| n.as_ref())
            .unwrap_or("<unknown port id>")
    }

    /// Recompiles the interned-dispatch jump tables from the current
    /// binding tables — called at build and defensively after rebinding
    /// (rebinds replace entries in place, so compiled indices stay valid;
    /// recompiling keeps the invariant local instead of distributed).
    fn recompile_port_jump(&mut self) {
        // Every recompilation is a new plan: stale content-side memos must
        // re-intern rather than index the rebuilt tables.
        self.dispatch_generation = mint_dispatch_generation();
        match self.mode {
            Mode::Soleil => {
                // The reified membranes own their jump tables.
                let names = std::mem::take(&mut self.port_names);
                for m in self.membranes.iter_mut().flatten() {
                    m.binding.compile_jump(&names);
                }
                self.port_names = names;
                self.port_jump = (0..self.nodes.len()).map(|_| Box::default()).collect();
            }
            Mode::MergeAll => {
                self.port_jump = self
                    .compiled
                    .iter()
                    .map(|row| {
                        self.port_names
                            .iter()
                            .map(|n| {
                                row.iter()
                                    .position(|b| b.port == *n)
                                    .map_or(u32::MAX, |i| i as u32)
                            })
                            .collect()
                    })
                    .collect();
            }
            Mode::UltraMerge => {
                self.port_jump = self
                    .ultra_ranges
                    .iter()
                    .map(|&(s, e)| {
                        self.port_names
                            .iter()
                            .map(|n| {
                                self.ultra_table[s as usize..e as usize]
                                    .iter()
                                    .position(|b| b.port == *n)
                                    .map_or(u32::MAX, |i| s + i as u32)
                            })
                            .collect()
                    })
                    .collect();
            }
        }
    }

    pub(crate) fn slot_ix(&self, name: &str) -> Result<usize, FrameworkError> {
        self.lookups.set(self.lookups.get() + 1);
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .ok_or_else(|| FrameworkError::Content(format!("unknown component '{name}'")))
    }

    pub(crate) fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub(crate) fn node_name(&self, slot: usize) -> &str {
        &self.nodes[slot].name
    }

    pub(crate) fn node_started(&self, slot: usize) -> bool {
        self.nodes[slot].started
    }

    pub(crate) fn port_ix_of(&self, slot: usize, port: &str) -> Result<u16, FrameworkError> {
        self.lookups.set(self.lookups.get() + 1);
        port_index(&self.nodes[slot], port)
    }

    // -----------------------------------------------------------------
    // Transactions
    // -----------------------------------------------------------------

    /// Drives one complete iteration starting from the periodic component
    /// `head`: its release, every synchronous nested call, and the
    /// asynchronous cascade until quiescence — the unit the paper's
    /// benchmark times.
    ///
    /// # Errors
    ///
    /// Any framework or substrate error raised along the way.
    pub fn run_transaction(&mut self, head: usize) -> Result<(), FrameworkError> {
        // The whole release decision was settled at build time into the
        // per-slot activation plan: a steady-state loop performs no name
        // resolution and no `Option` walk at all.
        let plan = *self
            .activation_plans
            .get(head)
            .ok_or_else(|| FrameworkError::Content(format!("bad slot {head}")))?;
        if plan.release_ix == u16::MAX {
            return Err(FrameworkError::Content(format!(
                "component '{}' is not periodic (no {RELEASE_PORT} port)",
                self.nodes[head].name
            )));
        }
        // Supervision on the healthy path is this one compare: a
        // quarantined head's release is suppressed (and counted), not run.
        if plan.quarantined {
            self.supervisors[head].suppressed_releases += 1;
            return Ok(());
        }
        match self.run_release(head, plan) {
            Ok(()) => Ok(()),
            Err(e) => self.handle_fault(e),
        }
    }

    /// One release transaction of `head` under its already-fetched plan:
    /// the shared body of [`run_transaction`](Self::run_transaction) and
    /// the timer-fire path.
    fn run_release(&mut self, head: usize, plan: ActivationPlan) -> Result<(), FrameworkError> {
        // Monitored heads stamp the transaction; the sentinel keeps the
        // unmonitored path at one integer compare (no clock read).
        let t0 = (plan.monitor_ix != u16::MAX).then(Instant::now);
        let mut msg = P::default();
        self.activate(head, plan.release_ix, &mut msg)?;
        // Healthy activation of a checkpoint-enabled head: one compare,
        // and a capture only on the configured cadence.
        if plan.checkpoint_ix != u16::MAX {
            self.cadence_checkpoint(head);
        }
        self.drain()?;
        self.stats.transactions += 1;
        if let Some(t0) = t0 {
            self.observe_latency(plan.monitor_ix, t0);
        }
        Ok(())
    }

    /// Feeds one completed monitored activation to its latency monitor
    /// (deadline check, jitter check, histogram record — allocation-free).
    #[inline]
    fn observe_latency(&mut self, monitor_ix: u16, start: Instant) {
        let latency_ns = start.elapsed().as_nanos() as u64;
        if let Some(m) = self.monitors[monitor_ix as usize].as_deref_mut() {
            m.monitor.observe(start, latency_ns);
        }
    }

    /// Slots of every periodic component, highest priority first — the
    /// release order within one tick of the system (a copy of the cached
    /// order; the tick loop itself walks the cache without allocating).
    pub fn periodic_heads(&self) -> Vec<usize> {
        self.periodic_order.clone()
    }

    /// Rebuilds the cached periodic release order. Called at build and
    /// whenever reconfiguration changes a component's priority (domain
    /// reassignment); periodic-ness itself is fixed at design time.
    fn recompute_periodic_order(&mut self) {
        self.periodic_order = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.activation, Activation::Periodic { .. }))
            .map(|(i, _)| i)
            .collect();
        self.periodic_order
            .sort_by_key(|&i| std::cmp::Reverse(self.nodes[i].priority));
    }

    /// Releases every periodic component once, in priority order, each with
    /// its full run-to-completion cascade — one "tick" of a system with
    /// several time-triggered components. Walks the cached release order:
    /// no per-tick list building.
    ///
    /// # Errors
    ///
    /// The first transaction error aborts the tick. When later periodic
    /// heads were still waiting for their release, the error names both
    /// the aborting component and every skipped head — an aborted tick
    /// never silently un-releases the rest of the system.
    pub fn run_tick(&mut self) -> Result<(), FrameworkError> {
        // The release engine rides the tick: advance the virtual clock one
        // quantum and fire whatever came due. With nothing armed this is
        // one add and one length check — periodic-only deployments pay
        // essentially nothing for the timer machinery.
        self.clock = self.clock.saturating_add(self.tick_quantum);
        if !self.timers.is_empty() {
            self.fire_due_timers()?;
        }
        for i in 0..self.periodic_order.len() {
            let head = self.periodic_order[i];
            if let Err(e) = self.run_transaction(head) {
                let skipped: Vec<&str> = self.periodic_order[i + 1..]
                    .iter()
                    .map(|&s| self.nodes[s].name.as_str())
                    .collect();
                if skipped.is_empty() {
                    return Err(e);
                }
                return Err(FrameworkError::RunToCompletion(format!(
                    "tick aborted by component '{}': {e}; skipped periodic heads: {}",
                    self.nodes[head].name,
                    skipped.join(", ")
                )));
            }
        }
        Ok(())
    }

    /// Slot/port-indexed injection (the string-free hot path behind
    /// `Deployment::inject`).
    pub(crate) fn inject_at(
        &mut self,
        slot: usize,
        port_ix: u16,
        mut msg: P,
    ) -> Result<(), FrameworkError> {
        let plan = self.activation_plans[slot];
        // A quarantined target counts the drop instead of activating — the
        // same never-silently-lost accounting as the drain path. No
        // transaction is recorded (none ran), which keeps the parallel
        // drain-pass arithmetic honest.
        if plan.quarantined {
            self.stats.dropped_messages += 1;
            self.stats.quarantine_drops += 1;
            return Ok(());
        }
        // Delivered the moment it reaches the activation boundary —
        // mirroring the drain path's pop-before-invoke accounting, so the
        // conservation ledger holds even when the activation then faults.
        self.stats.delivered_messages += 1;
        let t0 = (plan.monitor_ix != u16::MAX).then(Instant::now);
        let result = self.activate(slot, port_ix, &mut msg).and_then(|()| {
            if plan.checkpoint_ix != u16::MAX {
                self.cadence_checkpoint(slot);
            }
            self.drain()?;
            self.stats.transactions += 1;
            if let Some(t0) = t0 {
                self.observe_latency(plan.monitor_ix, t0);
            }
            Ok(())
        });
        match result {
            Ok(()) => Ok(()),
            Err(e) => self.handle_fault(e),
        }
    }

    /// Checks out the executing context for a slot: its domain's context,
    /// or the pooled anonymous context for undomained components (reused so
    /// steady-state activations never rebuild scope-stack storage).
    fn take_ctx(&mut self, domain_ix: Option<usize>) -> Result<MemoryContext, FrameworkError> {
        match domain_ix {
            Some(d) => self.domains[d].ctx.take().ok_or_else(|| {
                FrameworkError::RunToCompletion(format!(
                    "domain '{}' already executing",
                    self.domains[d].name
                ))
            }),
            None => Ok(self
                .anon_ctx
                .take()
                .unwrap_or_else(|| self.mm.context(ThreadKind::Regular))),
        }
    }

    /// Returns a context checked out by [`System::take_ctx`].
    fn restore_ctx(&mut self, domain_ix: Option<usize>, ctx: MemoryContext) {
        match domain_ix {
            Some(d) => self.domains[d].ctx = Some(ctx),
            None => self.anon_ctx = Some(ctx),
        }
    }

    fn activate(&mut self, slot: usize, port_ix: u16, msg: &mut P) -> Result<(), FrameworkError> {
        self.stats.activations += 1;
        // Engine-level fault injection fires at the activation boundary,
        // before any mode-specific dispatch — the sentinel keeps the
        // uninjected path at one integer compare.
        if self.activation_plans[slot].fault_ix != u16::MAX {
            self.run_injector(slot)?;
        }
        let domain_ix = self.nodes[slot].domain_ix;
        let mut ctx = self.take_ctx(domain_ix)?;
        let result = self.invoke_in_chain(slot, port_ix, msg, &mut ctx);
        self.restore_ctx(domain_ix, ctx);
        result
    }

    /// Draws the slot's engine-level fault injector, converting an
    /// injected panic into the same typed [`FrameworkError::Faulted`] a
    /// content panic produces. The injector is checked out around the draw
    /// (a pointer swap) so the catch boundary never holds a borrow of the
    /// engine.
    fn run_injector(&mut self, slot: usize) -> Result<(), FrameworkError> {
        let Some(mut fi) = self.injectors[slot].take() else {
            return Ok(());
        };
        let drawn = catch_unwind(AssertUnwindSafe(|| fi.draw()));
        // A virtual-clock injector records latency spikes instead of
        // busy-waiting; the engine clock absorbs them here, so simulated
        // timelines are wall-clock-independent.
        let spike_ns = fi.take_pending_spike_ns();
        self.injectors[slot] = Some(fi);
        if spike_ns > 0 {
            self.clock = self
                .clock
                .saturating_add(RelativeTime::from_nanos(spike_ns));
        }
        match drawn {
            Ok(r) => r,
            Err(payload) => Err(FrameworkError::Faulted {
                component: self.nodes[slot].name.clone(),
                kind: FaultKind::Panic,
                detail: panic_detail(payload),
            }),
        }
    }

    /// Enters `slot`'s scope chain, invokes, and exits — the execution
    /// discipline every activation shares: a component allocated in scoped
    /// memory executes inside its (wedge-pinned, so entry cannot reclaim)
    /// scope stack. Both the release path and the asynchronous drain path
    /// go through here; having the chain on the stack is also the premise
    /// of the build-time `ExecuteInOuter` access proofs
    /// ([`System::outer_proof`]).
    fn invoke_in_chain(
        &mut self,
        slot: usize,
        port_ix: u16,
        msg: &mut P,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        // The chain range comes out of the activation plan: one contiguous
        // arena window, no per-slot `Vec` indirection on the hot path.
        let plan = self.activation_plans[slot];
        let (chain_off, chain_len) = (plan.chain_off as usize, plan.chain_len as usize);
        let mut entered = 0;
        let mut result = Ok(());
        for i in 0..chain_len {
            let scope = self.enter_arena[chain_off + i];
            if let Err(e) = self.mm.enter(ctx, scope) {
                result = Err(e.into());
                break;
            }
            entered += 1;
        }
        if result.is_ok() {
            result = self.invoke(slot, port_ix, msg, ctx);
        }
        for _ in 0..entered {
            self.mm.exit(ctx).expect("balanced activation scope stack");
        }
        result
    }

    fn drain(&mut self) -> Result<(), FrameworkError> {
        while let Some((_, buffer_ix)) = self.pending.pop() {
            let (consumer_slot, consumer_port_ix) = {
                let b = &self.buffers[buffer_ix];
                (b.consumer_slot, b.consumer_port_ix)
            };
            // Messages addressed to a quarantined consumer are popped and
            // *counted*-dropped — conservation over quarantine: nothing
            // waits forever in a queue nobody will drain, nothing is lost
            // off the books. One compare on the healthy path.
            if self.activation_plans[consumer_slot].quarantined {
                let ctx = self.mm.context(ThreadKind::Regular);
                if let Some(_msg) = self.buffers[buffer_ix].buffer.pop(&mut self.mm, &ctx)? {
                    self.stats.dropped_messages += 1;
                    self.stats.quarantine_drops += 1;
                }
                continue;
            }
            let domain_ix = self.nodes[consumer_slot].domain_ix;
            let mut ctx = self.take_ctx(domain_ix)?;
            // Index-based buffer access: `buffers` and `mm` are disjoint
            // fields, so the ring is reached in place — no handle clone per
            // drained message.
            let popped = self.buffers[buffer_ix].buffer.pop(&mut self.mm, &ctx);
            let result = match popped {
                Ok(Some(mut msg)) => {
                    self.stats.activations += 1;
                    self.stats.delivered_messages += 1;
                    // Message-triggered activations are monitored and
                    // fault-injected too: the same one-compare sentinels
                    // as the release path.
                    let plan = self.activation_plans[consumer_slot];
                    let t0 = (plan.monitor_ix != u16::MAX).then(Instant::now);
                    let r = if plan.fault_ix != u16::MAX {
                        self.run_injector(consumer_slot)
                    } else {
                        Ok(())
                    }
                    .and_then(|()| {
                        self.invoke_in_chain(consumer_slot, consumer_port_ix, &mut msg, &mut ctx)
                    });
                    if let (Some(t0), Ok(())) = (t0, &r) {
                        self.observe_latency(plan.monitor_ix, t0);
                    }
                    if r.is_ok() && plan.checkpoint_ix != u16::MAX {
                        self.cadence_checkpoint(consumer_slot);
                    }
                    r
                }
                Ok(None) => Ok(()),
                Err(e) => Err(e.into()),
            };
            self.restore_ctx(domain_ix, ctx);
            result?;
        }
        Ok(())
    }

    fn enqueue(
        &mut self,
        buffer_ix: usize,
        msg: P,
        ctx: &MemoryContext,
    ) -> Result<(), FrameworkError> {
        match self.buffers[buffer_ix]
            .buffer
            .push(&mut self.mm, ctx, msg)?
        {
            PushOutcome::Accepted => {
                self.stats.async_messages += 1;
                let consumer = self.buffers[buffer_ix].consumer_slot;
                self.seq += 1;
                self.pending.push((
                    PendingKey {
                        priority: self.nodes[consumer].priority,
                        seq: Reverse(self.seq),
                    },
                    buffer_ix,
                ));
                Ok(())
            }
            PushOutcome::Rejected => {
                self.stats.dropped_messages += 1;
                Ok(())
            }
        }
    }

    /// Enqueues `msg` on a cross-domain ring: wait-free, no pending-heap
    /// entry (the consumer shard schedules it), bounded backpressure on a
    /// full ring. The shared in-flight counter is incremented *before* the
    /// push so the parallel quiescence check never observes a published
    /// message it is not counting.
    fn enqueue_cross(&mut self, cross_ix: usize, msg: P) -> Result<(), FrameworkError> {
        self.cross_in_flight.fetch_add(1, Ordering::SeqCst);
        match self.cross_out[cross_ix].push(msg) {
            PushOutcome::Accepted => {
                self.stats.async_messages += 1;
                Ok(())
            }
            PushOutcome::Rejected => {
                self.cross_in_flight.fetch_sub(1, Ordering::SeqCst);
                self.stats.dropped_messages += 1;
                Ok(())
            }
        }
    }

    fn invoke(
        &mut self,
        slot: usize,
        port_ix: u16,
        msg: &mut P,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        match self.mode {
            Mode::Soleil => self.invoke_soleil(slot, port_ix, msg, ctx),
            Mode::MergeAll => self.invoke_merged(slot, port_ix, msg, ctx),
            Mode::UltraMerge => self.invoke_ultra(slot, port_ix, msg, ctx),
        }
    }

    // --- SOLEIL path: reified membrane around every invocation. ---------

    fn invoke_soleil(
        &mut self,
        slot: usize,
        port_ix: u16,
        msg: &mut P,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        let mut membrane = self.membranes[slot].take().ok_or_else(|| {
            FrameworkError::RunToCompletion(format!(
                "re-entrant invocation of '{}'",
                self.nodes[slot].name
            ))
        })?;
        // The pre-gate can panic (a fault injector in the chain): catch it
        // here, poison the membrane — the chain may be half-wound, so the
        // component must not re-activate without a restart — and surface
        // the typed fault.
        let pre = catch_unwind(AssertUnwindSafe(|| membrane.pre_invoke(&mut self.mm, ctx)));
        match pre {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                self.membranes[slot] = Some(membrane);
                return Err(e);
            }
            Err(payload) => {
                membrane.quarantine(true);
                self.membranes[slot] = Some(membrane);
                return Err(FrameworkError::Faulted {
                    component: self.nodes[slot].name.clone(),
                    kind: FaultKind::Panic,
                    detail: panic_detail(payload),
                });
            }
        }
        let mut content = match self.nodes[slot].content.take() {
            Some(c) => c,
            None => {
                let _ = membrane.post_invoke(&mut self.mm, ctx);
                self.membranes[slot] = Some(membrane);
                return Err(FrameworkError::RunToCompletion(format!(
                    "content of '{}' is already executing",
                    self.nodes[slot].name
                )));
            }
        };
        // Check the port name out of its slot (a swap, not a clone); the
        // membrane/content takes above already refused re-entry, so the
        // slot cannot be checked out twice.
        let port = std::mem::take(&mut self.nodes[slot].server_ports[port_ix as usize]);
        let result = {
            let mut ports = SoleilPorts {
                sys: self,
                membrane: &mut membrane,
                ctx,
            };
            // The activation boundary: a panicking content becomes a typed
            // fault and the unwind stops here — port/content/membrane
            // restoration below runs on every exit path, so the engine's
            // own invariants survive the panic (the component's may not;
            // that is the supervisor's call).
            catch_unwind(AssertUnwindSafe(|| {
                content.on_invoke(&port, msg, &mut ports)
            }))
        };
        self.nodes[slot].server_ports[port_ix as usize] = port;
        let result = match result {
            Ok(r) => {
                self.nodes[slot].content = Some(content);
                r
            }
            Err(payload) => {
                // A caught panic may have half-mutated the content state:
                // poison the membrane so re-activation is refused until a
                // supervised restart installs a fresh instance.
                self.nodes[slot].content = Some(content);
                membrane.quarantine(true);
                Err(FrameworkError::Faulted {
                    component: self.nodes[slot].name.clone(),
                    kind: FaultKind::Panic,
                    detail: panic_detail(payload),
                })
            }
        };
        let post = membrane.post_invoke(&mut self.mm, ctx);
        self.membranes[slot] = Some(membrane);
        result.and(post)
    }

    // --- MERGE-ALL path: inlined membrane logic. ------------------------

    fn invoke_merged(
        &mut self,
        slot: usize,
        port_ix: u16,
        msg: &mut P,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        {
            let node = &mut self.nodes[slot];
            if node.quarantined {
                return Err(FrameworkError::Lifecycle(format!(
                    "component '{}' is quarantined pending restart",
                    node.name
                )));
            }
            if !node.started {
                return Err(FrameworkError::Lifecycle(format!(
                    "component '{}' is stopped",
                    node.name
                )));
            }
            if node.busy {
                return Err(FrameworkError::RunToCompletion(format!(
                    "re-entrant invocation of '{}'",
                    node.name
                )));
            }
            node.busy = true;
        }
        let mut content = self.nodes[slot].content.take().expect("busy flag held");
        // Checkout, not clone: the busy flag above guards re-entry.
        let port = std::mem::take(&mut self.nodes[slot].server_ports[port_ix as usize]);
        let result = {
            let mut ports = CompiledPorts {
                sys: self,
                slot,
                ctx,
                checked: true,
            };
            catch_unwind(AssertUnwindSafe(|| {
                content.on_invoke(&port, msg, &mut ports)
            }))
        };
        self.nodes[slot].server_ports[port_ix as usize] = port;
        self.nodes[slot].content = Some(content);
        self.nodes[slot].busy = false;
        self.settle_caught(slot, result)
    }

    // --- ULTRA-MERGE path: flat static dispatch, no checks. -------------

    fn invoke_ultra(
        &mut self,
        slot: usize,
        port_ix: u16,
        msg: &mut P,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        let mut content = self.nodes[slot].content.take().ok_or_else(|| {
            FrameworkError::RunToCompletion(format!(
                "re-entrant invocation of '{}'",
                self.nodes[slot].name
            ))
        })?;
        // Checkout, not clone: the content take above guards re-entry.
        let port = std::mem::take(&mut self.nodes[slot].server_ports[port_ix as usize]);
        let result = {
            let mut ports = CompiledPorts {
                sys: self,
                slot,
                ctx,
                checked: false,
            };
            catch_unwind(AssertUnwindSafe(|| {
                content.on_invoke(&port, msg, &mut ports)
            }))
        };
        self.nodes[slot].server_ports[port_ix as usize] = port;
        self.nodes[slot].content = Some(content);
        self.settle_caught(slot, result)
    }

    /// Settles a caught activation result from the compiled invoke paths:
    /// passes plain results through and converts a caught panic into the
    /// typed fault (cold path — the name clone happens only on a panic).
    fn settle_caught(
        &mut self,
        slot: usize,
        result: std::thread::Result<Result<(), FrameworkError>>,
    ) -> Result<(), FrameworkError> {
        match result {
            Ok(r) => r,
            Err(payload) => Err(FrameworkError::Faulted {
                component: self.nodes[slot].name.clone(),
                kind: FaultKind::Panic,
                detail: panic_detail(payload),
            }),
        }
    }

    /// The cold string-fallback resolution for name-based callers: a
    /// short-circuit scan over the slot's compiled bindings, counted so
    /// steady-state tests can assert interned transactions never take it.
    fn lookup_compiled(&self, slot: usize, port: &str) -> Result<DispatchHeader, FrameworkError> {
        self.string_compares.set(self.string_compares.get() + 1);
        let found = match self.mode {
            Mode::MergeAll => self.compiled[slot].iter().find(|b| b.port.as_ref() == port),
            Mode::UltraMerge => {
                let (s, e) = self.ultra_ranges[slot];
                self.ultra_table[s as usize..e as usize]
                    .iter()
                    .find(|b| b.port.as_ref() == port)
            }
            Mode::Soleil => unreachable!("compiled lookup in SOLEIL mode"),
        };
        let b = found.ok_or_else(|| {
            FrameworkError::Binding(format!(
                "client port '{port}' of '{}' is unbound",
                self.nodes[slot].name
            ))
        })?;
        Ok(b.header)
    }

    /// Interned jump-table dispatch: `[slot][port_id]` indexes straight to
    /// the compiled header — no string compare, no scan, no refcount.
    /// `None` when the id is unbound for this slot (the cold error path).
    #[inline]
    fn lookup_interned(&self, slot: usize, id: PortId) -> Option<DispatchHeader> {
        let ix = *self.port_jump[slot].get(id.0 as usize)? as usize;
        match self.mode {
            Mode::MergeAll => self.compiled[slot].get(ix).map(|b| b.header),
            Mode::UltraMerge => self.ultra_table.get(ix).map(|b| b.header),
            Mode::Soleil => None,
        }
    }

    /// The unbound-port error of the interned path: reconstructs the port
    /// *name* from the intern universe so cold failures read identically
    /// to the string-fallback path.
    fn unbound_interned(&self, slot: usize, id: PortId) -> FrameworkError {
        FrameworkError::Binding(format!(
            "client port '{}' of '{}' is unbound",
            self.port_name(id),
            self.nodes[slot].name
        ))
    }

    fn cross_scope_call(
        &mut self,
        r: DispatchHeader,
        msg: &mut P,
        ctx: &mut MemoryContext,
    ) -> Result<(), FrameworkError> {
        match r.pattern {
            PatternKind::Direct | PatternKind::ImmortalExchange => {
                self.invoke(r.target_slot, r.server_port_ix, msg, ctx)
            }
            PatternKind::ExecuteInOuter => {
                // The build-time access decision replaces the scope-stack
                // walk when the server area is provably on the stack.
                if r.outer_on_stack {
                    self.mm
                        .begin_execute_in_area_prechecked(ctx, r.server_area)?;
                } else {
                    self.mm.begin_execute_in_area(ctx, r.server_area)?;
                }
                let out = self.invoke(r.target_slot, r.server_port_ix, msg, ctx);
                self.mm.end_execute_in_area(ctx)?;
                out
            }
            PatternKind::EnterInner => {
                // The enter path is an arena window addressed by the
                // header's `(offset, len)` range — reading it copies plain
                // `AreaId`s, no `Arc` traffic anywhere on this path.
                let (off, len) = (r.enter_off as usize, r.enter_len as usize);
                let mut entered = 0;
                let mut out = Ok(());
                for i in 0..len {
                    let scope = self.enter_arena[off + i];
                    if let Err(e) = self.mm.enter(ctx, scope) {
                        out = Err(e.into());
                        break;
                    }
                    entered += 1;
                }
                if out.is_ok() {
                    out = self.invoke(r.target_slot, r.server_port_ix, msg, ctx);
                }
                for _ in 0..entered {
                    self.mm.exit(ctx)?;
                }
                out
            }
            PatternKind::HandoffThroughParent => {
                // Deep-copy in, deep-copy out: no reference crosses.
                let mut copy = msg.clone();
                let out = self.invoke(r.target_slot, r.server_port_ix, &mut copy, ctx);
                *msg = copy;
                out
            }
        }
    }

    // -----------------------------------------------------------------
    // Lifecycle & reconfiguration
    // -----------------------------------------------------------------

    fn start_slot(&mut self, slot: usize) -> Result<(), FrameworkError> {
        if let Some(c) = self.nodes[slot].content.as_mut() {
            c.on_start();
        }
        self.nodes[slot].started = true;
        if let Some(m) = self.membranes.get_mut(slot).and_then(|m| m.as_mut()) {
            m.lifecycle.start();
        }
        Ok(())
    }

    fn reject_static(&self) -> Result<(), FrameworkError> {
        if self.mode == Mode::UltraMerge {
            return Err(FrameworkError::Unsupported(
                "ULTRA-MERGE systems are purely static".into(),
            ));
        }
        Ok(())
    }

    /// Stops `slot`: invocations refused until restarted.
    pub(crate) fn stop_at(&mut self, slot: usize) -> Result<(), FrameworkError> {
        self.reject_static()?;
        if let Some(c) = self.nodes[slot].content.as_mut() {
            c.on_stop();
        }
        self.nodes[slot].started = false;
        if let Some(m) = self.membranes.get_mut(slot).and_then(|m| m.as_mut()) {
            m.lifecycle.stop();
        }
        // An explicit stop overrides supervision: a pending supervised
        // restart must not revive the component behind the user's back.
        self.cancel_restart_timer(slot);
        Ok(())
    }

    /// Disarms `slot`'s pending supervised-restart timer, if any. Safe on
    /// stale handles — the generation check makes a lost race (timer
    /// already fired) a no-op.
    fn cancel_restart_timer(&mut self, slot: usize) {
        if let Some(handle) = self
            .supervisors
            .get_mut(slot)
            .and_then(|s| s.restart_timer.take())
        {
            self.timers.cancel(handle);
        }
    }

    /// (Re)starts `slot`.
    pub(crate) fn start_at(&mut self, slot: usize) -> Result<(), FrameworkError> {
        self.reject_static()?;
        self.start_slot(slot)
    }

    /// The slot currently targeted by `client_slot`'s synchronous `port`
    /// (used by the transactional reconfiguration journal).
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Binding`] for unbound or asynchronous ports;
    /// [`FrameworkError::Unsupported`] under ULTRA-MERGE.
    pub(crate) fn sync_target_of(
        &self,
        client_slot: usize,
        port: &str,
    ) -> Result<usize, FrameworkError> {
        self.reject_static()?;
        let (target_slot, is_async) = match self.mode {
            Mode::Soleil => {
                let m = self.membranes[client_slot]
                    .as_ref()
                    .expect("membrane present outside invocation");
                let t = m.binding.resolve(port)?;
                (t.target_slot, t.is_async)
            }
            Mode::MergeAll => {
                let b = self.compiled[client_slot]
                    .iter()
                    .find(|b| b.port.as_ref() == port)
                    .ok_or_else(|| {
                        FrameworkError::Binding(format!("client port '{port}' is unbound"))
                    })?;
                (b.header.target_slot, b.header.is_async)
            }
            Mode::UltraMerge => unreachable!("rejected above"),
        };
        if is_async {
            return Err(FrameworkError::Binding(
                "cannot rebind asynchronous bindings at runtime".into(),
            ));
        }
        Ok(target_slot)
    }

    /// Slot-indexed rebinding (the engine half of the transactional path:
    /// SOLEIL goes through the membrane's BindingController, MERGE-ALL
    /// patches the compiled slot).
    pub(crate) fn rebind_at(
        &mut self,
        client_slot: usize,
        port: &str,
        server_slot: usize,
    ) -> Result<(), FrameworkError> {
        self.reject_static()?;
        match self.mode {
            Mode::Soleil => {
                let (old, server_port_name) = {
                    let m = self.membranes[client_slot]
                        .as_ref()
                        .expect("membrane present outside invocation");
                    let t = m.binding.resolve(port)?.clone();
                    let name = t.server_port.clone();
                    (t, name)
                };
                if old.is_async {
                    return Err(FrameworkError::Binding(
                        "cannot rebind asynchronous bindings at runtime".into(),
                    ));
                }
                let new_port_ix = port_index(&self.nodes[server_slot], &server_port_name)?;
                let new_area = self.areas[self.nodes[server_slot].area_ix].id;
                let client_area = self.areas[self.nodes[client_slot].area_ix].id;
                let (pattern, enter_path) = self.pattern_between(client_area, new_area);
                let outer_on_stack = self.outer_proof(client_slot, pattern, new_area);
                let plan = MemoryPlan {
                    pattern,
                    server_area: new_area,
                    enter_path,
                    transient_scope: None,
                    outer_on_stack,
                };
                // Rebinding recompiles the binding's fused gate along with
                // its interceptor: the plan stays a deploy/rebind-time
                // artifact, never consulted-and-derived per call.
                self.mem_gates[old.binding_ix] = plan.fast_gate();
                self.mem_interceptors[old.binding_ix] = Some(MemoryInterceptor::new(plan));
                let m = self.membranes[client_slot]
                    .as_mut()
                    .expect("membrane present outside invocation");
                m.binding.bind(
                    port.to_string(),
                    BindingTarget {
                        target_slot: server_slot,
                        server_port: server_port_name,
                        server_port_ix: new_port_ix,
                        is_async: false,
                        buffer_index: None,
                        binding_ix: old.binding_ix,
                        cross: false,
                    },
                );
                // `bind` replaces in place, so compiled jump indices stay
                // valid; recompiling anyway keeps the plan an invariant of
                // this one (cold) site rather than of `bind`'s internals.
                m.binding.compile_jump(&self.port_names);
                self.dispatch_generation = mint_dispatch_generation();
                Ok(())
            }
            Mode::MergeAll => {
                let client_area = self.areas[self.nodes[client_slot].area_ix].id;
                let new_area = self.areas[self.nodes[server_slot].area_ix].id;
                let (pattern, enter_path) = self.pattern_between(client_area, new_area);
                let server_port_name = {
                    let b = self.compiled[client_slot]
                        .iter()
                        .find(|b| b.port.as_ref() == port)
                        .ok_or_else(|| {
                            FrameworkError::Binding(format!("client port '{port}' is unbound"))
                        })?;
                    if b.header.is_async {
                        return Err(FrameworkError::Binding(
                            "cannot rebind asynchronous bindings at runtime".into(),
                        ));
                    }
                    self.nodes[b.header.target_slot].server_ports[b.header.server_port_ix as usize]
                        .to_string()
                };
                let new_port_ix = port_index(&self.nodes[server_slot], &server_port_name)?;
                let outer_on_stack = self.outer_proof(client_slot, pattern, new_area);
                // The replacement header comes from the same constructor
                // build uses; the arena's window reuse means rebinding back
                // to an earlier target restores the old header
                // byte-identically (transactional rollback relies on it).
                let header = DispatchHeader::compile(
                    &mut self.enter_arena,
                    server_slot,
                    new_port_ix,
                    false,
                    usize::MAX,
                    pattern,
                    new_area,
                    &enter_path,
                    outer_on_stack,
                    false,
                );
                let b = self.compiled[client_slot]
                    .iter_mut()
                    .find(|b| b.port.as_ref() == port)
                    .expect("found above");
                b.header = header;
                self.recompile_port_jump();
                Ok(())
            }
            Mode::UltraMerge => unreachable!("handled above"),
        }
    }

    /// The build-time access proof for `ExecuteInOuter` bindings: the
    /// server area sits on the client's static scope chain, so it is on
    /// the stack whenever the binding fires and the per-call containment
    /// walk may be skipped. Single source of truth for rebinding; the
    /// `outer_on_stack` closure in [`System::build`] mirrors it (it runs
    /// before `self` exists).
    fn outer_proof(&self, client_slot: usize, pattern: PatternKind, server_area: AreaId) -> bool {
        pattern == PatternKind::ExecuteInOuter
            && self.nodes[client_slot].scope_chain.contains(&server_area)
    }

    /// Recomputes the cross-scope pattern (and, for `EnterInner`, the
    /// relative scope chain to enter) between two runtime areas — used by
    /// runtime rebinding.
    fn pattern_between(&self, client: AreaId, server: AreaId) -> (PatternKind, Vec<AreaId>) {
        if client == server {
            return (PatternKind::Direct, Vec::new());
        }
        let kind = |id: AreaId| {
            self.areas
                .iter()
                .find(|a| a.id == id)
                .map(|a| a.kind)
                .unwrap_or(MemoryKind::Heap)
        };
        if matches!(kind(server), MemoryKind::Heap | MemoryKind::Immortal) {
            return (PatternKind::Direct, Vec::new());
        }
        // Scoped chains (outermost first) from the nesting recorded at
        // bootstrap.
        let scoped_chain = |start: AreaId| {
            let mut out = Vec::new();
            let mut ix = self.areas.iter().position(|a| a.id == start);
            while let Some(i) = ix {
                if self.areas[i].kind == MemoryKind::Scoped {
                    out.push(self.areas[i].id);
                }
                ix = self.areas[i].parent;
            }
            out.reverse();
            out
        };
        let client_chain = scoped_chain(client);
        let server_chain = scoped_chain(server);
        if client_chain.contains(&server) {
            // Server scope encloses the client: switch outward.
            return (PatternKind::ExecuteInOuter, Vec::new());
        }
        let common = client_chain
            .iter()
            .zip(server_chain.iter())
            .take_while(|(a, b)| a == b)
            .count();
        if common == client_chain.len() {
            // The client's whole chain is a prefix of the server's (this
            // includes unscoped clients): enter the remaining suffix.
            return (PatternKind::EnterInner, server_chain[common..].to_vec());
        }
        (PatternKind::HandoffThroughParent, Vec::new())
    }

    /// Domain roster index by name (cold-path resolution for
    /// reconfiguration).
    pub(crate) fn domain_ix_by_name(&self, name: &str) -> Option<usize> {
        self.domains.iter().position(|d| d.name == name)
    }

    /// The domain a slot currently executes under.
    pub(crate) fn node_domain_ix(&self, slot: usize) -> Option<usize> {
        self.nodes[slot].domain_ix
    }

    /// The dispatch priority a slot currently runs at (used by the
    /// parallel runtime to drain incoming cross-domain rings in consumer
    /// priority order).
    pub(crate) fn node_priority(&self, slot: usize) -> Priority {
        self.nodes[slot].priority
    }

    /// Re-homes a slot onto another thread domain, adopting its priority
    /// (`None` detaches — the component then runs on an anonymous regular
    /// context, like an undeployed passive). Invalidates the cached
    /// periodic release order, which is priority-sorted.
    pub(crate) fn set_domain_at(&mut self, slot: usize, domain_ix: Option<usize>) {
        self.nodes[slot].domain_ix = domain_ix;
        self.nodes[slot].priority = domain_ix
            .map(|d| self.domains[d].priority)
            .unwrap_or(Priority::NORM);
        self.recompute_periodic_order();
    }

    /// Runtime-area index by name (cold-path resolution for re-homing
    /// reconfigurations; areas are named after their architectural
    /// memory-area components).
    pub(crate) fn area_ix_by_name(&self, name: &str) -> Option<usize> {
        self.areas.iter().position(|a| a.name == name)
    }

    /// Bytes the slot's checkpointed state occupies — the handoff charge
    /// of a re-homing migration (same floor as the build-time charge).
    pub(crate) fn state_bytes_at(&self, slot: usize) -> usize {
        self.nodes[slot]
            .content
            .as_ref()
            .map_or(1, |c| c.state_bytes())
            .max(1)
    }

    /// Charges `bytes` against runtime area `area_ix` — the commit-time
    /// half of a deferred reconfiguration charge. Refused transactions
    /// never reach this, so they stay charge-neutral; a committed charge
    /// is permanent, because immortal/scoped accounting is monotonic
    /// (authentic RTSJ: immortal memory is never reclaimed).
    ///
    /// # Errors
    ///
    /// Substrate budget exhaustion (the commit is then refused).
    pub(crate) fn charge_area(
        &mut self,
        area_ix: usize,
        bytes: usize,
    ) -> Result<(), FrameworkError> {
        let kind = if self.areas[area_ix].kind == MemoryKind::Heap {
            ThreadKind::Regular
        } else {
            ThreadKind::Realtime
        };
        let ctx = self.mm.context(kind);
        self.mm.alloc_raw(&ctx, self.areas[area_ix].id, bytes)?;
        Ok(())
    }

    /// Charges `bytes` against immortal memory — the commit-time half of a
    /// deferred cross-shard ring installation (rings live in immortal
    /// memory, like the build-time carriers). Same monotonic semantics as
    /// [`System::charge_area`].
    ///
    /// # Errors
    ///
    /// Substrate budget exhaustion (the commit is then refused).
    pub(crate) fn charge_immortal(&mut self, bytes: usize) -> Result<(), FrameworkError> {
        let ctx = self.mm.context(ThreadKind::Realtime);
        self.mm.alloc_raw(&ctx, AreaId::IMMORTAL, bytes)?;
        Ok(())
    }

    /// Re-homes a slot's allocation region onto another runtime area: the
    /// checkpoint/handoff half of a `reassign_domain` whose domain edge
    /// moves the component under a different memory area. Recomputes the
    /// slot's scope chain and activation plan, then recompiles the
    /// dispatch state of every local binding touching the slot at either
    /// end — all through the same constructors build uses, with arena
    /// window reuse, so re-homing back restores every header
    /// byte-identically (the transactional-rollback guarantee). Returns
    /// the previous area index; rollback is the symmetric call.
    ///
    /// The substrate charge for the migrated state is **not** made here:
    /// callers defer it to commit time (see [`System::charge_area`]) so a
    /// refused transaction is charge-neutral. The old region's charge
    /// stands either way — monotonic accounting, like build.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Unsupported`] under ULTRA-MERGE;
    /// [`FrameworkError::Content`] for an unknown area index.
    pub(crate) fn rehome_area_at(
        &mut self,
        slot: usize,
        new_area_ix: usize,
    ) -> Result<usize, FrameworkError> {
        self.reject_static()?;
        if new_area_ix >= self.areas.len() {
            return Err(FrameworkError::Content(format!(
                "re-home target area index {new_area_ix} out of range"
            )));
        }
        let old_area_ix = self.nodes[slot].area_ix;
        if new_area_ix == old_area_ix {
            return Ok(old_area_ix);
        }
        // The scoped chain the component's thread now stands in (the same
        // walk as build).
        let mut scope_chain = Vec::new();
        let mut cursor = Some(new_area_ix);
        while let Some(ix) = cursor {
            if self.areas[ix].kind == MemoryKind::Scoped {
                scope_chain.push(self.areas[ix].id);
            }
            cursor = self.areas[ix].parent;
        }
        scope_chain.reverse();
        self.nodes[slot].area_ix = new_area_ix;
        self.nodes[slot].scope_chain = scope_chain;
        let (chain_off, chain_len) =
            intern_enter_path(&mut self.enter_arena, &self.nodes[slot].scope_chain);
        self.activation_plans[slot].chain_off = chain_off;
        self.activation_plans[slot].chain_len = chain_len as u16;
        self.recompile_bindings_touching(slot);
        self.recompile_port_jump();
        Ok(old_area_ix)
    }

    /// Recompiles the memory plan of every **local** binding with `slot`
    /// at either end — a re-homing changed the areas those plans were
    /// computed from. Cross-ring slots are untouched: their dispatch is
    /// settled on the consumer's shard, not here.
    fn recompile_bindings_touching(&mut self, slot: usize) {
        match self.mode {
            Mode::Soleil => {
                let mut touched: Vec<(usize, usize, usize)> = Vec::new();
                for (c, m) in self.membranes.iter().enumerate() {
                    let Some(m) = m else { continue };
                    for (_, t) in m.binding.entries() {
                        if !t.cross
                            && t.binding_ix != usize::MAX
                            && (c == slot || t.target_slot == slot)
                        {
                            touched.push((c, t.binding_ix, t.target_slot));
                        }
                    }
                }
                for (c, bix, server) in touched {
                    let client_area = self.areas[self.nodes[c].area_ix].id;
                    let server_area = self.areas[self.nodes[server].area_ix].id;
                    let (pattern, enter_path) = self.pattern_between(client_area, server_area);
                    let outer_on_stack = self.outer_proof(c, pattern, server_area);
                    let plan = MemoryPlan {
                        pattern,
                        server_area,
                        enter_path,
                        transient_scope: None,
                        outer_on_stack,
                    };
                    self.mem_gates[bix] = plan.fast_gate();
                    self.mem_interceptors[bix] = Some(MemoryInterceptor::new(plan));
                }
            }
            Mode::MergeAll => {
                let mut touched: Vec<(usize, usize, usize)> = Vec::new();
                for (c, row) in self.compiled.iter().enumerate() {
                    for (i, b) in row.iter().enumerate() {
                        if !b.header.is_cross && (c == slot || b.header.target_slot == slot) {
                            touched.push((c, i, b.header.target_slot));
                        }
                    }
                }
                for (c, i, server) in touched {
                    let client_area = self.areas[self.nodes[c].area_ix].id;
                    let server_area = self.areas[self.nodes[server].area_ix].id;
                    let (pattern, enter_path) = self.pattern_between(client_area, server_area);
                    let outer_on_stack = self.outer_proof(c, pattern, server_area);
                    let old = self.compiled[c][i].header;
                    let header = DispatchHeader::compile(
                        &mut self.enter_arena,
                        old.target_slot,
                        old.server_port_ix,
                        old.is_async,
                        old.buffer_ix,
                        pattern,
                        server_area,
                        &enter_path,
                        outer_on_stack,
                        false,
                    );
                    self.compiled[c][i].header = header;
                }
            }
            Mode::UltraMerge => unreachable!("re-homing is gated by reject_static"),
        }
    }

    /// Repoints a client's **asynchronous** port onto a freshly installed
    /// cross-domain ring whose producer endpoint is `tx` — the engine half
    /// of cross-ring rewiring when a parallel rebind moves a binding
    /// across the domain partition. The ring index is appended to
    /// `cross_out` and the binding's compiled slot is recompiled with
    /// `is_cross` set, exactly the shape build gives deploy-time rings.
    /// Returns the undo record for the per-shard journal.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Binding`] for unbound or synchronous ports;
    /// [`FrameworkError::Unsupported`] under ULTRA-MERGE.
    pub(crate) fn repoint_async_to_cross(
        &mut self,
        client_slot: usize,
        port: &str,
        tx: SpscProducer<P>,
    ) -> Result<AsyncRepointUndo, FrameworkError> {
        self.reject_static()?;
        let cross_ix = self.cross_out.len();
        let old = match self.mode {
            Mode::Soleil => {
                let old = {
                    let m = self.membranes[client_slot]
                        .as_ref()
                        .expect("membrane present outside invocation");
                    m.binding.resolve(port)?.clone()
                };
                if !old.is_async {
                    return Err(FrameworkError::Binding(format!(
                        "client port '{port}' is synchronous; cross-domain rings carry \
                         asynchronous bindings only"
                    )));
                }
                let m = self.membranes[client_slot]
                    .as_mut()
                    .expect("membrane present outside invocation");
                m.binding.bind(
                    port.to_string(),
                    BindingTarget {
                        target_slot: usize::MAX,
                        server_port: String::new(),
                        server_port_ix: 0,
                        is_async: true,
                        buffer_index: Some(cross_ix),
                        binding_ix: usize::MAX,
                        cross: true,
                    },
                );
                m.binding.compile_jump(&self.port_names);
                OldAsyncBinding::Reified(old)
            }
            Mode::MergeAll => {
                let old = {
                    let b = self.compiled[client_slot]
                        .iter()
                        .find(|b| b.port.as_ref() == port)
                        .ok_or_else(|| {
                            FrameworkError::Binding(format!("client port '{port}' is unbound"))
                        })?;
                    if !b.header.is_async {
                        return Err(FrameworkError::Binding(format!(
                            "client port '{port}' is synchronous; cross-domain rings carry \
                             asynchronous bindings only"
                        )));
                    }
                    b.header
                };
                // Same header shape build compiles for deploy-time rings.
                let header = DispatchHeader::compile(
                    &mut self.enter_arena,
                    usize::MAX,
                    0,
                    true,
                    cross_ix,
                    PatternKind::ImmortalExchange,
                    AreaId::IMMORTAL,
                    &[],
                    false,
                    true,
                );
                let b = self.compiled[client_slot]
                    .iter_mut()
                    .find(|b| b.port.as_ref() == port)
                    .expect("found above");
                b.header = header;
                OldAsyncBinding::Compiled(old)
            }
            Mode::UltraMerge => unreachable!("rejected above"),
        };
        self.cross_out.push(tx);
        self.recompile_port_jump();
        Ok(AsyncRepointUndo {
            client_slot,
            port: port.to_string(),
            cross_ix,
            old,
        })
    }

    /// Rolls back a [`System::repoint_async_to_cross`]: the appended ring
    /// producer is retired (journals replay LIFO, so it is necessarily the
    /// newest `cross_out` entry — truncation cannot disturb ring indices
    /// baked into other compiled slots) and the previous binding state is
    /// restored byte-identically.
    pub(crate) fn restore_async_binding(&mut self, undo: AsyncRepointUndo) {
        debug_assert_eq!(
            undo.cross_ix + 1,
            self.cross_out.len(),
            "async repoint rollback out of journal order"
        );
        self.cross_out.truncate(undo.cross_ix);
        match undo.old {
            OldAsyncBinding::Reified(t) => {
                let m = self.membranes[undo.client_slot]
                    .as_mut()
                    .expect("membrane present outside invocation");
                m.binding.bind(undo.port, t);
                m.binding.compile_jump(&self.port_names);
            }
            OldAsyncBinding::Compiled(h) => {
                let b = self.compiled[undo.client_slot]
                    .iter_mut()
                    .find(|b| b.port.as_ref() == undo.port.as_str())
                    .expect("repointed binding still present");
                b.header = h;
            }
        }
        self.recompile_port_jump();
    }

    /// A structural fingerprint of the reconfigurable state — lifecycle,
    /// domains, areas, scope chains, activation plans, binding tables,
    /// compiled dispatch headers, jump tables, contracts and fault
    /// policies. Deliberately **excludes** traffic state (ledgers,
    /// histograms, ring/buffer contents, supervision counters): a refused
    /// transaction must restore this digest bit-for-bit even though the
    /// quiescence epoch that preceded it legitimately delivered messages.
    /// The reconfiguration suites and the `reconfig-gate` artifact assert
    /// on it.
    #[must_use]
    pub fn structural_digest(&self) -> u64 {
        use std::fmt::Write as _;
        use std::hash::{Hash, Hasher};
        let mut s = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = write!(
                s,
                "n{i}:{};{};{};{:?};{};{:?};{:?};{:?}|",
                n.name,
                n.started,
                n.quarantined,
                n.domain_ix,
                n.area_ix,
                n.priority,
                n.ceiling,
                n.scope_chain
            );
        }
        for (i, p) in self.activation_plans.iter().enumerate() {
            let _ = write!(s, "a{i}:{p:?}|");
        }
        for (i, name) in self.port_names.iter().enumerate() {
            let _ = write!(s, "p{i}:{name}|");
        }
        for (i, row) in self.port_jump.iter().enumerate() {
            let _ = write!(s, "j{i}:{row:?}|");
        }
        match self.mode {
            Mode::Soleil => {
                for (i, m) in self.membranes.iter().enumerate() {
                    let Some(m) = m else { continue };
                    for (port, t) in m.binding.entries() {
                        let _ = write!(s, "b{i}:{port}->{t:?}|");
                    }
                }
            }
            Mode::MergeAll => {
                for (i, row) in self.compiled.iter().enumerate() {
                    for b in row {
                        let _ = write!(s, "c{i}:{}:{:?}|", b.port, b.header);
                    }
                }
            }
            Mode::UltraMerge => {
                for (i, r) in self.ultra_ranges.iter().enumerate() {
                    let _ = write!(s, "u{i}:{r:?}|");
                }
            }
        }
        for (i, m) in self.monitors.iter().enumerate() {
            if let Some(m) = m {
                let _ = write!(s, "m{i}:{:?}|", m.contract);
            }
        }
        for (i, sup) in self.supervisors.iter().enumerate() {
            let _ = write!(s, "s{i}:{:?}^{:?}|", sup.policy, sup.supervisor);
        }
        let _ = write!(s, "x:{}|o:{:?}", self.cross_out.len(), self.periodic_order);
        let mut h = std::collections::hash_map::DefaultHasher::new();
        s.hash(&mut h);
        h.finish()
    }

    /// Tears the system down: stops every component (running `on_stop`
    /// hooks) and releases the wedge pins of scoped areas, which reclaims
    /// their storage. The system cannot be used afterwards.
    ///
    /// # Errors
    ///
    /// Substrate errors releasing pins (double shutdown).
    pub fn shutdown(&mut self) -> Result<(), FrameworkError> {
        for slot in 0..self.nodes.len() {
            if let Some(c) = self.nodes[slot].content.as_mut() {
                c.on_stop();
            }
            self.nodes[slot].started = false;
            if let Some(m) = self.membranes.get_mut(slot).and_then(|m| m.as_mut()) {
                m.lifecycle.stop();
            }
        }
        for area in &mut self.areas {
            if let Some(mut pin) = area.controller.take_pin() {
                pin.release(&mut self.mm)?;
            }
        }
        Ok(())
    }

    /// The single SOLEIL-only gate: merged modes have no reified
    /// membranes, so every membrane-level operation refuses with one
    /// consistent message.
    fn require_soleil(&self, what: &str) -> Result<(), FrameworkError> {
        if self.mode != Mode::Soleil {
            return Err(FrameworkError::Unsupported(format!(
                "{what} requires SOLEIL mode (running {})",
                self.mode
            )));
        }
        Ok(())
    }

    /// Membrane-level introspection — SOLEIL mode only, per the paper.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Unsupported`] in the merged modes.
    pub fn membrane_info(&self, component: &str) -> Result<MembraneInfo, FrameworkError> {
        self.require_soleil("membrane introspection")?;
        let slot = self.slot_ix(component)?;
        self.membrane_info_at(slot)
    }

    /// Slot-indexed membrane introspection (SOLEIL mode only).
    pub(crate) fn membrane_info_at(&self, slot: usize) -> Result<MembraneInfo, FrameworkError> {
        self.require_soleil("membrane introspection")?;
        let m = self.membranes[slot]
            .as_ref()
            .expect("membrane present outside invocation");
        Ok(MembraneInfo {
            component: m.component.clone(),
            started: m.lifecycle.state() == LifecycleState::Started,
            interceptors: m
                .interceptor_names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            bound_ports: m.binding.ports().iter().map(|s| s.to_string()).collect(),
            plan_fully_compiled: m.plan().is_fully_compiled(),
            plan_fusion: m.plan().fusion(),
        })
    }

    /// The reified deployment spec — SOLEIL keeps it alive for
    /// introspection; merged modes drop it.
    pub fn reified_spec(&self) -> Option<&SystemSpec> {
        self.reified_spec.as_ref()
    }

    /// Installs a [`JitterMonitor`](soleil_membrane::interceptors::JitterMonitor)
    /// in a live component's membrane — *membrane-level* reconfiguration,
    /// available only where membranes are reified (SOLEIL mode).
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Unsupported`] in the merged modes.
    pub fn enable_jitter_monitoring(&mut self, component: &str) -> Result<(), FrameworkError> {
        self.require_soleil("membrane reconfiguration")?;
        let slot = self.slot_ix(component)?;
        self.enable_jitter_at(slot).map(|_| ())
    }

    /// Slot-indexed jitter-monitor installation (SOLEIL mode only);
    /// true when a monitor was newly installed (the plan recompiled).
    pub(crate) fn enable_jitter_at(&mut self, slot: usize) -> Result<bool, FrameworkError> {
        self.require_soleil("membrane reconfiguration")?;
        let m = self.membranes[slot]
            .as_mut()
            .expect("membrane present outside invocation");
        if m.interceptor("jitter-monitor").is_none() {
            m.push_interceptor(Box::new(soleil_membrane::interceptors::JitterMonitor::new()));
            return Ok(true);
        }
        Ok(false)
    }

    /// Removes the named interceptor from a slot's membrane, returning its
    /// chain position and the step itself so a reconfiguration journal can
    /// restore the plan byte-identically on rollback (SOLEIL mode only;
    /// the plan recompiles).
    pub(crate) fn take_interceptor_at(
        &mut self,
        slot: usize,
        name: &str,
    ) -> Result<Option<(usize, InterceptStep)>, FrameworkError> {
        self.require_soleil("membrane reconfiguration")?;
        Ok(self.membranes[slot]
            .as_mut()
            .expect("membrane present outside invocation")
            .take_interceptor(name))
    }

    /// Splices a step back into a slot's membrane at its old chain
    /// position — the rollback half of [`take_interceptor_at`]
    /// (SOLEIL mode only; the plan recompiles).
    ///
    /// [`take_interceptor_at`]: Self::take_interceptor_at
    pub(crate) fn insert_step_at(
        &mut self,
        slot: usize,
        index: usize,
        step: InterceptStep,
    ) -> Result<(), FrameworkError> {
        self.require_soleil("membrane reconfiguration")?;
        self.membranes[slot]
            .as_mut()
            .expect("membrane present outside invocation")
            .insert_step(index, step);
        Ok(())
    }

    /// Removes the named interceptor from a slot's membrane; true when one
    /// was removed (SOLEIL mode only; undo of a journaled installation).
    pub(crate) fn remove_interceptor_at(
        &mut self,
        slot: usize,
        name: &str,
    ) -> Result<bool, FrameworkError> {
        self.require_soleil("membrane reconfiguration")?;
        Ok(self.membranes[slot]
            .as_mut()
            .expect("membrane present outside invocation")
            .remove_interceptor(name))
    }

    /// Removes a previously installed jitter monitor; true when one was
    /// removed.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Unsupported`] in the merged modes.
    pub fn disable_jitter_monitoring(&mut self, component: &str) -> Result<bool, FrameworkError> {
        self.require_soleil("membrane reconfiguration")?;
        let slot = self.slot_ix(component)?;
        self.disable_jitter_at(slot)
    }

    /// Slot-indexed jitter-monitor removal (SOLEIL mode only).
    pub(crate) fn disable_jitter_at(&mut self, slot: usize) -> Result<bool, FrameworkError> {
        self.require_soleil("membrane reconfiguration")?;
        Ok(self.membranes[slot]
            .as_mut()
            .expect("membrane present outside invocation")
            .remove_interceptor("jitter-monitor"))
    }

    /// Inter-activation gaps recorded by a component's jitter monitor, in
    /// nanoseconds (empty when no monitor is installed).
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Unsupported`] in the merged modes.
    pub fn jitter_observations(&self, component: &str) -> Result<Vec<u64>, FrameworkError> {
        self.require_soleil("membrane introspection")?;
        let slot = self.slot_ix(component)?;
        self.jitter_at(slot)
    }

    /// Slot-indexed jitter readout (SOLEIL mode only).
    pub(crate) fn jitter_at(&self, slot: usize) -> Result<Vec<u64>, FrameworkError> {
        self.require_soleil("membrane introspection")?;
        let m = self.membranes[slot]
            .as_ref()
            .expect("membrane present outside invocation");
        Ok(m.interceptor("jitter-monitor")
            .and_then(|i| {
                i.as_any()
                    .downcast_ref::<soleil_membrane::interceptors::JitterMonitor>()
            })
            .map(|jm| jm.gaps_ns().to_vec())
            .unwrap_or_default())
    }

    // -----------------------------------------------------------------
    // Release engine: timer queue + runtime contracts
    // -----------------------------------------------------------------

    /// The engine's virtual release clock (advanced by `run_tick` /
    /// [`advance_clock_to`](Self::advance_clock_to)).
    pub fn clock(&self) -> AbsoluteTime {
        self.clock
    }

    /// The clock advance per `run_tick` (fastest periodic period).
    pub fn tick_quantum(&self) -> RelativeTime {
        self.tick_quantum
    }

    /// Currently armed (scheduled, unfired, uncancelled) timers.
    pub fn armed_timers(&self) -> usize {
        self.timers.armed()
    }

    /// Preallocated timer-queue capacity.
    pub fn timer_capacity(&self) -> usize {
        self.timers.capacity()
    }

    /// Schedules an extra release of the periodic component in `slot` at
    /// absolute engine time `at` (fires during the first tick whose clock
    /// reaches `at`, before the regular periodic releases; ties across
    /// timers break by component priority, then schedule order).
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Timer`] when the slot is not periodic or the
    /// preallocated queue is full; [`FrameworkError::Content`] for a bad
    /// slot.
    pub fn schedule_release(
        &mut self,
        slot: usize,
        at: AbsoluteTime,
    ) -> Result<TimerHandle, FrameworkError> {
        let plan = self
            .activation_plans
            .get(slot)
            .ok_or_else(|| FrameworkError::Content(format!("bad slot {slot}")))?;
        if plan.release_ix == u16::MAX {
            return Err(FrameworkError::Timer(format!(
                "component '{}' is not periodic: scheduled releases need a {RELEASE_PORT} port",
                self.nodes[slot].name
            )));
        }
        let priority = self.nodes[slot].priority;
        self.timers.schedule(at, priority, slot as u32)
    }

    /// Cancels a scheduled release; `false` when the handle is stale
    /// (already fired or cancelled).
    pub fn cancel_release(&mut self, handle: TimerHandle) -> bool {
        self.timers.cancel(handle)
    }

    /// Advances the clock to `now` (monotonic; earlier instants only fire
    /// what is already due) and fires every due timer. Returns the number
    /// of releases fired.
    ///
    /// # Errors
    ///
    /// The first failing fired transaction aborts the advance.
    pub fn advance_clock_to(&mut self, now: AbsoluteTime) -> Result<u64, FrameworkError> {
        self.clock = self.clock.max(now);
        let before = self.stats.timer_fires;
        self.fire_due_timers()?;
        Ok(self.stats.timer_fires - before)
    }

    /// Fires every timer due at the current clock, most urgent first, each
    /// as a full run-to-completion transaction (release + sync nest +
    /// async cascade), exactly like a periodic release.
    fn fire_due_timers(&mut self) -> Result<(), FrameworkError> {
        while let Some(fired) = self.timers.pop_due(self.clock) {
            // Supervised-restart timers share the queue with releases,
            // distinguished by the payload's tag bit.
            if fired.payload & RESTART_TAG != 0 {
                self.stats.timer_fires += 1;
                let slot = (fired.payload & !RESTART_TAG) as usize;
                self.supervisors[slot].restart_timer = None;
                self.restart_subtree(slot)?;
                continue;
            }
            let slot = fired.payload as usize;
            let plan = self.activation_plans[slot];
            debug_assert_ne!(plan.release_ix, u16::MAX, "schedule checked periodicity");
            self.stats.timer_fires += 1;
            // A release scheduled before the quarantine is suppressed and
            // counted, like the periodic path.
            if plan.quarantined {
                self.supervisors[slot].suppressed_releases += 1;
                continue;
            }
            if let Err(e) = self.run_release(slot, plan) {
                self.handle_fault(e)?;
            }
        }
        Ok(())
    }

    /// Attaches a timing contract to `slot` (any mode — contracts are
    /// engine-level observability, not membrane reconfiguration), building
    /// its allocation-free latency monitor and compiling the monitor index
    /// into the slot's activation plan. Returns the previously attached
    /// contract state, if any (the reconfiguration journal's undo token).
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] for a bad slot.
    pub(crate) fn attach_contract_at(
        &mut self,
        slot: usize,
        contract: TimingContract,
    ) -> Result<Option<Box<MonitorSlot>>, FrameworkError> {
        if slot >= self.nodes.len() || slot >= usize::from(u16::MAX) {
            return Err(FrameworkError::Content(format!("bad slot {slot}")));
        }
        let monitor = LatencyMonitor::new(
            contract.deadline().map(RelativeTime::as_nanos),
            contract.max_jitter().map(RelativeTime::as_nanos),
        );
        let prev = self.monitors[slot].replace(Box::new(MonitorSlot { contract, monitor }));
        self.activation_plans[slot].monitor_ix = slot as u16;
        Ok(prev)
    }

    /// Detaches `slot`'s timing contract, restoring the pay-nothing
    /// sentinel in its activation plan. Returns the detached state (with
    /// its full histogram) so a journal can restore it byte-identically.
    pub(crate) fn detach_contract_at(&mut self, slot: usize) -> Option<Box<MonitorSlot>> {
        let prev = self.monitors[slot].take();
        if prev.is_some() {
            self.activation_plans[slot].monitor_ix = u16::MAX;
        }
        prev
    }

    /// Puts back contract state captured by
    /// [`attach_contract_at`](Self::attach_contract_at) /
    /// [`detach_contract_at`](Self::detach_contract_at) — the rollback
    /// half of journaled contract operations.
    pub(crate) fn restore_contract_at(&mut self, slot: usize, previous: Option<Box<MonitorSlot>>) {
        self.activation_plans[slot].monitor_ix = if previous.is_some() {
            slot as u16
        } else {
            u16::MAX
        };
        self.monitors[slot] = previous;
    }

    /// The timing contract attached to `slot`, if any.
    pub(crate) fn contract_at(&self, slot: usize) -> Option<&TimingContract> {
        self.monitors
            .get(slot)
            .and_then(|m| m.as_deref())
            .map(|m| &m.contract)
    }

    /// A snapshot of `slot`'s latency monitor, if a contract is attached.
    pub(crate) fn latency_snapshot_at(&self, slot: usize) -> Option<LatencySnapshot> {
        self.monitors
            .get(slot)
            .and_then(|m| m.as_deref())
            .map(|m| m.monitor.snapshot())
    }

    /// Deadline misses observed across every monitored component.
    pub fn deadline_misses(&self) -> u64 {
        self.monitors
            .iter()
            .flatten()
            .map(|m| m.monitor.deadline_misses())
            .sum()
    }

    /// Checks every attached contract against its monitor's observations
    /// and folds the verdicts into one report — the runtime counterpart of
    /// design-time validation (violations carry codes SOL-016…SOL-019; a
    /// compliant report means every contract holds).
    pub fn contract_report(&self) -> ValidationReport {
        let mut report = ValidationReport::default();
        for (slot, entry) in self.monitors.iter().enumerate() {
            let Some(m) = entry.as_deref() else { continue };
            let snap = m.monitor.snapshot();
            let obs = ContractObservation {
                component: self.nodes[slot].name.clone(),
                activations: snap.activations,
                deadline_misses: snap.deadline_misses,
                jitter_violations: snap.jitter_violations,
                observed_hz: snap.observed_hz,
                quantiles_ns: m
                    .contract
                    .quantile_bounds()
                    .iter()
                    .map(|&(pct, _)| (pct, m.monitor.quantile_ns(pct)))
                    .collect(),
            };
            report.merge(m.contract.verdict(&obs));
        }
        report
    }

    // -----------------------------------------------------------------
    // Fault containment & supervision
    // -----------------------------------------------------------------

    /// Routes a transaction error through the faulting component's fault
    /// policy: typed [`FrameworkError::Faulted`] errors are attributed by
    /// the component name they carry (no string parsing) and contained,
    /// restarted, or escalated per policy; every other error keeps the
    /// pre-supervision escalate behavior. Cold by construction — the
    /// healthy path never reaches here.
    fn handle_fault(&mut self, e: FrameworkError) -> Result<(), FrameworkError> {
        let FrameworkError::Faulted {
            component, kind, ..
        } = &e
        else {
            return Err(e);
        };
        // A drop fault is pure accounting: the message (or release) was
        // refused and counted; nothing is broken.
        if *kind == FaultKind::Drop {
            self.stats.dropped_messages += 1;
            return Ok(());
        }
        let Some(slot) = self.nodes.iter().position(|n| n.name == *component) else {
            return Err(e);
        };
        self.contain_fault(slot, e)
    }

    /// Applies supervision to a fault attributed to `origin`.
    ///
    /// The escalation walks **up the declared supervision tree**: starting
    /// at the faulting slot, every `Escalate` policy hands the fault to
    /// the slot's declared supervisor until a slot with a containing
    /// policy (`Isolate` / `Restart`) is found — the **handler**. The
    /// handler applies its policy to the **failed subtree**: the subtree
    /// rooted at its child branch the fault escalated through (`scope`),
    /// so the handler itself and its other child branches keep running.
    /// With no tree declared the handler is the origin and the subtree is
    /// just the origin — exactly the flat pre-tree semantics. When every
    /// slot on the path escalates past the root, the fault aborts to the
    /// caller, preserving the original root-escalation semantics.
    fn contain_fault(&mut self, origin: usize, e: FrameworkError) -> Result<(), FrameworkError> {
        let (scope, handler) = {
            let mut scope = origin;
            let mut hops = 0usize;
            loop {
                if self.supervisors[scope].policy != FaultPolicy::Escalate {
                    // The failed slot (or branch root) contains itself.
                    break (scope, scope);
                }
                let Some(up) = self.supervisors[scope].supervisor else {
                    return Err(e); // root escalation: today's abort semantics
                };
                let up = up as usize;
                hops += 1;
                if hops > self.supervisors.len() {
                    // Cycles are refused at declaration; never spin anyway.
                    return Err(e);
                }
                if self.supervisors[up].policy != FaultPolicy::Escalate {
                    // `up` supervises the failed branch rooted at `scope`.
                    break (scope, up);
                }
                scope = up;
            }
        };
        // Quarantine the failed subtree: the origin records the fault
        // itself; every other member is taken down *with* it (counted
        // drops at their gates), un-poisoned — their state is intact, the
        // handler merely recovers them as one unit.
        self.quarantine_slot(origin, &e);
        self.stats.faults_contained += 1;
        let subtree = self.subtree_slots(scope);
        if handler != origin {
            let handler_name = self.nodes[handler].name.clone();
            let origin_name = self.nodes[origin].name.clone();
            for &s in &subtree {
                if s != origin && !self.supervisors[s].quarantined {
                    self.quarantine_flags(
                        s,
                        false,
                        format!(
                            "subtree quarantined by supervisor '{handler_name}' \
                             containing a fault in '{origin_name}'"
                        ),
                    );
                }
            }
            self.supervisors[handler].escalation_path =
                Some(self.supervision_path_string(origin, handler));
        }
        match self.supervisors[handler].policy {
            FaultPolicy::Escalate => unreachable!("walk exits on a containing policy"),
            FaultPolicy::Isolate => Ok(()),
            FaultPolicy::Restart {
                max_restarts,
                window,
                backoff,
            } => {
                // Budget, backoff and the sliding window belong to the
                // *handler* — its policy is what is being applied — while
                // the armed timer is tracked on the subtree root it will
                // restart, so a stop / manual restart / policy rollback of
                // that root disarms it exactly like a flat restart.
                if self.clock.since(self.supervisors[handler].window_start) >= window {
                    let sup = &mut self.supervisors[handler];
                    sup.window_start = self.clock;
                    sup.restarts_in_window = 0;
                    sup.attempt = 0;
                }
                if self.supervisors[handler].restarts_in_window >= max_restarts {
                    self.supervisors[handler].budget_exhausted = true;
                    return Err(e);
                }
                let attempt = self.supervisors[handler].attempt;
                let delay = backoff * (1u64 << attempt.min(MAX_BACKOFF_SHIFT));
                let at = self.clock.saturating_add(delay);
                let priority = self.nodes[handler].priority;
                {
                    let sup = &mut self.supervisors[handler];
                    sup.restarts_in_window += 1;
                    sup.attempt += 1;
                }
                if self.supervisors[scope].restart_timer.is_none() {
                    let handle = self
                        .timers
                        .schedule(at, priority, scope as u32 | RESTART_TAG)?;
                    self.supervisors[scope].restart_timer = Some(handle);
                }
                Ok(())
            }
        }
    }

    /// Quarantines `slot`: the hot-path flags flip, the membrane (SOLEIL)
    /// is quarantined — poisoned for panic faults, whose unwind may have
    /// left half-mutated state — and the cold supervisor record keeps the
    /// fault detail for [`health_report`](Self::health_report).
    fn quarantine_slot(&mut self, slot: usize, fault: &FrameworkError) {
        let poison = matches!(
            fault,
            FrameworkError::Faulted {
                kind: FaultKind::Panic,
                ..
            }
        );
        self.quarantine_flags(slot, poison, fault.to_string());
        self.supervisors[slot].faults += 1;
    }

    /// The flag half of a quarantine, shared by the faulting slot and the
    /// rest of its failed subtree: hot-path plan + node flags flip, the
    /// membrane (SOLEIL) is quarantined — poisoned when `poison` — and the
    /// cold supervisor record keeps the detail. Fault *counting* is the
    /// caller's business: subtree members taken down alongside a faulting
    /// sibling did not themselves fault.
    fn quarantine_flags(&mut self, slot: usize, poison: bool, detail: String) {
        self.activation_plans[slot].quarantined = true;
        self.nodes[slot].quarantined = true;
        if let Some(m) = self.membranes.get_mut(slot).and_then(|m| m.as_mut()) {
            m.quarantine(poison);
        }
        let sup = &mut self.supervisors[slot];
        sup.quarantined = true;
        sup.poisoned = poison;
        sup.fault_detail = Some(detail);
    }

    /// The slots of the subtree rooted at `root` in the declared
    /// supervision tree: `root` plus every slot whose supervisor chain
    /// reaches it. Cold path (fault handling / subtree restart) — the
    /// healthy steady state never walks the tree.
    fn subtree_slots(&self, root: usize) -> Vec<usize> {
        let mut out = vec![root];
        for s in 0..self.supervisors.len() {
            if s == root {
                continue;
            }
            let mut cur = self.supervisors[s].supervisor;
            let mut hops = 0usize;
            while let Some(up) = cur {
                if up as usize == root {
                    out.push(s);
                    break;
                }
                hops += 1;
                if hops > self.supervisors.len() {
                    break;
                }
                cur = self.supervisors[up as usize].supervisor;
            }
        }
        out
    }

    /// Renders the escalation path `origin -> … -> handler` through the
    /// declared supervisor edges (the SOL-023 verdict subject).
    fn supervision_path_string(&self, origin: usize, handler: usize) -> String {
        let mut path = self.nodes[origin].name.clone();
        let mut cur = origin;
        let mut hops = 0usize;
        while cur != handler && hops <= self.supervisors.len() {
            let Some(up) = self.supervisors[cur].supervisor else {
                break;
            };
            cur = up as usize;
            hops += 1;
            path.push_str(" -> ");
            path.push_str(&self.nodes[cur].name);
        }
        path
    }

    /// Restarts a quarantined `slot` with a **fresh content instance** from
    /// the factory captured at build: flags clear, the membrane's poison
    /// and transient interceptor state reset, `on_start` runs. Idempotent —
    /// a restart timer firing after a manual restart is a no-op.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] for a bad slot.
    pub(crate) fn restart_slot(&mut self, slot: usize) -> Result<(), FrameworkError> {
        if slot >= self.nodes.len() {
            return Err(FrameworkError::Content(format!("bad slot {slot}")));
        }
        if !self.supervisors[slot].quarantined {
            return Ok(());
        }
        // Warm-state handoff, capture half: a checkpoint-enabled slot
        // checkpoints the *outgoing* instance at the activation boundary —
        // unless the membrane is poisoned (a panic may have left
        // half-mutated state), in which case the last healthy cadence
        // image is the only trustworthy source.
        let poisoned = self.supervisors[slot].poisoned;
        if self.activation_plans[slot].checkpoint_ix != u16::MAX && !poisoned {
            if let (Some(cp), Some(c)) = (
                self.checkpoints[slot].as_deref_mut(),
                self.nodes[slot].content.as_deref(),
            ) {
                // The boundary capture of a *healthy* fault is by
                // definition the freshest healthy state: it becomes the
                // new healthy image (swap, so overflow cannot clobber it).
                cp.boundary.clear();
                let ok = c.checkpoint(&mut cp.boundary);
                cp.overflowed |= cp.boundary.overflowed();
                if ok && !cp.boundary.overflowed() {
                    std::mem::swap(&mut cp.image, &mut cp.boundary);
                    cp.valid = true;
                    cp.captures += 1;
                }
            }
        }
        // Fresh instance, same class: the original deploy-time state
        // charge stands (same content class, same `state_bytes`), so no
        // re-charge against the area budget.
        let node = &mut self.nodes[slot];
        node.content = Some((self.factories[slot])());
        node.busy = false;
        node.quarantined = false;
        node.started = true;
        self.activation_plans[slot].quarantined = false;
        if let Some(m) = self.membranes.get_mut(slot).and_then(|m| m.as_mut()) {
            m.restart();
        }
        if let Some(c) = self.nodes[slot].content.as_mut() {
            c.on_start();
        }
        // Warm-state handoff, restore half: the fresh instance starts,
        // then the last healthy image is installed (just captured at the
        // boundary for healthy faults; the last cadence capture when the
        // membrane was poisoned).
        if self.activation_plans[slot].checkpoint_ix != u16::MAX {
            let System {
                nodes, checkpoints, ..
            } = self;
            if let (Some(cp), Some(c)) = (
                checkpoints[slot].as_deref_mut(),
                nodes[slot].content.as_deref_mut(),
            ) {
                if cp.valid {
                    c.restore(&cp.image);
                    cp.restores += 1;
                }
                cp.since_capture = 0;
            }
        }
        let sup = &mut self.supervisors[slot];
        sup.quarantined = false;
        sup.poisoned = false;
        sup.fault_detail = None;
        sup.restarts += 1;
        // A manual restart landing before the backoff expires supersedes
        // the armed timer; the restart path is idempotent, but the stale
        // fire would double-count `timer_fires` and could revive a slot
        // re-quarantined in between.
        self.cancel_restart_timer(slot);
        Ok(())
    }

    /// Restarts the quarantined members of the subtree rooted at `root` as
    /// **one unit** — the supervised-restart timer's fire path. Healthy
    /// members (restarted manually in the meantime) are skipped; the
    /// degenerate flat case (no tree) restarts exactly the one slot.
    ///
    /// # Errors
    ///
    /// The first failing member restart aborts the sweep.
    pub(crate) fn restart_subtree(&mut self, root: usize) -> Result<(), FrameworkError> {
        if root >= self.nodes.len() {
            return Err(FrameworkError::Content(format!("bad slot {root}")));
        }
        for slot in self.subtree_slots(root) {
            if self.supervisors[slot].quarantined {
                self.restart_slot(slot)?;
            }
        }
        Ok(())
    }

    /// Declares `slot`'s fault policy, returning the previous one (the
    /// reconfiguration journal's undo token). Allowed in **every** mode —
    /// supervision is engine-level observability-and-recovery machinery
    /// like timing contracts, not structural reconfiguration, so even
    /// ULTRA-MERGE systems can be supervised.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] for a bad slot.
    pub(crate) fn set_fault_policy_at(
        &mut self,
        slot: usize,
        policy: FaultPolicy,
    ) -> Result<FaultPolicy, FrameworkError> {
        if slot >= self.nodes.len() {
            return Err(FrameworkError::Content(format!("bad slot {slot}")));
        }
        let prev = self.supervisors[slot].policy;
        if prev != policy {
            // The old policy's pending restart must not fire under the new
            // one: rollback restores policies through this same path, so a
            // rolled-back `Restart` policy disarms its timer automatically.
            self.cancel_restart_timer(slot);
        }
        self.supervisors[slot].policy = policy;
        Ok(prev)
    }

    /// Declares (or clears, with `None`) `slot`'s supervisor in the
    /// supervision tree, returning the previous edge. Validity and cycle
    /// checks run eagerly: the supervisor must be a real slot, must not be
    /// the component itself, and walking up from the proposed supervisor
    /// must not reach the component — a cycle would turn escalation into
    /// a spin. Allowed in every mode (engine-level supervision, like fault
    /// policies).
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] for bad slots, self-supervision, or a
    /// supervisor edge that would close a cycle.
    pub(crate) fn set_supervisor_at(
        &mut self,
        slot: usize,
        supervisor: Option<usize>,
    ) -> Result<Option<usize>, FrameworkError> {
        if slot >= self.nodes.len() {
            return Err(FrameworkError::Content(format!("bad slot {slot}")));
        }
        if let Some(sup) = supervisor {
            if sup >= self.nodes.len() {
                return Err(FrameworkError::Content(format!(
                    "bad supervisor slot {sup}"
                )));
            }
            if sup == slot {
                return Err(FrameworkError::Content(format!(
                    "component '{}' cannot supervise itself",
                    self.nodes[slot].name
                )));
            }
            // Walk up from the proposed supervisor: reaching `slot` means
            // the new edge would close a cycle.
            let mut cur = Some(sup as u32);
            let mut hops = 0usize;
            while let Some(up) = cur {
                if up as usize == slot {
                    return Err(FrameworkError::Content(format!(
                        "supervision cycle: '{}' is (transitively) supervised by '{}'",
                        self.nodes[sup].name, self.nodes[slot].name
                    )));
                }
                hops += 1;
                if hops > self.supervisors.len() {
                    break;
                }
                cur = self.supervisors[up as usize].supervisor;
            }
        }
        let prev = self.supervisors[slot].supervisor.map(|s| s as usize);
        self.supervisors[slot].supervisor = supervisor.map(|s| s as u32);
        Ok(prev)
    }

    /// `slot`'s declared supervisor, if any.
    pub(crate) fn supervisor_of_at(&self, slot: usize) -> Option<usize> {
        self.supervisors
            .get(slot)
            .and_then(|s| s.supervisor)
            .map(|s| s as usize)
    }

    /// Commit-time re-validation of the whole supervision tree: every edge
    /// names a real slot and no cycle exists. Eager checks in
    /// [`set_supervisor_at`](Self::set_supervisor_at) make this
    /// unreachable in practice; transactional commits re-assert it anyway,
    /// like the RTSJ rules.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] naming the first broken edge.
    pub(crate) fn check_supervision(&self) -> Result<(), FrameworkError> {
        for slot in 0..self.supervisors.len() {
            let mut cur = self.supervisors[slot].supervisor;
            let mut hops = 0usize;
            while let Some(up) = cur {
                let up = up as usize;
                if up >= self.supervisors.len() {
                    return Err(FrameworkError::Content(format!(
                        "supervision edge of '{}' names bad slot {up}",
                        self.nodes[slot].name
                    )));
                }
                if up == slot {
                    return Err(FrameworkError::Content(format!(
                        "supervision cycle through '{}'",
                        self.nodes[slot].name
                    )));
                }
                hops += 1;
                if hops > self.supervisors.len() {
                    return Err(FrameworkError::Content(format!(
                        "supervision cycle reachable from '{}'",
                        self.nodes[slot].name
                    )));
                }
                cur = self.supervisors[up].supervisor;
            }
        }
        Ok(())
    }

    /// The rendered escalation path of the last fault `slot` contained as
    /// a supervisor (`None` until an escalation walked through it).
    pub(crate) fn escalation_path_at(&self, slot: usize) -> Option<String> {
        self.supervisors
            .get(slot)
            .and_then(|s| s.escalation_path.clone())
    }

    /// Enables the warm-state **Checkpoint capability** for `slot`: probes
    /// the live content instance (it must implement
    /// [`Content::checkpoint`]), preallocates the two state images at the
    /// instance's `state_bytes` bound, and compiles the checkpoint index
    /// into the slot's activation plan. The initial probe doubles as the
    /// first healthy capture. Captures then run every `cadence` successful
    /// activations and at supervised-restart boundaries, never allocating.
    ///
    /// Returns the bytes to charge against the component's allocation
    /// area (both images) — callers make that charge, deferred or
    /// immediate, through the usual monotonic accounting.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] for a bad slot, a zero cadence, or
    /// content that does not implement the capability.
    pub(crate) fn enable_checkpoint_at(
        &mut self,
        slot: usize,
        cadence: u32,
    ) -> Result<usize, FrameworkError> {
        if slot >= self.nodes.len() || slot >= usize::from(u16::MAX) {
            return Err(FrameworkError::Content(format!("bad slot {slot}")));
        }
        if cadence == 0 {
            return Err(FrameworkError::Content(
                "checkpoint cadence must be at least 1 activation".into(),
            ));
        }
        let Some(content) = self.nodes[slot].content.as_deref() else {
            return Err(FrameworkError::Content(format!(
                "component '{}' has no content instance",
                self.nodes[slot].name
            )));
        };
        let limit = content.state_bytes().max(1);
        let mut image = StateImage::with_limit(limit);
        if !content.checkpoint(&mut image) {
            return Err(FrameworkError::Content(format!(
                "content of '{}' does not implement the Checkpoint capability \
                 (Content::checkpoint returned false)",
                self.nodes[slot].name
            )));
        }
        let valid = !image.overflowed();
        let boundary = StateImage::with_limit(limit);
        self.checkpoints[slot] = Some(Box::new(CheckpointSlot {
            overflowed: image.overflowed(),
            image,
            boundary,
            cadence,
            since_capture: 0,
            valid,
            captures: u64::from(valid),
            restores: 0,
        }));
        self.activation_plans[slot].checkpoint_ix = slot as u16;
        Ok(2 * limit)
    }

    /// True when the Checkpoint capability is enabled for `slot`.
    pub(crate) fn checkpoint_enabled_at(&self, slot: usize) -> bool {
        self.checkpoints.get(slot).is_some_and(|c| c.is_some())
    }

    /// `(captures, restores)` of `slot`'s checkpoint storage, if enabled.
    pub(crate) fn checkpoint_counts_at(&self, slot: usize) -> Option<(u64, u64)> {
        self.checkpoints
            .get(slot)
            .and_then(|c| c.as_deref())
            .map(|c| (c.captures, c.restores))
    }

    /// Tears the Checkpoint capability back out of `slot` — the error path
    /// of an enable whose substrate charge was refused. The activation
    /// plan's checkpoint index reverts to the disabled sentinel, so the
    /// healthy path pays its single compare again.
    pub(crate) fn disable_checkpoint_at(&mut self, slot: usize) {
        if slot < self.checkpoints.len() {
            self.checkpoints[slot] = None;
            self.activation_plans[slot].checkpoint_ix = u16::MAX;
        }
    }

    /// The runtime-area index a slot's allocation region currently lives
    /// in (checkpoint images are charged against it).
    pub(crate) fn area_ix_at(&self, slot: usize) -> usize {
        self.nodes[slot].area_ix
    }

    /// The cadence gate behind `ActivationPlan::checkpoint_ix`: counts one
    /// successful activation and, every `cadence` of them, captures the
    /// live state into the preallocated healthy image. Off-cadence
    /// activations cost one increment and one compare; on-cadence captures
    /// reuse the image storage — no allocation either way.
    fn cadence_checkpoint(&mut self, slot: usize) {
        let Some(cp) = self.checkpoints[slot].as_deref_mut() else {
            return;
        };
        cp.since_capture += 1;
        if cp.since_capture < cp.cadence {
            return;
        }
        cp.since_capture = 0;
        if let Some(c) = self.nodes[slot].content.as_deref() {
            // Capture into the scratch image and swap on success, so an
            // overflowing capture never clobbers the last healthy image.
            cp.boundary.clear();
            let ok = c.checkpoint(&mut cp.boundary);
            cp.overflowed |= cp.boundary.overflowed();
            if ok && !cp.boundary.overflowed() {
                std::mem::swap(&mut cp.image, &mut cp.boundary);
                cp.valid = true;
                cp.captures += 1;
            }
        }
    }

    /// The fault policy declared for `slot`.
    pub(crate) fn fault_policy_at(&self, slot: usize) -> FaultPolicy {
        self.supervisors
            .get(slot)
            .map(|s| s.policy)
            .unwrap_or_default()
    }

    /// True while `slot` is quarantined by its fault policy.
    pub(crate) fn quarantined_at(&self, slot: usize) -> bool {
        self.supervisors.get(slot).is_some_and(|s| s.quarantined)
    }

    /// Installs an engine-level deterministic fault injector at `slot`'s
    /// activation boundary (any mode — it fires before mode-specific
    /// dispatch), returning the previous injector. An idle injector
    /// (`rate == 0`) costs the boundary one integer compare and one
    /// pointer swap, nothing more — it can stay compiled into a
    /// production deployment.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] for a bad slot.
    pub(crate) fn install_fault_injector_at(
        &mut self,
        slot: usize,
        injector: FaultInjector,
    ) -> Result<Option<Box<FaultInjector>>, FrameworkError> {
        if slot >= self.nodes.len() || slot >= usize::from(u16::MAX) {
            return Err(FrameworkError::Content(format!("bad slot {slot}")));
        }
        let prev = self.injectors[slot].replace(Box::new(injector));
        self.activation_plans[slot].fault_ix = slot as u16;
        Ok(prev)
    }

    /// Removes `slot`'s engine-level fault injector, restoring the
    /// pay-nothing sentinel.
    pub(crate) fn remove_fault_injector_at(&mut self, slot: usize) -> Option<Box<FaultInjector>> {
        let prev = self.injectors.get_mut(slot).and_then(|i| i.take());
        if prev.is_some() {
            self.activation_plans[slot].fault_ix = u16::MAX;
        }
        prev
    }

    /// `(activations, injected)` counters of `slot`'s engine-level
    /// injector, if one is installed.
    pub(crate) fn injector_counts_at(&self, slot: usize) -> Option<(u64, u64)> {
        self.injectors
            .get(slot)
            .and_then(|i| i.as_deref())
            .map(|fi| (fi.activations(), fi.injected()))
    }

    /// Supervision counters of `slot`:
    /// `(faults contained, restarts, suppressed releases)`.
    pub(crate) fn supervision_counts_at(&self, slot: usize) -> (u64, u64, u64) {
        self.supervisors
            .get(slot)
            .map(|s| (s.faults, s.restarts, s.suppressed_releases))
            .unwrap_or_default()
    }

    /// The full runtime health report: every contract verdict
    /// ([`contract_report`](Self::contract_report), codes SOL-016…019)
    /// plus the supervision findings — SOL-020 for each quarantined
    /// component (with the contained fault and suppressed-release count),
    /// SOL-021 for each exhausted restart budget, SOL-022 when messages
    /// were counted-dropped at quarantine gates, SOL-023 naming the
    /// supervision path of each fault that escalated through the declared
    /// tree. A compliant report means every contract holds and no
    /// component is sick (SOL-022/023 are warnings: history, not
    /// sickness).
    pub fn health_report(&self) -> ValidationReport {
        let mut report = self.contract_report();
        for (slot, sup) in self.supervisors.iter().enumerate() {
            if sup.quarantined {
                report.append(Diagnostic {
                    code: "SOL-020",
                    severity: Severity::Error,
                    subject: self.nodes[slot].name.clone(),
                    message: format!(
                        "component quarantined after a contained fault ({}); {} release(s) suppressed",
                        sup.fault_detail.as_deref().unwrap_or("unknown fault"),
                        sup.suppressed_releases
                    ),
                    suggestion: Some(
                        "restart the component (a supervised restart installs a fresh \
                         content instance and clears membrane poison) or fix the fault"
                            .into(),
                    ),
                });
            }
            if let Some(path) = &sup.escalation_path {
                let policy = match sup.policy {
                    FaultPolicy::Escalate => "escalate",
                    FaultPolicy::Isolate => "isolate",
                    FaultPolicy::Restart { .. } => "restart",
                };
                report.append(Diagnostic {
                    code: "SOL-023",
                    severity: Severity::Warning,
                    subject: self.nodes[slot].name.clone(),
                    message: format!(
                        "fault escalated along supervision path {path}; \
                         the failed subtree was handled by this supervisor's {policy} policy"
                    ),
                    suggestion: Some(
                        "escalation through the declared tree is working as configured; \
                         inspect the origin component's fault if escalations recur"
                            .into(),
                    ),
                });
            }
            if sup.budget_exhausted {
                report.append(Diagnostic {
                    code: "SOL-021",
                    severity: Severity::Error,
                    subject: self.nodes[slot].name.clone(),
                    message: format!(
                        "restart budget exhausted after {} fault(s); the last fault escalated",
                        sup.faults
                    ),
                    suggestion: Some(
                        "widen the Restart policy's window/budget or fix the recurring fault"
                            .into(),
                    ),
                });
            }
        }
        if self.stats.quarantine_drops > 0 {
            report.append(Diagnostic {
                code: "SOL-022",
                severity: Severity::Warning,
                subject: self.name.clone(),
                message: format!(
                    "{} message(s) to quarantined components were counted-dropped",
                    self.stats.quarantine_drops
                ),
                suggestion: Some(
                    "the drops are accounted in EngineStats::quarantine_drops; restart the \
                     quarantined consumers to resume delivery"
                        .into(),
                ),
            });
        }
        report
    }

    // -----------------------------------------------------------------
    // Footprint (Fig. 7(c))
    // -----------------------------------------------------------------

    /// Builds the footprint report: per-area substrate consumption, the
    /// framework machinery bytes of the active mode, and the
    /// mode-independent release-engine bytes (timer slots + monitors)
    /// reported in their own bucket so the Fig. 7(c) mode comparison
    /// stays a comparison of *generated* machinery.
    pub fn footprint(&self) -> FootprintReport {
        let framework_bytes = match self.mode {
            Mode::Soleil => {
                let membranes: usize = self
                    .membranes
                    .iter()
                    .flatten()
                    .map(|m| m.footprint_bytes())
                    .sum();
                let interceptors: usize = self
                    .mem_interceptors
                    .iter()
                    .flatten()
                    .map(|i| std::mem::size_of_val(i) + 32)
                    .sum();
                let spec = self
                    .reified_spec
                    .as_ref()
                    .map(|s| s.metadata_bytes())
                    .unwrap_or(0);
                membranes + interceptors + spec + self.dispatch_plan_bytes()
            }
            Mode::MergeAll => {
                self.compiled
                    .iter()
                    .map(|v| {
                        std::mem::size_of::<Vec<CompiledBinding>>()
                            + v.iter()
                                .map(|b| std::mem::size_of::<CompiledBinding>() + b.port.len())
                                .sum::<usize>()
                    })
                    .sum::<usize>()
                    + self.dispatch_plan_bytes()
            }
            Mode::UltraMerge => {
                self.ultra_table
                    .iter()
                    .map(|b| std::mem::size_of::<CompiledBinding>() + b.port.len())
                    .sum::<usize>()
                    + self.ultra_ranges.len() * std::mem::size_of::<(u32, u32)>()
                    + self.dispatch_plan_bytes()
            }
        };
        // Release engine + supervision: preallocated timer slots, attached
        // contract monitors, per-slot supervisor records and any installed
        // fault injectors — identical in every mode, so charged to the
        // dedicated bucket rather than the per-mode framework figure.
        let release_engine_bytes = self.timers.footprint_bytes()
            + self
                .monitors
                .iter()
                .flatten()
                .map(|m| m.monitor.footprint_bytes() + std::mem::size_of::<TimingContract>())
                .sum::<usize>()
            + self.supervisors.len() * std::mem::size_of::<SupervisorSlot>()
            + self
                .injectors
                .iter()
                .flatten()
                .map(|fi| fi.footprint_bytes())
                .sum::<usize>()
            + self
                .checkpoints
                .iter()
                .flatten()
                .map(|c| {
                    std::mem::size_of::<CheckpointSlot>()
                        + c.image.footprint_bytes()
                        + c.boundary.footprint_bytes()
                })
                .sum::<usize>();
        FootprintReport::collect(
            self.mode.to_string(),
            &self.mm,
            self.areas.iter().map(|a| (a.name.clone(), a.id)).collect(),
            framework_bytes,
            release_engine_bytes,
        )
    }

    /// Bytes of the mode-independent dispatch plan: the intern universe,
    /// the per-slot jump tables, the flattened scope-path arena and the
    /// per-slot activation plans (charged to every mode's framework
    /// footprint; SOLEIL's membrane jump tables are counted inside each
    /// membrane instead of in `port_jump`).
    fn dispatch_plan_bytes(&self) -> usize {
        self.port_names
            .iter()
            .map(|n| n.len() + std::mem::size_of::<Box<str>>())
            .sum::<usize>()
            + self
                .port_jump
                .iter()
                .map(|j| std::mem::size_of::<Box<[u32]>>() + std::mem::size_of_val::<[u32]>(j))
                .sum::<usize>()
            + self.enter_arena.len() * std::mem::size_of::<AreaId>()
            + self.activation_plans.len() * std::mem::size_of::<ActivationPlan>()
    }
}

/// Renders a caught panic payload for the typed fault's detail text:
/// `panic!` string payloads pass through, anything else gets a stable
/// placeholder (payload types are open-ended).
fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn port_index<P: Payload>(node: &Node<P>, port: &str) -> Result<u16, FrameworkError> {
    node.server_ports
        .iter()
        .position(|p| p.as_ref() == port)
        .map(|i| i as u16)
        .ok_or_else(|| {
            FrameworkError::Binding(format!(
                "component '{}' has no server port '{port}'",
                node.name
            ))
        })
}

// ---------------------------------------------------------------------------
// Ports façades
// ---------------------------------------------------------------------------

struct SoleilPorts<'a, P: Payload> {
    sys: &'a mut System<P>,
    membrane: &'a mut Membrane,
    ctx: &'a mut MemoryContext,
}

impl<P: Payload> SoleilPorts<'_, P> {
    /// The shared synchronous body behind both resolution paths: routing
    /// scalars in, gate/interceptor choreography around the invoke.
    fn call_sync(
        &mut self,
        target_slot: usize,
        server_port_ix: u16,
        binding_ix: usize,
        msg: &mut P,
    ) -> Result<(), FrameworkError> {
        self.sys.stats.sync_calls += 1;
        // The binding's fused gate, compiled at build/rebind time: when it
        // proves the memory interceptor's pre/post are no-ops, both calls
        // are skipped entirely — only the crossing counter is kept honest.
        let gate = self.sys.mem_gates[binding_ix];
        if gate.skip_choreography {
            if let Some(mi) = self.sys.mem_interceptors[binding_ix].as_mut() {
                mi.record_crossing();
            }
            return if gate.copy {
                let mut copy = msg.clone();
                let r = self
                    .sys
                    .invoke(target_slot, server_port_ix, &mut copy, self.ctx);
                *msg = copy;
                r
            } else {
                self.sys.invoke(target_slot, server_port_ix, msg, self.ctx)
            };
        }
        let mut mi = self.sys.mem_interceptors[binding_ix]
            .take()
            .ok_or_else(|| FrameworkError::Binding("memory interceptor already in use".into()))?;
        if let Err(e) = mi.pre(&mut self.sys.mm, self.ctx) {
            self.sys.mem_interceptors[binding_ix] = Some(mi);
            return Err(e);
        }
        let result = if mi.needs_copy() {
            let mut copy = msg.clone();
            let r = self
                .sys
                .invoke(target_slot, server_port_ix, &mut copy, self.ctx);
            *msg = copy;
            r
        } else {
            self.sys.invoke(target_slot, server_port_ix, msg, self.ctx)
        };
        let post = mi.post(&mut self.sys.mm, self.ctx);
        self.sys.mem_interceptors[binding_ix] = Some(mi);
        result.and(post)
    }

    /// The shared asynchronous body: same-engine exchange buffer or
    /// cross-domain ring, decided at deploy time.
    fn send_buffered(
        &mut self,
        buffer_ix: usize,
        cross: bool,
        msg: P,
    ) -> Result<(), FrameworkError> {
        if cross {
            return self.sys.enqueue_cross(buffer_ix, msg);
        }
        self.sys.enqueue(buffer_ix, msg, self.ctx)
    }
}

impl<P: Payload> Ports<P> for SoleilPorts<'_, P> {
    fn call(&mut self, client_port: &str, msg: &mut P) -> Result<(), FrameworkError> {
        // Copy only the scalar routing fields out of the binding target:
        // cloning the whole target would allocate (its server-port name is
        // a `String`) on every synchronous call.
        self.sys
            .string_compares
            .set(self.sys.string_compares.get() + 1);
        let t = self.membrane.binding.resolve(client_port)?;
        let (target_slot, server_port_ix, is_async, binding_ix) =
            (t.target_slot, t.server_port_ix, t.is_async, t.binding_ix);
        if is_async {
            return Err(FrameworkError::Binding(format!(
                "port '{client_port}' is asynchronous; use send()"
            )));
        }
        self.call_sync(target_slot, server_port_ix, binding_ix, msg)
    }

    fn send(&mut self, client_port: &str, msg: P) -> Result<(), FrameworkError> {
        self.sys
            .string_compares
            .set(self.sys.string_compares.get() + 1);
        let t = self.membrane.binding.resolve(client_port)?;
        let (buffer_ix, cross) = (t.buffer_index, t.cross);
        let buffer_ix = buffer_ix.ok_or_else(|| {
            FrameworkError::Binding(format!("port '{client_port}' is synchronous; use call()"))
        })?;
        self.send_buffered(buffer_ix, cross, msg)
    }

    fn intern(&self, client_port: &str) -> Option<PortId> {
        self.sys.intern_port(client_port)
    }

    fn intern_generation(&self) -> u32 {
        self.sys.dispatch_generation
    }

    fn call_interned(&mut self, id: PortId, msg: &mut P) -> Result<(), FrameworkError> {
        // Jump-table resolve through the membrane's compiled table: one
        // index, no string compare — the name only resurfaces on the cold
        // error paths below.
        let Some(t) = self.membrane.binding.resolve_id(id) else {
            return Err(FrameworkError::Binding(format!(
                "client port '{}' is unbound",
                self.sys.port_name(id)
            )));
        };
        let (target_slot, server_port_ix, is_async, binding_ix) =
            (t.target_slot, t.server_port_ix, t.is_async, t.binding_ix);
        if is_async {
            return Err(FrameworkError::Binding(format!(
                "port '{}' is asynchronous; use send()",
                self.sys.port_name(id)
            )));
        }
        self.call_sync(target_slot, server_port_ix, binding_ix, msg)
    }

    fn send_interned(&mut self, id: PortId, msg: P) -> Result<(), FrameworkError> {
        let Some(t) = self.membrane.binding.resolve_id(id) else {
            return Err(FrameworkError::Binding(format!(
                "client port '{}' is unbound",
                self.sys.port_name(id)
            )));
        };
        let (buffer_ix, cross) = (t.buffer_index, t.cross);
        let Some(buffer_ix) = buffer_ix else {
            return Err(FrameworkError::Binding(format!(
                "port '{}' is synchronous; use call()",
                self.sys.port_name(id)
            )));
        };
        self.send_buffered(buffer_ix, cross, msg)
    }
}

struct CompiledPorts<'a, P: Payload> {
    sys: &'a mut System<P>,
    slot: usize,
    ctx: &'a mut MemoryContext,
    /// MERGE-ALL counts stats; ULTRA-MERGE skips them.
    checked: bool,
}

impl<P: Payload> Ports<P> for CompiledPorts<'_, P> {
    fn call(&mut self, client_port: &str, msg: &mut P) -> Result<(), FrameworkError> {
        let resolved = self.sys.lookup_compiled(self.slot, client_port)?;
        if resolved.is_async {
            return Err(FrameworkError::Binding(format!(
                "port '{client_port}' is asynchronous; use send()"
            )));
        }
        if self.checked {
            self.sys.stats.sync_calls += 1;
        }
        self.sys.cross_scope_call(resolved, msg, self.ctx)
    }

    fn send(&mut self, client_port: &str, msg: P) -> Result<(), FrameworkError> {
        let resolved = self.sys.lookup_compiled(self.slot, client_port)?;
        if !resolved.is_async {
            return Err(FrameworkError::Binding(format!(
                "port '{client_port}' is synchronous; use call()"
            )));
        }
        if resolved.is_cross {
            return self.sys.enqueue_cross(resolved.buffer_ix, msg);
        }
        self.sys.enqueue(resolved.buffer_ix, msg, self.ctx)
    }

    fn intern(&self, client_port: &str) -> Option<PortId> {
        self.sys.intern_port(client_port)
    }

    fn intern_generation(&self) -> u32 {
        self.sys.dispatch_generation
    }

    fn call_interned(&mut self, id: PortId, msg: &mut P) -> Result<(), FrameworkError> {
        // The hot path of the compiled plan: two array indexes yield a
        // `Copy` dispatch header — no string scan, no Arc, no clone.
        let Some(resolved) = self.sys.lookup_interned(self.slot, id) else {
            return Err(self.sys.unbound_interned(self.slot, id));
        };
        if resolved.is_async {
            return Err(FrameworkError::Binding(format!(
                "port '{}' is asynchronous; use send()",
                self.sys.port_name(id)
            )));
        }
        if self.checked {
            self.sys.stats.sync_calls += 1;
        }
        self.sys.cross_scope_call(resolved, msg, self.ctx)
    }

    fn send_interned(&mut self, id: PortId, msg: P) -> Result<(), FrameworkError> {
        let Some(resolved) = self.sys.lookup_interned(self.slot, id) else {
            return Err(self.sys.unbound_interned(self.slot, id));
        };
        if !resolved.is_async {
            return Err(FrameworkError::Binding(format!(
                "port '{}' is synchronous; use call()",
                self.sys.port_name(id)
            )));
        }
        if resolved.is_cross {
            return self.sys.enqueue_cross(resolved.buffer_ix, msg);
        }
        self.sys.enqueue(resolved.buffer_ix, msg, self.ctx)
    }
}

#[cfg(test)]
// The engine unit tests exercise the slot-based internals directly; the
// typed `Deployment` surface is covered by `deploy.rs` consumers and the
// integration suite.
mod tests {
    use super::*;
    use crate::spec::{AreaSpec, BindingSpec, ComponentSpec, DomainSpec};
    use rtsj::time::RelativeTime;
    use soleil_membrane::content::{InternedPort, InvokeResult};

    /// A pipeline payload: counts the stations it passed through.
    #[derive(Debug, Clone, Default, PartialEq)]
    struct Token {
        hops: Vec<String>,
        value: i64,
    }

    #[derive(Debug, Default)]
    struct Producer;
    impl Content<Token> for Producer {
        fn on_invoke(
            &mut self,
            port: &str,
            msg: &mut Token,
            out: &mut dyn Ports<Token>,
        ) -> InvokeResult {
            assert_eq!(port, RELEASE_PORT);
            msg.hops.push("producer".into());
            msg.value = 10;
            out.send("out", msg.clone())
        }
    }

    #[derive(Debug, Default)]
    struct Middle;
    impl Content<Token> for Middle {
        fn on_invoke(
            &mut self,
            _port: &str,
            msg: &mut Token,
            out: &mut dyn Ports<Token>,
        ) -> InvokeResult {
            msg.hops.push("middle".into());
            msg.value *= 2;
            out.call("svc", msg)?;
            out.send("log", msg.clone())
        }
    }

    #[derive(Debug, Default)]
    struct Service {
        calls: u64,
    }
    impl Content<Token> for Service {
        fn on_invoke(
            &mut self,
            _port: &str,
            msg: &mut Token,
            _out: &mut dyn Ports<Token>,
        ) -> InvokeResult {
            self.calls += 1;
            msg.hops.push("service".into());
            msg.value += 1;
            Ok(())
        }
    }

    #[derive(Debug, Default)]
    struct Sink {
        received: Vec<i64>,
    }
    impl Content<Token> for Sink {
        fn on_invoke(
            &mut self,
            _port: &str,
            msg: &mut Token,
            _out: &mut dyn Ports<Token>,
        ) -> InvokeResult {
            msg.hops.push("sink".into());
            self.received.push(msg.value);
            Ok(())
        }
    }

    fn registry() -> ContentRegistry<Token> {
        let mut r = ContentRegistry::new();
        r.register("Producer", || Box::new(Producer));
        r.register("Middle", || Box::new(Middle));
        r.register("Service", || Box::new(Service::default()));
        r.register("Sink", || Box::new(Sink::default()));
        r
    }

    /// The motivation-example shape: periodic NHRT producer → async →
    /// sporadic NHRT middle → sync into a scoped service → async → regular
    /// heap sink.
    fn pipeline_spec() -> SystemSpec {
        SystemSpec {
            name: "pipeline".into(),
            areas: vec![
                AreaSpec {
                    name: "Imm1".into(),
                    kind: MemoryKind::Immortal,
                    size: Some(256 * 1024),
                    parent: None,
                },
                AreaSpec {
                    name: "S1".into(),
                    kind: MemoryKind::Scoped,
                    size: Some(28 * 1024),
                    parent: None,
                },
                AreaSpec {
                    name: "H1".into(),
                    kind: MemoryKind::Heap,
                    size: None,
                    parent: None,
                },
            ],
            domains: vec![
                DomainSpec {
                    name: "NHRT1".into(),
                    kind: ThreadKind::NoHeapRealtime,
                    priority: 30,
                },
                DomainSpec {
                    name: "NHRT2".into(),
                    kind: ThreadKind::NoHeapRealtime,
                    priority: 25,
                },
                DomainSpec {
                    name: "reg1".into(),
                    kind: ThreadKind::Regular,
                    priority: 5,
                },
            ],
            components: vec![
                ComponentSpec {
                    name: "producer".into(),
                    content_class: "Producer".into(),
                    activation: Activation::Periodic {
                        period: RelativeTime::from_millis(10),
                    },
                    domain: Some(0),
                    area: 0,
                    server_ports: vec![],
                    ceiling: None,
                },
                ComponentSpec {
                    name: "middle".into(),
                    content_class: "Middle".into(),
                    activation: Activation::Sporadic,
                    domain: Some(1),
                    area: 0,
                    server_ports: vec!["in".into()],
                    ceiling: None,
                },
                ComponentSpec {
                    name: "service".into(),
                    content_class: "Service".into(),
                    activation: Activation::Passive,
                    domain: None,
                    area: 1,
                    server_ports: vec!["svc".into()],
                    ceiling: None,
                },
                ComponentSpec {
                    name: "sink".into(),
                    content_class: "Sink".into(),
                    activation: Activation::Sporadic,
                    domain: Some(2),
                    area: 2,
                    server_ports: vec!["log".into()],
                    ceiling: None,
                },
            ],
            bindings: vec![
                BindingSpec {
                    client: 0,
                    client_port: "out".into(),
                    server: 1,
                    server_port: "in".into(),
                    protocol: ProtocolSpec::Async {
                        capacity: 10,
                        placement: BufferPlacement::Immortal,
                    },
                    pattern: PatternKind::ImmortalExchange,
                    enter_path: vec![],
                },
                BindingSpec {
                    client: 1,
                    client_port: "svc".into(),
                    server: 2,
                    server_port: "svc".into(),
                    protocol: ProtocolSpec::Sync,
                    pattern: PatternKind::EnterInner,
                    enter_path: vec![1],
                },
                BindingSpec {
                    client: 1,
                    client_port: "log".into(),
                    server: 3,
                    server_port: "log".into(),
                    protocol: ProtocolSpec::Async {
                        capacity: 10,
                        placement: BufferPlacement::Immortal,
                    },
                    pattern: PatternKind::ImmortalExchange,
                    enter_path: vec![],
                },
            ],
        }
    }

    fn run_modes(f: impl Fn(Mode, &mut System<Token>)) {
        for mode in [Mode::Soleil, Mode::MergeAll, Mode::UltraMerge] {
            let spec = pipeline_spec();
            let mut sys = System::build(&spec, mode, &registry()).unwrap();
            f(mode, &mut sys);
        }
    }

    /// The parallel runtime moves one engine per thread-domain shard onto
    /// its own OS thread: the whole `System` must be `Send` (no `Rc`, no
    /// thread-bound interior mutability anywhere in the object graph).
    #[test]
    fn system_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<System<Token>>();
    }

    #[test]
    fn transaction_flows_end_to_end_in_all_modes() {
        run_modes(|mode, sys| {
            let head = sys.slot_of("producer").unwrap();
            for _ in 0..5 {
                sys.run_transaction(head).unwrap();
            }
            let st = sys.stats();
            assert_eq!(st.transactions, 5, "{mode}");
            // Each transaction: producer + middle + sink activations.
            assert_eq!(st.activations, 15, "{mode}");
            assert_eq!(st.dropped_messages, 0, "{mode}");
        });
    }

    #[test]
    fn all_modes_produce_identical_functional_results() {
        // The OO oracle: value = (10 * 2) + 1 = 21 per transaction.
        run_modes(|mode, sys| {
            let head = sys.slot_of("producer").unwrap();
            sys.run_transaction(head).unwrap();
            // The scoped service really ran inside S1 and the sink on the heap:
            // check the substrate saw scope traffic.
            let s1 = sys.memory().area_by_name("S1").unwrap();
            let stats = sys.memory().stats(s1).unwrap();
            assert!(
                stats.consumed > 0 || stats.high_watermark > 0 || stats.reclaim_count == 0,
                "scoped area exists ({mode})"
            );
        });
    }

    #[test]
    fn nhrt_production_line_cannot_use_heap_buffer() {
        // Misplace the first buffer on the heap: the NHRT producer must be
        // refused by the substrate at send time.
        let mut spec = pipeline_spec();
        spec.bindings[0].protocol = ProtocolSpec::Async {
            capacity: 10,
            placement: BufferPlacement::Heap,
        };
        let mut sys = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
        let head = sys.slot_of("producer").unwrap();
        let err = sys.run_transaction(head).unwrap_err();
        assert!(
            matches!(
                err,
                FrameworkError::Rtsj(rtsj::RtsjError::MemoryAccess { .. })
            ),
            "got {err}"
        );
    }

    #[test]
    fn buffer_backpressure_drops_when_not_drained() {
        run_modes(|mode, sys| {
            // Inject more than capacity directly at the middle component
            // without draining (simulate a stalled consumer by stopping it).
            if mode == Mode::UltraMerge {
                return; // cannot stop components in static mode
            }
            let middle = sys.slot_of("middle").unwrap();
            sys.stop_at(middle).unwrap();
            let head = sys.slot_of("producer").unwrap();
            // Producer sends to a 10-slot buffer; consumer is stopped so
            // drain fails -> expect lifecycle error surfaced.
            let r = sys.run_transaction(head);
            assert!(r.is_err(), "stopped consumer must surface ({mode})");
        });
    }

    #[test]
    fn lifecycle_stop_start_roundtrip() {
        run_modes(|mode, sys| {
            let middle = sys.slot_of("middle").unwrap();
            if mode == Mode::UltraMerge {
                assert!(matches!(
                    sys.stop_at(middle),
                    Err(FrameworkError::Unsupported(_))
                ));
                return;
            }
            sys.stop_at(middle).unwrap();
            sys.start_at(middle).unwrap();
            let head = sys.slot_of("producer").unwrap();
            sys.run_transaction(head).unwrap();
        });
    }

    /// The tentpole acceptance property: a freshly deployed SOLEIL system
    /// has *every* membrane's interceptor plan fully compiled — no
    /// `Box<dyn Interceptor>` virtual call anywhere on the steady-state
    /// invoke path — with the common shapes fused (active components get
    /// the single-pass gate, passives skip the walk entirely), and every
    /// steady-state binding's memory choreography settled by its compiled
    /// `FastGate`.
    #[test]
    fn soleil_steady_state_plan_is_fully_compiled_and_fused() {
        use soleil_membrane::ChainFusion;
        let spec = pipeline_spec();
        let sys = System::build(&spec, Mode::Soleil, &registry()).unwrap();
        for slot in 0..sys.nodes.len() {
            let m = sys.membranes[slot].as_ref().unwrap();
            assert!(
                m.plan().is_fully_compiled(),
                "'{}': a dyn step survived deployment",
                m.component
            );
            let expected = if matches!(sys.nodes[slot].activation, Activation::Passive) {
                ChainFusion::Empty
            } else {
                ChainFusion::FusedActive
            };
            assert_eq!(m.plan().fusion(), expected, "'{}'", m.component);
            let info = sys.membrane_info_at(slot).unwrap();
            assert!(info.plan_fully_compiled);
            assert_eq!(info.plan_fusion, expected);
        }
        // One gate per binding, agreeing with each binding's plan: the
        // no-choreography patterns skip pre/post, EnterInner keeps them.
        assert_eq!(sys.mem_gates.len(), spec.bindings.len());
        for (gate, mi) in sys.mem_gates.iter().zip(&sys.mem_interceptors) {
            assert_eq!(*gate, mi.as_ref().unwrap().plan().fast_gate());
        }
        assert!(
            sys.mem_gates.iter().any(|g| g.skip_choreography)
                || spec
                    .bindings
                    .iter()
                    .all(|b| b.pattern == PatternKind::EnterInner),
            "the fixture exercises the fused no-op gate"
        );
    }

    /// The fused gate must not change observable semantics: the memory
    /// interceptor's crossing counter still advances when the gate skips
    /// pre/post, and the full path keeps counting as before.
    #[test]
    fn fast_gate_keeps_crossing_counters_honest() {
        let mut spec = pipeline_spec();
        // A same-area service: after rebinding, middle -> service2 is a
        // Direct pattern whose gate skips choreography entirely.
        spec.components.push(ComponentSpec {
            name: "service2".into(),
            content_class: "Service".into(),
            activation: Activation::Passive,
            domain: None,
            area: 0,
            server_ports: vec!["svc".into()],
            ceiling: None,
        });
        let mut sys = System::build(&spec, Mode::Soleil, &registry()).unwrap();
        let head = sys.slot_of("producer").unwrap();
        for _ in 0..2 {
            sys.run_transaction(head).unwrap();
        }
        // EnterInner gate: full pre/post path counted both crossings.
        assert!(!sys.mem_gates[1].skip_choreography);
        assert_eq!(sys.mem_interceptors[1].as_ref().unwrap().crossings(), 2);

        let middle = sys.slot_of("middle").unwrap();
        let service2 = sys.slot_of("service2").unwrap();
        sys.rebind_at(middle, "svc", service2).unwrap();
        assert!(
            sys.mem_gates[1].skip_choreography,
            "rebind recompiled the gate to the fused no-op form"
        );
        for _ in 0..3 {
            sys.run_transaction(head).unwrap();
        }
        // Rebinding installed a fresh interceptor; its counter advanced
        // purely through the fused fast path.
        assert_eq!(
            sys.mem_interceptors[1].as_ref().unwrap().crossings(),
            3,
            "the fused fast path still records crossings"
        );
    }

    #[test]
    fn membrane_introspection_soleil_only() {
        run_modes(|mode, sys| {
            let info = sys.membrane_info("middle");
            match mode {
                Mode::Soleil => {
                    let info = info.unwrap();
                    assert!(info.started);
                    assert!(info
                        .interceptors
                        .contains(&"active-interceptor".to_string()));
                    assert_eq!(info.bound_ports.len(), 2);
                    assert!(sys.reified_spec().is_some());
                }
                _ => {
                    assert!(matches!(info, Err(FrameworkError::Unsupported(_))));
                    assert!(sys.reified_spec().is_none());
                }
            }
        });
    }

    #[test]
    fn footprint_ordering_soleil_heaviest_ultra_lightest() {
        let spec = pipeline_spec();
        let reg = registry();
        let soleil = System::build(&spec, Mode::Soleil, &reg)
            .unwrap()
            .footprint();
        let merged = System::build(&spec, Mode::MergeAll, &reg)
            .unwrap()
            .footprint();
        let ultra = System::build(&spec, Mode::UltraMerge, &reg)
            .unwrap()
            .footprint();
        assert!(
            soleil.framework_bytes > merged.framework_bytes,
            "SOLEIL {} <= MERGE-ALL {}",
            soleil.framework_bytes,
            merged.framework_bytes
        );
        assert!(
            merged.framework_bytes > ultra.framework_bytes,
            "MERGE-ALL {} <= ULTRA {}",
            merged.framework_bytes,
            ultra.framework_bytes
        );
    }

    #[test]
    fn scoped_service_state_survives_transactions() {
        // S1 is wedge-pinned: its consumption persists across transactions
        // instead of being reclaimed after each sync call.
        let spec = pipeline_spec();
        let mut sys = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
        let s1 = sys.memory().area_by_name("S1").unwrap();
        let before = sys.memory().stats(s1).unwrap().consumed;
        assert!(before > 0, "component state charged to its scope");
        let head = sys.slot_of("producer").unwrap();
        sys.run_transaction(head).unwrap();
        sys.run_transaction(head).unwrap();
        assert_eq!(sys.memory().stats(s1).unwrap().consumed, before);
        assert_eq!(sys.memory().stats(s1).unwrap().reclaim_count, 0);
    }

    #[test]
    fn rebind_redirects_sync_calls() {
        for mode in [Mode::Soleil, Mode::MergeAll] {
            let mut spec = pipeline_spec();
            // A second service with the same port name, in immortal memory.
            spec.components.push(ComponentSpec {
                name: "service2".into(),
                content_class: "Service".into(),
                activation: Activation::Passive,
                domain: None,
                area: 0,
                server_ports: vec!["svc".into()],
                ceiling: None,
            });
            let mut sys = System::build(&spec, mode, &registry()).unwrap();
            let middle = sys.slot_of("middle").unwrap();
            let service2 = sys.slot_of("service2").unwrap();
            sys.rebind_at(middle, "svc", service2).unwrap();
            let head = sys.slot_of("producer").unwrap();
            sys.run_transaction(head).unwrap();
            // S1 (old service's scope) should see no new traffic; the
            // transaction still completes.
            assert_eq!(sys.stats().transactions, 1, "{mode}");
        }
    }

    #[test]
    fn ultra_merge_rejects_reconfiguration() {
        let spec = pipeline_spec();
        let mut sys = System::build(&spec, Mode::UltraMerge, &registry()).unwrap();
        let middle = sys.slot_of("middle").unwrap();
        let service = sys.slot_of("service").unwrap();
        assert!(matches!(
            sys.rebind_at(middle, "svc", service),
            Err(FrameworkError::Unsupported(_))
        ));
    }

    #[test]
    fn jitter_monitor_installs_at_runtime_in_soleil_only() {
        let spec = pipeline_spec();
        let mut sys = System::build(&spec, Mode::Soleil, &registry()).unwrap();
        let head = sys.slot_of("producer").unwrap();
        sys.run_transaction(head).unwrap();

        // Install on a live component (membrane-level reconfiguration).
        sys.enable_jitter_monitoring("middle").unwrap();
        assert!(sys
            .membrane_info("middle")
            .unwrap()
            .interceptors
            .contains(&"jitter-monitor".to_string()));
        for _ in 0..5 {
            sys.run_transaction(head).unwrap();
        }
        let gaps = sys.jitter_observations("middle").unwrap();
        assert_eq!(gaps.len(), 4, "5 monitored activations -> 4 gaps");
        assert!(sys.disable_jitter_monitoring("middle").unwrap());
        assert!(!sys.disable_jitter_monitoring("middle").unwrap());

        // Merged modes refuse: membranes are not reified.
        let mut merged = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
        assert!(matches!(
            merged.enable_jitter_monitoring("middle"),
            Err(FrameworkError::Unsupported(_))
        ));
    }

    #[test]
    fn unknown_names_reported() {
        let spec = pipeline_spec();
        let mut sys = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
        assert!(sys.slot_of("ghost").is_err());
        assert!(sys.run_transaction(99).is_err());
        // Running a transaction from a non-periodic component fails, and
        // unknown ports are refused at resolution time.
        let middle = sys.slot_of("middle").unwrap();
        assert!(sys.run_transaction(middle).is_err());
        assert!(sys.port_ix_of(middle, "no-such-port").is_err());
    }

    #[test]
    fn inject_activates_sporadic_directly() {
        let spec = pipeline_spec();
        let mut sys = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
        let token = Token {
            hops: vec![],
            value: 5,
        };
        let middle = sys.slot_of("middle").unwrap();
        let port_ix = sys.port_ix_of(middle, "in").unwrap();
        sys.inject_at(middle, port_ix, token).unwrap();
        let st = sys.stats();
        assert_eq!(st.transactions, 1);
        // middle + sink activations.
        assert_eq!(st.activations, 2);
    }

    #[test]
    fn run_tick_releases_all_periodic_heads_by_priority() {
        let mut spec = pipeline_spec();
        // A second, higher-priority periodic producer feeding the sink.
        spec.domains.push(DomainSpec {
            name: "NHRT0".into(),
            kind: ThreadKind::NoHeapRealtime,
            priority: 40,
        });
        spec.components.push(ComponentSpec {
            name: "producer2".into(),
            content_class: "Producer".into(),
            activation: Activation::Periodic {
                period: RelativeTime::from_millis(5),
            },
            domain: Some(3),
            area: 0,
            server_ports: vec![],
            ceiling: None,
        });
        spec.bindings.push(BindingSpec {
            client: 4,
            client_port: "out".into(),
            server: 3,
            server_port: "log".into(),
            protocol: ProtocolSpec::Async {
                capacity: 10,
                placement: BufferPlacement::Immortal,
            },
            pattern: PatternKind::ImmortalExchange,
            enter_path: vec![],
        });
        let mut sys = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
        let heads = sys.periodic_heads();
        assert_eq!(heads.len(), 2);
        // producer2 (p40) releases before producer (p30).
        assert_eq!(sys.nodes[heads[0]].name, "producer2");
        sys.run_tick().unwrap();
        let st = sys.stats();
        assert_eq!(st.transactions, 2, "one transaction per periodic head");
        // producer2 -> sink (2 activations) + producer pipeline (3).
        assert_eq!(st.activations, 5);
    }

    /// An async consumer living in a *nested* scoped area must execute
    /// inside its scope chain on the drain path — both for correct
    /// allocation placement and because it is the premise of the
    /// build-time `ExecuteInOuter` access proof (regression: `drain` used
    /// to invoke consumers without entering their chain, which tripped the
    /// prechecked substrate entry).
    #[test]
    fn drained_consumer_executes_inside_its_scope_chain() {
        let spec = SystemSpec {
            name: "nested-consumer".into(),
            areas: vec![
                AreaSpec {
                    name: "Imm1".into(),
                    kind: MemoryKind::Immortal,
                    size: Some(256 * 1024),
                    parent: None,
                },
                AreaSpec {
                    name: "S1".into(),
                    kind: MemoryKind::Scoped,
                    size: Some(28 * 1024),
                    parent: None,
                },
                AreaSpec {
                    name: "S2".into(),
                    kind: MemoryKind::Scoped,
                    size: Some(16 * 1024),
                    parent: Some(1),
                },
            ],
            domains: vec![
                DomainSpec {
                    name: "NHRT1".into(),
                    kind: ThreadKind::NoHeapRealtime,
                    priority: 30,
                },
                DomainSpec {
                    name: "RT2".into(),
                    kind: ThreadKind::Realtime,
                    priority: 25,
                },
                DomainSpec {
                    name: "reg1".into(),
                    kind: ThreadKind::Regular,
                    priority: 5,
                },
            ],
            components: vec![
                ComponentSpec {
                    name: "producer".into(),
                    content_class: "Producer".into(),
                    activation: Activation::Periodic {
                        period: RelativeTime::from_millis(10),
                    },
                    domain: Some(0),
                    area: 0,
                    server_ports: vec![],
                    ceiling: None,
                },
                ComponentSpec {
                    name: "middle".into(),
                    content_class: "Middle".into(),
                    activation: Activation::Sporadic,
                    domain: Some(1),
                    area: 2, // nested scope S2: chain is [S1, S2]
                    server_ports: vec!["in".into()],
                    ceiling: None,
                },
                ComponentSpec {
                    name: "service".into(),
                    content_class: "Service".into(),
                    activation: Activation::Passive,
                    domain: None,
                    area: 1, // enclosing scope S1
                    server_ports: vec!["svc".into()],
                    ceiling: None,
                },
                ComponentSpec {
                    name: "sink".into(),
                    content_class: "Sink".into(),
                    activation: Activation::Sporadic,
                    domain: Some(2),
                    area: 0,
                    server_ports: vec!["log".into()],
                    ceiling: None,
                },
            ],
            bindings: vec![
                BindingSpec {
                    client: 0,
                    client_port: "out".into(),
                    server: 1,
                    server_port: "in".into(),
                    protocol: ProtocolSpec::Async {
                        capacity: 10,
                        placement: BufferPlacement::Immortal,
                    },
                    pattern: PatternKind::ImmortalExchange,
                    enter_path: vec![],
                },
                // The drained consumer's sync call switches outward into
                // its enclosing scope: ExecuteInOuter, whose build-time
                // proof requires the chain on the stack.
                BindingSpec {
                    client: 1,
                    client_port: "svc".into(),
                    server: 2,
                    server_port: "svc".into(),
                    protocol: ProtocolSpec::Sync,
                    pattern: PatternKind::ExecuteInOuter,
                    enter_path: vec![],
                },
                BindingSpec {
                    client: 1,
                    client_port: "log".into(),
                    server: 3,
                    server_port: "log".into(),
                    protocol: ProtocolSpec::Async {
                        capacity: 10,
                        placement: BufferPlacement::Immortal,
                    },
                    pattern: PatternKind::ImmortalExchange,
                    enter_path: vec![],
                },
            ],
        };
        for mode in [Mode::Soleil, Mode::MergeAll, Mode::UltraMerge] {
            let mut sys = System::build(&spec, mode, &registry()).unwrap();
            let head = sys.slot_of("producer").unwrap();
            for _ in 0..3 {
                sys.run_transaction(head).unwrap();
            }
            let st = sys.stats();
            assert_eq!(st.transactions, 3, "{mode}");
            // producer + middle + sink activate per transaction; the sync
            // call into the enclosing scope completed every time.
            assert_eq!(st.activations, 9, "{mode}");
            assert_eq!(st.dropped_messages, 0, "{mode}");
        }
    }

    #[test]
    fn shutdown_releases_scoped_state() {
        let spec = pipeline_spec();
        let mut sys = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
        let s1 = sys.memory().area_by_name("S1").unwrap();
        assert!(sys.memory().stats(s1).unwrap().consumed > 0);
        sys.shutdown().unwrap();
        let stats = sys.memory().stats(s1).unwrap();
        assert_eq!(stats.consumed, 0, "pin release reclaims the scope");
        assert_eq!(stats.reclaim_count, 1);
        // Components are stopped.
        let head = sys.slot_of("producer").unwrap();
        assert!(sys.run_transaction(head).is_err());
        // Double shutdown surfaces the substrate error.
        assert!(sys.shutdown().is_ok(), "no pins left; idempotent");
    }

    #[test]
    fn missing_content_class_fails_build() {
        let mut spec = pipeline_spec();
        spec.components[0].content_class = "Ghost".into();
        assert!(matches!(
            System::build(&spec, Mode::MergeAll, &registry()),
            Err(FrameworkError::Content(_))
        ));
    }

    /// The cold error path must survive interning: an unbound port id maps
    /// back to its *name* in the error, and the string-scan fallback keeps
    /// reporting the same text it always did — in both façades.
    #[test]
    fn unbound_port_errors_report_the_name_after_interning() {
        // "out" is in the deployment's intern universe (the producer's
        // port) but is not bound on the middle slot.
        let spec = pipeline_spec();
        let mut sys = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
        let middle = sys.slot_of("middle").unwrap();
        let id = sys.intern_port("out").unwrap();
        let mut ctx = sys.mm.context(ThreadKind::Realtime);
        let mut ports = CompiledPorts {
            sys: &mut sys,
            slot: middle,
            ctx: &mut ctx,
            checked: true,
        };
        let mut tok = Token::default();
        let interned = ports.call_interned(id, &mut tok).unwrap_err();
        assert_eq!(
            interned.to_string(),
            "binding error: client port 'out' of 'middle' is unbound"
        );
        let by_name = ports.call("out", &mut tok).unwrap_err();
        assert_eq!(
            by_name.to_string(),
            "binding error: client port 'out' of 'middle' is unbound"
        );
        assert_eq!(
            ports
                .send_interned(id, Token::default())
                .unwrap_err()
                .to_string(),
            "binding error: client port 'out' of 'middle' is unbound"
        );

        // SOLEIL's reified membrane: same contract through the jump table.
        let spec = pipeline_spec();
        let mut sys = System::build(&spec, Mode::Soleil, &registry()).unwrap();
        let middle = sys.slot_of("middle").unwrap();
        let id = sys.intern_port("out").unwrap();
        let mut membrane = sys.membranes[middle].take().unwrap();
        let mut ctx = sys.mm.context(ThreadKind::Realtime);
        let mut ports = SoleilPorts {
            sys: &mut sys,
            membrane: &mut membrane,
            ctx: &mut ctx,
        };
        let interned = ports.call_interned(id, &mut tok).unwrap_err();
        assert_eq!(
            interned.to_string(),
            "binding error: client port 'out' is unbound"
        );
        let by_name = ports.call("out", &mut tok).unwrap_err();
        assert_eq!(
            by_name.to_string(),
            "binding error: client port 'out' is unbound"
        );
        assert_eq!(
            ports
                .send_interned(id, Token::default())
                .unwrap_err()
                .to_string(),
            "binding error: client port 'out' is unbound"
        );
        sys.membranes[middle] = Some(membrane);
    }

    /// A rebind-and-revert cycle must restore the dispatch plan
    /// byte-identically: the header compares equal and the shared
    /// enter-path arena does not grow (the intern step reuses the
    /// original range instead of appending a duplicate).
    #[test]
    fn rebind_cycle_restores_dispatch_header_byte_identically() {
        let mut spec = pipeline_spec();
        spec.components.push(ComponentSpec {
            name: "service2".into(),
            content_class: "Service".into(),
            activation: Activation::Passive,
            domain: None,
            area: 0,
            server_ports: vec!["svc".into()],
            ceiling: None,
        });
        let mut sys = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
        let middle = sys.slot_of("middle").unwrap();
        let service = sys.slot_of("service").unwrap();
        let service2 = sys.slot_of("service2").unwrap();
        let svc_header = |sys: &System<Token>| {
            sys.compiled[middle]
                .iter()
                .find(|b| b.port.as_ref() == "svc")
                .map(|b| b.header)
                .unwrap()
        };
        let original = svc_header(&sys);
        let arena_len = sys.enter_arena.len();
        let jump = sys.port_jump.clone();

        sys.rebind_at(middle, "svc", service2).unwrap();
        assert_ne!(svc_header(&sys), original, "rebind recompiled the plan");
        sys.rebind_at(middle, "svc", service).unwrap();

        assert_eq!(svc_header(&sys), original, "revert restored the header");
        assert_eq!(
            sys.enter_arena.len(),
            arena_len,
            "enter-path interning deduplicated the restored range"
        );
        assert_eq!(sys.port_jump, jump, "jump table is back to the original");
    }

    /// Interned pipeline stations: the same topology as [`pipeline_spec`]
    /// but every client port dispatches through a memoized [`PortId`].
    #[derive(Debug)]
    struct InternedProducer {
        out: InternedPort,
    }
    impl Default for InternedProducer {
        fn default() -> Self {
            Self {
                out: InternedPort::new("out"),
            }
        }
    }
    impl Content<Token> for InternedProducer {
        fn on_invoke(
            &mut self,
            port: &str,
            msg: &mut Token,
            out: &mut dyn Ports<Token>,
        ) -> InvokeResult {
            assert_eq!(port, RELEASE_PORT);
            msg.hops.push("producer".into());
            msg.value = 10;
            self.out.send(out, msg.clone())
        }
    }

    #[derive(Debug)]
    struct InternedMiddle {
        svc: InternedPort,
        log: InternedPort,
    }
    impl Default for InternedMiddle {
        fn default() -> Self {
            Self {
                svc: InternedPort::new("svc"),
                log: InternedPort::new("log"),
            }
        }
    }
    impl Content<Token> for InternedMiddle {
        fn on_invoke(
            &mut self,
            _port: &str,
            msg: &mut Token,
            out: &mut dyn Ports<Token>,
        ) -> InvokeResult {
            msg.hops.push("middle".into());
            msg.value *= 2;
            self.svc.call(out, msg)?;
            self.log.send(out, msg.clone())
        }
    }

    fn interned_registry() -> ContentRegistry<Token> {
        let mut r = ContentRegistry::new();
        r.register("Producer", || Box::new(InternedProducer::default()));
        r.register("Middle", || Box::new(InternedMiddle::default()));
        r.register("Service", || Box::new(Service::default()));
        r.register("Sink", || Box::new(Sink::default()));
        r
    }

    /// The whole point of the compiled plan: after the first (warm-up)
    /// transaction has memoized the port ids, a steady-state transaction
    /// performs zero string comparisons and zero Arc clones — in every
    /// mode, with identical functional results to the string-path oracle.
    #[test]
    fn interned_steady_state_is_free_of_string_compares_and_arc_clones() {
        for mode in [Mode::Soleil, Mode::MergeAll, Mode::UltraMerge] {
            let spec = pipeline_spec();
            let mut sys = System::build(&spec, mode, &interned_registry()).unwrap();
            let head = sys.slot_of("producer").unwrap();
            // Warm-up: each InternedPort pays its one-time name scan here.
            sys.run_transaction(head).unwrap();
            let (sc, ac) = (sys.string_compares(), sys.arc_clones());
            for _ in 0..4 {
                sys.run_transaction(head).unwrap();
            }
            assert_eq!(
                sys.string_compares() - sc,
                0,
                "steady-state string compares ({mode})"
            );
            assert_eq!(sys.arc_clones() - ac, 0, "steady-state Arc clones ({mode})");
            let st = sys.stats();
            assert_eq!(st.transactions, 5, "{mode}");
            assert_eq!(st.activations, 15, "{mode}");
            assert_eq!(st.dropped_messages, 0, "{mode}");
        }
    }

    // -----------------------------------------------------------------
    // Release engine: timers + runtime contracts
    // -----------------------------------------------------------------

    #[test]
    fn scheduled_releases_fire_during_run_tick_in_every_mode() {
        run_modes(|mode, sys| {
            // The pipeline's fastest period is 10 ms, so each tick advances
            // the virtual clock by 10 ms.
            assert_eq!(sys.tick_quantum(), RelativeTime::from_millis(10), "{mode}");
            let head = sys.slot_of("producer").unwrap();
            sys.schedule_release(head, AbsoluteTime::from_millis(15))
                .unwrap();
            assert_eq!(sys.armed_timers(), 1, "{mode}");

            sys.run_tick().unwrap(); // clock 10 ms: not yet due
            assert_eq!(sys.stats().timer_fires, 0, "{mode}");
            assert_eq!(sys.armed_timers(), 1, "{mode}");

            sys.run_tick().unwrap(); // clock 20 ms: fires before the tick
            assert_eq!(sys.stats().timer_fires, 1, "{mode}");
            assert_eq!(sys.armed_timers(), 0, "{mode}");
            assert_eq!(sys.clock(), AbsoluteTime::from_millis(20), "{mode}");
            // The fire ran as a full extra transaction.
            let per_tick = {
                let spec = pipeline_spec();
                let mut oracle = System::build(&spec, mode, &registry()).unwrap();
                oracle.run_tick().unwrap();
                oracle.stats().transactions
            };
            assert_eq!(sys.stats().transactions, 2 * per_tick + 1, "{mode}");
        });
    }

    #[test]
    fn cancelled_releases_never_fire() {
        run_modes(|mode, sys| {
            let head = sys.slot_of("producer").unwrap();
            let h = sys
                .schedule_release(head, AbsoluteTime::from_millis(5))
                .unwrap();
            assert!(sys.cancel_release(h), "{mode}");
            assert!(!sys.cancel_release(h), "stale handle ({mode})");
            sys.run_tick().unwrap();
            assert_eq!(sys.stats().timer_fires, 0, "{mode}");
        });
    }

    #[test]
    fn schedule_release_refuses_non_periodic_heads() {
        run_modes(|mode, sys| {
            let middle = sys.slot_of("middle").unwrap();
            let err = sys
                .schedule_release(middle, AbsoluteTime::from_millis(1))
                .unwrap_err();
            assert!(matches!(err, FrameworkError::Timer(_)), "{mode}: {err}");
        });
    }

    #[test]
    fn advance_clock_fires_everything_due() {
        let spec = pipeline_spec();
        let mut sys = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
        let head = sys.slot_of("producer").unwrap();
        sys.schedule_release(head, AbsoluteTime::from_micros(100))
            .unwrap();
        sys.schedule_release(head, AbsoluteTime::from_micros(200))
            .unwrap();
        sys.schedule_release(head, AbsoluteTime::from_millis(50))
            .unwrap();
        let fired = sys.advance_clock_to(AbsoluteTime::from_millis(1)).unwrap();
        assert_eq!(fired, 2, "both sub-millisecond releases fired");
        assert_eq!(sys.clock(), AbsoluteTime::from_millis(1));
        assert_eq!(sys.armed_timers(), 1);
        // The clock never moves backwards.
        sys.advance_clock_to(AbsoluteTime::ZERO).unwrap();
        assert_eq!(sys.clock(), AbsoluteTime::from_millis(1));
    }

    #[test]
    fn contracts_observe_and_stay_compliant_in_every_mode() {
        run_modes(|mode, sys| {
            let head = sys.slot_of("producer").unwrap();
            // A generous contract no in-process pipeline can violate.
            let contract = TimingContract::new()
                .with_deadline(RelativeTime::from_millis(500))
                .with_quantile_bound(99, RelativeTime::from_millis(500));
            assert!(sys.attach_contract_at(head, contract).unwrap().is_none());
            for _ in 0..8 {
                sys.run_transaction(head).unwrap();
            }
            let snap = sys.latency_snapshot_at(head).unwrap();
            assert_eq!(snap.activations, 8, "{mode}");
            assert_eq!(snap.deadline_misses, 0, "{mode}");
            assert!(snap.p99_ns >= snap.p50_ns, "{mode}");
            assert_eq!(sys.deadline_misses(), 0, "{mode}");
            let report = sys.contract_report();
            assert!(report.is_compliant(), "{mode}: {report}");
        });
    }

    #[test]
    fn impossible_deadline_is_missed_and_reported() {
        run_modes(|mode, sys| {
            let head = sys.slot_of("producer").unwrap();
            // A zero-nanosecond deadline: every activation misses.
            let contract = TimingContract::new().with_deadline(RelativeTime::from_nanos(0));
            sys.attach_contract_at(head, contract).unwrap();
            for _ in 0..4 {
                sys.run_transaction(head).unwrap();
            }
            assert_eq!(sys.deadline_misses(), 4, "{mode}");
            let report = sys.contract_report();
            assert!(!report.is_compliant(), "{mode}");
            assert_eq!(report.by_code("SOL-016").count(), 1, "{mode}: {report}");
        });
    }

    #[test]
    fn detach_discards_and_reattach_replaces() {
        let spec = pipeline_spec();
        let mut sys = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
        let head = sys.slot_of("producer").unwrap();
        sys.attach_contract_at(
            head,
            TimingContract::new().with_deadline(RelativeTime::from_nanos(0)),
        )
        .unwrap();
        sys.run_transaction(head).unwrap();
        assert_eq!(sys.deadline_misses(), 1);

        let taken = sys.detach_contract_at(head).expect("was attached");
        assert_eq!(taken.monitor.snapshot().deadline_misses, 1);
        assert!(sys.latency_snapshot_at(head).is_none());
        assert_eq!(sys.deadline_misses(), 0, "detached histogram is gone");
        // Unmonitored again: the hot path records nothing.
        sys.run_transaction(head).unwrap();
        assert!(sys.contract_report().is_compliant());

        // Restore puts the exact monitor — history included — back.
        sys.restore_contract_at(head, Some(taken));
        assert_eq!(sys.deadline_misses(), 1);
        assert_eq!(sys.latency_snapshot_at(head).unwrap().activations, 1);
    }

    // -----------------------------------------------------------------
    // Fault containment & supervision
    // -----------------------------------------------------------------

    /// Installs an always-firing error injector on `middle` under the
    /// given policy and returns the built system.
    fn faulty_middle(mode: Mode, policy: FaultPolicy) -> System<Token> {
        let spec = pipeline_spec();
        let mut sys = System::build(&spec, mode, &registry()).unwrap();
        let middle = sys.slot_of("middle").unwrap();
        sys.set_fault_policy_at(middle, policy).unwrap();
        sys.install_fault_injector_at(
            middle,
            FaultInjector::new("middle", 5, 1).with_menu(FaultInjector::MENU_ERROR),
        )
        .unwrap();
        sys
    }

    #[test]
    fn escalate_is_the_default_and_propagates_typed_faults() {
        run_modes(|mode, sys| {
            let middle = sys.slot_of("middle").unwrap();
            assert_eq!(sys.fault_policy_at(middle), FaultPolicy::Escalate, "{mode}");
        });
        for mode in [Mode::Soleil, Mode::MergeAll, Mode::UltraMerge] {
            let mut sys = faulty_middle(mode, FaultPolicy::Escalate);
            let head = sys.slot_of("producer").unwrap();
            let err = sys.run_transaction(head).unwrap_err();
            assert_eq!(
                err.to_string(),
                "component 'middle' faulted (error): injected error (seed 5, activation 1)",
                "{mode}"
            );
            // Escalate never quarantines: the component stays schedulable.
            assert!(
                !sys.quarantined_at(sys.slot_of("middle").unwrap()),
                "{mode}"
            );
        }
    }

    #[test]
    fn isolate_quarantines_and_count_drops_in_every_mode() {
        for mode in [Mode::Soleil, Mode::MergeAll, Mode::UltraMerge] {
            let mut sys = faulty_middle(mode, FaultPolicy::Isolate);
            let head = sys.slot_of("producer").unwrap();
            let middle = sys.slot_of("middle").unwrap();
            // Every transaction keeps succeeding at the system level.
            for _ in 0..6 {
                sys.run_transaction(head).unwrap();
            }
            assert!(sys.quarantined_at(middle), "{mode}");
            let st = sys.stats();
            assert_eq!(st.faults_contained, 1, "{mode}");
            // First message reached the boundary (delivered, then faulted);
            // the other five were counted-dropped against the quarantine.
            assert_eq!(st.quarantine_drops, 5, "{mode}");
            assert_eq!(st.async_messages, 6, "{mode}");
            assert_eq!(st.delivered_messages + st.dropped_messages, 6, "{mode}");
            let (faults, restarts, _) = sys.supervision_counts_at(middle);
            assert_eq!((faults, restarts), (1, 0), "{mode}");

            // SOL-020 names the component; SOL-022 surfaces the drops.
            let report = sys.health_report();
            assert!(
                report.by_code("SOL-020").any(|d| d.subject == "middle"),
                "{mode}: {report}"
            );
            assert!(report.by_code("SOL-022").next().is_some(), "{mode}");

            // Manual restart: fresh instance, quarantine cleared, messages
            // flow again once the injector is disarmed.
            sys.install_fault_injector_at(middle, FaultInjector::new("middle", 5, 0))
                .unwrap();
            sys.restart_slot(middle).unwrap();
            assert!(!sys.quarantined_at(middle), "{mode}");
            sys.run_transaction(head).unwrap();
            assert!(sys.health_report().by_code("SOL-020").next().is_none());
            let (_, restarts, _) = sys.supervision_counts_at(middle);
            assert_eq!(restarts, 1, "{mode}");
        }
    }

    #[test]
    fn injected_fault_schedule_is_deterministic_by_seed() {
        let run = |seed: u64| {
            let spec = pipeline_spec();
            let mut sys = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
            let middle = sys.slot_of("middle").unwrap();
            sys.set_fault_policy_at(middle, FaultPolicy::Isolate)
                .unwrap();
            sys.install_fault_injector_at(
                middle,
                FaultInjector::new("middle", seed, 4).with_menu(FaultInjector::MENU_ERROR),
            )
            .unwrap();
            let head = sys.slot_of("producer").unwrap();
            for _ in 0..20 {
                sys.run_transaction(head).unwrap();
            }
            (sys.stats(), sys.injector_counts_at(middle))
        };
        // Same seed → bit-identical ledger and injector counts; replays
        // are exact, which is what makes fault storms diagnosable.
        assert_eq!(run(42), run(42));
        // The injector really saw activations before the quarantine froze
        // the slot.
        let (_, counts) = run(42);
        let (activations, injected) = counts.unwrap();
        assert!(activations >= 1 && injected >= 1);
    }

    #[test]
    fn panic_is_caught_at_the_activation_boundary_in_every_mode() {
        for mode in [Mode::Soleil, Mode::MergeAll, Mode::UltraMerge] {
            let spec = pipeline_spec();
            let mut sys = System::build(&spec, mode, &registry()).unwrap();
            let middle = sys.slot_of("middle").unwrap();
            sys.install_fault_injector_at(
                middle,
                FaultInjector::new("middle", 9, 1).with_menu(FaultInjector::MENU_PANIC),
            )
            .unwrap();
            let head = sys.slot_of("producer").unwrap();
            // Escalate: the panic arrives as a *typed* error, not an unwind.
            let err = sys.run_transaction(head).unwrap_err();
            let FrameworkError::Faulted {
                component, kind, ..
            } = &err
            else {
                panic!("{mode}: expected Faulted, got {err}");
            };
            assert_eq!(component, "middle", "{mode}");
            assert_eq!(*kind, FaultKind::Panic, "{mode}");
        }
    }

    /// A caught panic must poison a SOLEIL membrane: until restarted, the
    /// component cannot be re-activated even by direct injection (the
    /// unwind may have left half-mutated content state behind).
    #[test]
    fn caught_panic_poisons_the_membrane_until_restart() {
        let spec = pipeline_spec();
        let mut sys = System::build(&spec, Mode::Soleil, &registry()).unwrap();
        let middle = sys.slot_of("middle").unwrap();
        sys.set_fault_policy_at(middle, FaultPolicy::Isolate)
            .unwrap();
        sys.install_fault_injector_at(
            middle,
            FaultInjector::new("middle", 9, 1).with_menu(FaultInjector::MENU_PANIC),
        )
        .unwrap();
        let head = sys.slot_of("producer").unwrap();
        sys.run_transaction(head).unwrap();
        assert!(sys.quarantined_at(middle));
        let m = sys.membranes[middle].as_ref().unwrap();
        assert!(m.poisoned(), "panic fault poisons, plain errors would not");
        // Restart clears the poison and the component serves again.
        sys.install_fault_injector_at(middle, FaultInjector::new("middle", 9, 0))
            .unwrap();
        sys.restart_slot(middle).unwrap();
        assert!(!sys.membranes[middle].as_ref().unwrap().poisoned());
        sys.run_transaction(head).unwrap();
    }

    #[test]
    fn restart_policy_rearms_through_the_timer_queue_until_budget_exhausts() {
        let spec = pipeline_spec();
        let mut sys = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
        let producer = sys.slot_of("producer").unwrap();
        sys.set_fault_policy_at(
            producer,
            FaultPolicy::Restart {
                max_restarts: 3,
                window: RelativeTime::from_millis(3_600_000),
                backoff: RelativeTime::from_millis(10),
            },
        )
        .unwrap();
        sys.install_fault_injector_at(
            producer,
            FaultInjector::new("producer", 5, 1).with_menu(FaultInjector::MENU_ERROR),
        )
        .unwrap();

        // Every activation faults: contain → backoff restart → fault again,
        // with the backoff doubling, until the budget (3 restarts inside
        // the window) exhausts and the fault escalates.
        let mut escalated = None;
        for tick in 1..=50u64 {
            match sys.run_tick() {
                Ok(()) => {}
                Err(e) => {
                    escalated = Some((tick, e));
                    break;
                }
            }
        }
        let (_, err) = escalated.expect("the restart budget must exhaust");
        assert!(
            matches!(&err, FrameworkError::Faulted { component, .. } if component == "producer"),
            "the escalated error is the original typed fault: {err}"
        );
        let (faults, restarts, suppressed) = sys.supervision_counts_at(producer);
        assert_eq!(restarts, 3, "exactly the budget");
        assert_eq!(faults, 4, "one fault per restart, plus the last straw");
        assert!(
            suppressed > 0,
            "backoff windows suppressed periodic releases while quarantined"
        );
        assert!(
            sys.quarantined_at(producer),
            "still quarantined after escalation"
        );
        assert!(
            sys.stats().timer_fires >= 3,
            "restarts rode the timer queue"
        );

        // SOL-021 reports the exhausted budget alongside SOL-020.
        let report = sys.health_report();
        assert!(report.by_code("SOL-020").any(|d| d.subject == "producer"));
        assert!(
            report.by_code("SOL-021").any(|d| d.subject == "producer"),
            "{report}"
        );
    }

    /// Satellite regression: an explicit stop must disarm the pending
    /// supervised-restart timer — a stale handle firing later would revive
    /// the component behind the operator's back.
    #[test]
    fn stop_disarms_a_pending_supervised_restart() {
        let spec = pipeline_spec();
        let mut sys = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
        let producer = sys.slot_of("producer").unwrap();
        sys.set_fault_policy_at(
            producer,
            FaultPolicy::Restart {
                max_restarts: 3,
                window: RelativeTime::from_millis(3_600_000),
                backoff: RelativeTime::from_millis(50),
            },
        )
        .unwrap();
        sys.install_fault_injector_at(
            producer,
            FaultInjector::new("producer", 5, 1).with_menu(FaultInjector::MENU_ERROR),
        )
        .unwrap();
        sys.run_tick().unwrap();
        assert!(sys.quarantined_at(producer));
        assert_eq!(sys.armed_timers(), 1, "backoff restart pending");

        sys.stop_at(producer).unwrap();
        assert_eq!(sys.armed_timers(), 0, "stop cancelled the stale handle");

        // Well past the 50ms backoff (quantum 10ms): no ghost restart.
        for _ in 0..20 {
            sys.run_tick().unwrap();
        }
        assert!(!sys.node_started(producer), "stopped stays stopped");
        let (_, restarts, _) = sys.supervision_counts_at(producer);
        assert_eq!(restarts, 0, "the cancelled timer never fired");
    }

    /// Satellite regression: changing the fault policy disarms the old
    /// policy's pending restart (while re-declaring the *same* policy
    /// leaves it armed).
    #[test]
    fn policy_change_disarms_the_previous_policys_restart() {
        let spec = pipeline_spec();
        let mut sys = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
        let producer = sys.slot_of("producer").unwrap();
        let restart = FaultPolicy::Restart {
            max_restarts: 3,
            window: RelativeTime::from_millis(3_600_000),
            backoff: RelativeTime::from_millis(50),
        };
        sys.set_fault_policy_at(producer, restart).unwrap();
        sys.install_fault_injector_at(
            producer,
            FaultInjector::new("producer", 5, 1).with_menu(FaultInjector::MENU_ERROR),
        )
        .unwrap();
        sys.run_tick().unwrap();
        assert_eq!(sys.armed_timers(), 1, "backoff restart pending");

        // Re-declaring the identical policy is a no-op for the timer…
        sys.set_fault_policy_at(producer, restart).unwrap();
        assert_eq!(sys.armed_timers(), 1, "same policy keeps the restart");

        // …but an actual change disarms it: Isolate must never observe a
        // restart it would not itself have scheduled.
        sys.set_fault_policy_at(producer, FaultPolicy::Isolate)
            .unwrap();
        assert_eq!(sys.armed_timers(), 0, "stale handle cancelled");
        for _ in 0..20 {
            sys.run_tick().unwrap();
        }
        assert!(
            sys.quarantined_at(producer),
            "no restart fired under Isolate"
        );
        let (_, restarts, _) = sys.supervision_counts_at(producer);
        assert_eq!(restarts, 0);
    }

    /// Satellite regression: an aborted tick names both the faulting
    /// component and every periodic head whose release it skipped.
    #[test]
    fn aborted_tick_reports_skipped_periodic_heads_exactly() {
        let mut spec = pipeline_spec();
        // A second, lower-priority periodic head that would have been
        // released after the producer.
        spec.components.push(ComponentSpec {
            name: "producer2".into(),
            content_class: "Service".into(),
            activation: Activation::Periodic {
                period: RelativeTime::from_millis(20),
            },
            domain: Some(2),
            area: 2,
            server_ports: vec![],
            ceiling: None,
        });
        let mut sys = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
        let producer = sys.slot_of("producer").unwrap();
        sys.install_fault_injector_at(
            producer,
            FaultInjector::new("producer", 5, 1).with_menu(FaultInjector::MENU_ERROR),
        )
        .unwrap();
        let err = sys.run_tick().unwrap_err();
        assert_eq!(
            err.to_string(),
            "run-to-completion violated: tick aborted by component 'producer': component \
             'producer' faulted (error): injected error (seed 5, activation 1); skipped \
             periodic heads: producer2"
        );

        // Under Isolate the same tick completes: the quarantined head's
        // release is suppressed-and-counted and later heads still run.
        sys.set_fault_policy_at(producer, FaultPolicy::Isolate)
            .unwrap();
        sys.run_tick().unwrap();
        sys.run_tick().unwrap();
        let (_, _, suppressed) = sys.supervision_counts_at(producer);
        assert_eq!(suppressed, 1, "second tick suppressed the quarantined head");
    }

    // -----------------------------------------------------------------
    // Supervision trees, warm-state handoff, virtual-time spikes
    // -----------------------------------------------------------------

    #[test]
    fn supervisor_edges_refuse_self_supervision_and_cycles() {
        let spec = pipeline_spec();
        let mut sys = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
        let producer = sys.slot_of("producer").unwrap();
        let middle = sys.slot_of("middle").unwrap();
        let sink = sys.slot_of("sink").unwrap();

        let err = sys.set_supervisor_at(producer, Some(producer)).unwrap_err();
        assert!(err.to_string().contains("cannot supervise itself"), "{err}");

        sys.set_supervisor_at(producer, Some(middle)).unwrap();
        sys.set_supervisor_at(middle, Some(sink)).unwrap();
        // sink → producer would close producer → middle → sink → producer.
        let err = sys.set_supervisor_at(sink, Some(producer)).unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
        sys.check_supervision().unwrap();

        // Clearing an edge returns the previous one.
        assert_eq!(sys.set_supervisor_at(middle, None).unwrap(), Some(sink));
        assert_eq!(sys.supervisor_of_at(middle), None);
    }

    #[test]
    fn escalation_walks_the_tree_and_restarts_the_failed_subtree_as_a_unit() {
        let spec = pipeline_spec();
        let mut sys = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
        let producer = sys.slot_of("producer").unwrap();
        let middle = sys.slot_of("middle").unwrap();
        let sink = sys.slot_of("sink").unwrap();
        // Tree: producer → middle → sink; only the root supervisor has a
        // containing policy.
        sys.set_supervisor_at(producer, Some(middle)).unwrap();
        sys.set_supervisor_at(middle, Some(sink)).unwrap();
        sys.set_fault_policy_at(
            sink,
            FaultPolicy::Restart {
                max_restarts: 5,
                window: RelativeTime::from_millis(3_600_000),
                backoff: RelativeTime::from_millis(10),
            },
        )
        .unwrap();
        sys.install_fault_injector_at(
            producer,
            FaultInjector::new("producer", 5, 1).with_menu(FaultInjector::MENU_ERROR),
        )
        .unwrap();

        // The fault escalates producer → middle (both Escalate) and sink
        // contains it: the failed branch rooted at `middle` goes down as a
        // unit, the handler itself stays healthy.
        sys.run_tick().unwrap();
        assert!(sys.quarantined_at(producer));
        assert!(sys.quarantined_at(middle), "subtree member taken down too");
        assert!(!sys.quarantined_at(sink), "the handler keeps running");
        let (pf, _, _) = sys.supervision_counts_at(producer);
        let (mf, _, _) = sys.supervision_counts_at(middle);
        assert_eq!(pf, 1, "the origin records the fault");
        assert_eq!(mf, 0, "co-quarantined members did not themselves fault");
        assert_eq!(
            sys.escalation_path_at(sink).as_deref(),
            Some("producer -> middle -> sink")
        );

        // SOL-023 names the supervision path on the handler; SOL-020
        // covers both downed members.
        let report = sys.health_report();
        assert!(
            report
                .by_code("SOL-023")
                .any(|d| d.subject == "sink" && d.message.contains("producer -> middle -> sink")),
            "{report}"
        );
        assert!(report.by_code("SOL-020").any(|d| d.subject == "producer"));
        assert!(report.by_code("SOL-020").any(|d| d.subject == "middle"));

        // Disarm the storm and let the backoff timer fire: the subtree
        // restarts as one unit through the timer queue.
        sys.install_fault_injector_at(producer, FaultInjector::new("producer", 5, 0))
            .unwrap();
        for _ in 0..5 {
            sys.run_tick().unwrap();
        }
        assert!(!sys.quarantined_at(producer));
        assert!(!sys.quarantined_at(middle));
        let (_, pr, _) = sys.supervision_counts_at(producer);
        let (_, mr, _) = sys.supervision_counts_at(middle);
        assert_eq!((pr, mr), (1, 1), "one supervised restart each, as a unit");
        // The pipeline serves again end to end.
        sys.run_tick().unwrap();
    }

    #[test]
    fn isolate_handler_contains_only_the_failed_branch() {
        let spec = pipeline_spec();
        let mut sys = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
        let producer = sys.slot_of("producer").unwrap();
        let middle = sys.slot_of("middle").unwrap();
        let sink = sys.slot_of("sink").unwrap();
        // Two branches under one Isolate supervisor.
        sys.set_supervisor_at(producer, Some(sink)).unwrap();
        sys.set_supervisor_at(middle, Some(sink)).unwrap();
        sys.set_fault_policy_at(sink, FaultPolicy::Isolate).unwrap();
        sys.install_fault_injector_at(
            producer,
            FaultInjector::new("producer", 5, 1).with_menu(FaultInjector::MENU_ERROR),
        )
        .unwrap();

        sys.run_tick().unwrap();
        assert!(sys.quarantined_at(producer), "the failed branch is down");
        assert!(
            !sys.quarantined_at(middle),
            "the sibling branch keeps running"
        );
        assert!(!sys.quarantined_at(sink), "the handler keeps running");
        assert_eq!(
            sys.escalation_path_at(sink).as_deref(),
            Some("producer -> sink")
        );
        // The sibling really serves: a direct injection still flows.
        let middle_in = sys.port_ix_of(middle, "in").unwrap();
        sys.inject_at(middle, middle_in, Token::default()).unwrap();
    }

    #[test]
    fn root_escalation_aborts_exactly_like_the_flat_semantics() {
        let spec = pipeline_spec();
        let mut sys = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
        let producer = sys.slot_of("producer").unwrap();
        let middle = sys.slot_of("middle").unwrap();
        // producer → middle, but middle also escalates and has no
        // supervisor: the walk runs off the root and the fault aborts.
        sys.set_supervisor_at(producer, Some(middle)).unwrap();
        sys.install_fault_injector_at(
            producer,
            FaultInjector::new("producer", 5, 1).with_menu(FaultInjector::MENU_ERROR),
        )
        .unwrap();
        let err = sys.run_tick().unwrap_err();
        assert!(
            err.to_string().contains("producer"),
            "the original typed fault surfaces: {err}"
        );
        assert!(
            !sys.quarantined_at(producer) && !sys.quarantined_at(middle),
            "an uncontained escalation quarantines nothing"
        );
    }

    /// A probed counter content: every successful activation increments
    /// and publishes its state, and the Checkpoint capability carries that
    /// state across supervised restarts.
    #[derive(Debug)]
    struct WarmCounter {
        count: u64,
        probe: std::sync::Arc<std::sync::Mutex<Vec<u64>>>,
    }
    impl Content<Token> for WarmCounter {
        fn on_invoke(
            &mut self,
            _port: &str,
            _msg: &mut Token,
            _out: &mut dyn Ports<Token>,
        ) -> InvokeResult {
            self.count += 1;
            self.probe.lock().unwrap().push(self.count);
            Ok(())
        }
        fn state_bytes(&self) -> usize {
            64
        }
        fn checkpoint(&self, image: &mut StateImage) -> bool {
            image.write_u64(self.count)
        }
        fn restore(&mut self, image: &StateImage) {
            if let Some(v) = image.read_u64(0) {
                self.count = v;
            }
        }
    }

    /// One periodic NHRT counter, no bindings — the smallest deployment
    /// that can fault, restart and hand state over.
    fn counter_spec() -> SystemSpec {
        SystemSpec {
            name: "warm".into(),
            areas: vec![AreaSpec {
                name: "imm".into(),
                kind: MemoryKind::Immortal,
                size: Some(64 * 1024),
                parent: None,
            }],
            domains: vec![DomainSpec {
                name: "nhrt".into(),
                kind: ThreadKind::NoHeapRealtime,
                priority: 30,
            }],
            components: vec![ComponentSpec {
                name: "counter".into(),
                content_class: "WarmCounter".into(),
                activation: Activation::Periodic {
                    period: RelativeTime::from_millis(10),
                },
                domain: Some(0),
                area: 0,
                server_ports: vec![],
                ceiling: None,
            }],
            bindings: vec![],
        }
    }

    fn counter_system(
        cadence: Option<u32>,
    ) -> (
        System<Token>,
        usize,
        std::sync::Arc<std::sync::Mutex<Vec<u64>>>,
    ) {
        let probe = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut r: ContentRegistry<Token> = ContentRegistry::new();
        let p = std::sync::Arc::clone(&probe);
        r.register("WarmCounter", move || {
            Box::new(WarmCounter {
                count: 0,
                probe: std::sync::Arc::clone(&p),
            })
        });
        let mut sys = System::build(&counter_spec(), Mode::MergeAll, &r).unwrap();
        let counter = sys.slot_of("counter").unwrap();
        sys.set_fault_policy_at(
            counter,
            FaultPolicy::Restart {
                max_restarts: 3,
                window: RelativeTime::from_millis(3_600_000),
                backoff: RelativeTime::from_millis(10),
            },
        )
        .unwrap();
        if let Some(cadence) = cadence {
            let bytes = sys.enable_checkpoint_at(counter, cadence).unwrap();
            assert_eq!(bytes, 2 * 64, "both images, at the state_bytes bound");
        }
        (sys, counter, probe)
    }

    #[test]
    fn checkpoint_carries_warm_state_across_a_supervised_restart() {
        let (mut sys, counter, probe) = counter_system(Some(1));
        for _ in 0..5 {
            sys.run_tick().unwrap();
        }
        // Fault once (the injector draws before the content runs), then
        // disarm and let the backoff restart fire.
        sys.install_fault_injector_at(
            counter,
            FaultInjector::new("counter", 5, 1).with_menu(FaultInjector::MENU_ERROR),
        )
        .unwrap();
        sys.run_tick().unwrap();
        assert!(sys.quarantined_at(counter));
        sys.install_fault_injector_at(counter, FaultInjector::new("counter", 5, 0))
            .unwrap();
        for _ in 0..4 {
            sys.run_tick().unwrap();
        }
        assert!(!sys.quarantined_at(counter), "backoff restart fired");

        // Warm handoff: the fresh instance resumed at the checkpointed
        // count — the observed sequence is strictly increasing with no
        // reset to 1.
        let seen = probe.lock().unwrap().clone();
        assert!(seen.len() >= 7, "{seen:?}");
        assert!(
            seen.windows(2).all(|w| w[1] == w[0] + 1) && seen[0] == 1,
            "monotonic continuation across the restart: {seen:?}"
        );
        let (captures, restores) = sys.checkpoint_counts_at(counter).unwrap();
        assert_eq!(restores, 1, "one restore into the fresh instance");
        assert!(captures >= 6, "probe capture + cadence + boundary");

        // Control: the same storm without the capability restarts cold.
        let (mut sys, counter, probe) = counter_system(None);
        for _ in 0..5 {
            sys.run_tick().unwrap();
        }
        sys.install_fault_injector_at(
            counter,
            FaultInjector::new("counter", 5, 1).with_menu(FaultInjector::MENU_ERROR),
        )
        .unwrap();
        sys.run_tick().unwrap();
        sys.install_fault_injector_at(counter, FaultInjector::new("counter", 5, 0))
            .unwrap();
        for _ in 0..4 {
            sys.run_tick().unwrap();
        }
        let seen = probe.lock().unwrap().clone();
        assert!(
            seen.iter().filter(|&&v| v == 1).count() == 2,
            "a cold restart resets the counter: {seen:?}"
        );
        assert_eq!(sys.checkpoint_counts_at(counter), None);
    }

    #[test]
    fn poisoned_restart_restores_the_cadence_image_not_the_boundary_capture() {
        let (mut sys, counter, probe) = counter_system(Some(3));
        for _ in 0..7 {
            sys.run_tick().unwrap();
        }
        // Counts 1..=7 ran; cadence-3 captures landed at 3 and 6, so the
        // healthy image holds 6 while the live instance holds 7.
        sys.install_fault_injector_at(
            counter,
            FaultInjector::new("counter", 9, 1).with_menu(FaultInjector::MENU_PANIC),
        )
        .unwrap();
        sys.run_tick().unwrap();
        assert!(sys.quarantined_at(counter));
        sys.install_fault_injector_at(counter, FaultInjector::new("counter", 9, 0))
            .unwrap();
        for _ in 0..4 {
            sys.run_tick().unwrap();
        }
        assert!(!sys.quarantined_at(counter));
        // A panic may have left the outgoing instance half-mutated: the
        // boundary capture is skipped and the last *healthy* cadence image
        // (count 6) is restored, so the first post-restart activation
        // publishes 7 again — not 8, which a boundary capture of the
        // poisoned instance would have produced.
        let seen = probe.lock().unwrap().clone();
        let after_restart = seen[7..].to_vec();
        assert_eq!(after_restart.first(), Some(&7), "{seen:?}");
    }

    #[test]
    fn checkpoint_requires_the_capability_and_a_positive_cadence() {
        // The pipeline's stock contents do not implement `checkpoint`.
        let spec = pipeline_spec();
        let mut sys = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
        let middle = sys.slot_of("middle").unwrap();
        let err = sys.enable_checkpoint_at(middle, 1).unwrap_err();
        assert!(err.to_string().contains("Checkpoint capability"), "{err}");
        assert!(!sys.checkpoint_enabled_at(middle));

        let (mut sys, counter, _) = counter_system(None);
        let err = sys.enable_checkpoint_at(counter, 0).unwrap_err();
        assert!(err.to_string().contains("cadence"), "{err}");
    }

    #[test]
    fn virtual_clock_spikes_advance_virtual_time_without_wall_waiting() {
        let spec = pipeline_spec();
        let mut sys = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
        let producer = sys.slot_of("producer").unwrap();
        // A full second of injected latency per activation: busy-waiting
        // this 10 times would stall the test for ~10 s of wall time.
        sys.install_fault_injector_at(
            producer,
            FaultInjector::new("producer", 7, 1)
                .with_menu(FaultInjector::MENU_LATENCY)
                .with_latency_spike_ns(1_000_000_000)
                .with_virtual_clock(),
        )
        .unwrap();
        let clock0 = sys.clock();
        let wall = Instant::now();
        for _ in 0..10 {
            sys.run_tick().unwrap();
        }
        let advanced = sys.clock().since(clock0);
        assert!(
            advanced >= RelativeTime::from_millis(10_000),
            "ten 1 s spikes must land on the virtual clock (got {advanced})"
        );
        assert!(
            wall.elapsed() < std::time::Duration::from_secs(5),
            "virtual spikes must not busy-wait the OS clock"
        );
    }

    #[test]
    fn supervisor_edges_change_the_structural_fingerprint() {
        let spec = pipeline_spec();
        let mut sys = System::build(&spec, Mode::MergeAll, &registry()).unwrap();
        let before = sys.structural_digest();
        let producer = sys.slot_of("producer").unwrap();
        let middle = sys.slot_of("middle").unwrap();
        sys.set_supervisor_at(producer, Some(middle)).unwrap();
        assert_ne!(
            before,
            sys.structural_digest(),
            "a supervision edge is structure: rollback identity checks must see it"
        );
        sys.set_supervisor_at(producer, None).unwrap();
        assert_eq!(
            before,
            sys.structural_digest(),
            "clearing the edge restores it"
        );
    }
}
