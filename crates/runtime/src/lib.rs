//! # soleil-runtime — the execution engine behind generated infrastructures
//!
//! The generator (see `soleil-generator`) compiles a validated architecture
//! into a [`spec::SystemSpec`]; this crate turns that spec into a running
//! [`system::System`] at one of the three optimization levels the paper
//! evaluates:
//!
//! * **SOLEIL** — membranes reified as objects: every invocation runs
//!   through lifecycle gates, a name-keyed binding controller and a dynamic
//!   interceptor chain; full membrane-level introspection/reconfiguration.
//! * **MERGE-ALL** — membrane logic merged into each component: compiled
//!   binding slots, inlined memory choreography; functional-level
//!   reconfiguration only.
//! * **ULTRA-MERGE** — the whole system fused into one flat dispatch table;
//!   purely static, no reconfiguration.
//!
//! All three execute the same RTSJ semantics against
//! [`rtsj::memory::MemoryManager`] (scope entry/exit, assignment checks,
//! buffer placement); what differs is the framework machinery around the
//! functional code — exactly the overhead Fig. 7 measures.
//!
//! For deployments whose thread domains are independent, [`parallel`]
//! shards the engine by domain — one `System` (and one slab-backed
//! memory manager) per shard, each ticking on its own OS thread, with
//! cross-shard bindings on wait-free SPSC rings. Payloads and content are
//! `Send` to make that legal; the partition rules live in the module docs.
//!
//! The engine is also a **release engine**: [`timer`] provides a
//! preallocated binary-heap timer queue over [`rtsj::time::AbsoluteTime`]
//! (schedule/fire/cancel with generation-checked handles; earliest
//! deadline first, ties by priority then FIFO), driven by
//! `System::run_tick` — serially or per parallel shard — so components
//! can schedule releases at absolute times. Deployed components can carry
//! declarative timing contracts (`soleil_core::contract`): an
//! allocation-free latency/jitter histogram with deadline-miss detection
//! is compiled into each component's activation plan — a `u16` sentinel,
//! so unmonitored components pay a single integer compare — and verdicts
//! surface through the design-time `ValidationReport` machinery.
//!
//! Faults are first-class: every component carries a
//! [`system::FaultPolicy`] (escalate / isolate / supervised restart with
//! exponential backoff on the timer queue), panics are caught at the
//! activation boundary and converted into typed `Faulted` errors, and a
//! deterministic seeded fault injector can be compiled into any
//! component's plan. Quarantined components count-drop their messages
//! (never silently lost) and surface through `health_report()` as
//! SOL-020…022 findings. Components additionally form **supervision
//! trees** (`Deployment::set_supervisor`): a fault escalating out of an
//! `Escalate` component walks up the tree, and the first supervisor with
//! a containing policy applies it to the failed *subtree* — isolating it
//! with counted drops or restarting it as a unit through the timer queue
//! — while sibling branches keep running; the walked path surfaces as a
//! SOL-023 verdict. Components opting into the warm-state **Checkpoint
//! capability** (`Deployment::enable_checkpoint`) carry their counters
//! across supervised restarts through bounded, preallocated state images
//! charged to their allocation area.
//!
//! Supporting modules: [`instrument`] (steady-state latency measurement for
//! Fig. 7(a)/(b)), [`footprint`] (Fig. 7(c) accounting) and [`sim`]
//! (virtual-time deployment onto [`rtsj::sched::Simulator`] for the
//! determinism experiment, plus engine-backed virtual-time recovery
//! campaigns — [`sim::run_recovery_campaign`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deploy;
pub mod footprint;
pub mod instrument;
pub mod parallel;
pub mod sim;
pub mod spec;
pub mod system;
pub mod timer;

pub use deploy::{ComponentRef, Deployment, PortRef, Reconfiguration};
pub use footprint::FootprintReport;
pub use instrument::LatencySamples;
pub use parallel::{ParallelReconfiguration, ParallelSystem, ShardRun};
pub use sim::{run_recovery_campaign, RecoveryEpisode, RecoveryMetrics};
pub use spec::{Mode, SystemSpec};
pub use system::{EngineStats, FaultPolicy, System};
pub use timer::{TimerHandle, TimerQueue};
