//! The release-engine timer queue: scheduled releases at absolute times.
//!
//! An RTFM-style binary-heap timer queue over [`AbsoluteTime`]: the queue
//! only decides *which* release is next and *when* — firing is a single
//! heap pop, so scheduling overhead stays minimal and the engine's tick
//! loop does the bulk of the work. Ordering is earliest deadline first,
//! ties broken by higher [`Priority`], then FIFO (schedule order).
//!
//! Every slot is preallocated when the queue is built (deploy time):
//! `schedule`, `cancel` and `pop_due` never touch the heap allocator, so
//! an armed-but-unfired queue keeps the engine inside its
//! 0-allocations-per-transaction steady-state gate. A full queue refuses
//! further schedules with [`FrameworkError::Timer`] instead of growing.
//!
//! Handles are generation-checked: [`cancel`](TimerQueue::cancel) on a
//! handle whose timer already fired (or was already cancelled) is a safe
//! no-op returning `false`. Cancellation is O(1) and lazy — the heap
//! entry goes stale and is skipped (or compacted in place, never
//! reallocated) later.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rtsj::thread::Priority;
use rtsj::time::AbsoluteTime;
use soleil_membrane::FrameworkError;

/// A generation-checked reference to one scheduled timer.
///
/// Copyable and cheap; survives the timer it names — once the timer fires
/// or is cancelled, the handle goes *stale* and every further operation
/// on it is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerHandle {
    slot: u32,
    generation: u32,
}

/// Heap entry. Field order *is* the ordering (derived lexicographic
/// `Ord` on a max-heap): earliest time first, then highest priority,
/// then FIFO by schedule sequence. `slot`/`generation` never influence
/// ordering — `seq` is unique — they just ride along for the stale check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Entry {
    at: Reverse<AbsoluteTime>,
    priority: Priority,
    seq: Reverse<u64>,
    slot: u32,
    generation: u32,
}

/// Preallocated per-timer state; `generation` is bumped on every disarm
/// so stale heap entries and stale handles are recognized.
#[derive(Debug, Clone)]
struct Slot<T> {
    generation: u32,
    armed: bool,
    at: AbsoluteTime,
    priority: Priority,
    payload: Option<T>,
}

/// One fired timer, as returned by [`TimerQueue::pop_due`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fired<T> {
    /// The (now stale) handle the schedule call returned.
    pub handle: TimerHandle,
    /// The absolute time the timer was scheduled for.
    pub at: AbsoluteTime,
    /// The priority it was scheduled with.
    pub priority: Priority,
    /// The scheduled payload.
    pub payload: T,
}

/// A bounded, preallocated timer queue (see the module docs for the
/// ordering and zero-allocation guarantees).
#[derive(Debug)]
pub struct TimerQueue<T> {
    slots: Vec<Slot<T>>,
    /// Free slot indices (stack); top of the stack is handed out first.
    free: Vec<u32>,
    heap: BinaryHeap<Entry>,
    seq: u64,
    armed: usize,
}

impl<T> TimerQueue<T> {
    /// Builds a queue with room for `capacity` (at least 1) concurrently
    /// armed timers. All storage is allocated here, once.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            slots.push(Slot {
                generation: 0,
                armed: false,
                at: AbsoluteTime::ZERO,
                priority: Priority::new(0),
                payload: None,
            });
        }
        TimerQueue {
            slots,
            free: (0..capacity as u32).rev().collect(),
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
            armed: 0,
        }
    }

    /// Maximum number of concurrently armed timers.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Currently armed (scheduled, not yet fired or cancelled) timers.
    pub fn armed(&self) -> usize {
        self.armed
    }

    /// True when nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.armed == 0
    }

    /// Bytes preallocated for the queue's storage (footprint reporting).
    pub fn footprint_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot<T>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
            + self.heap.capacity() * std::mem::size_of::<Entry>()
            + std::mem::size_of::<Self>()
    }

    /// Arms a timer firing at `at` with tie-breaking `priority`. Fails
    /// with [`FrameworkError::Timer`] when all slots are armed.
    pub fn schedule(
        &mut self,
        at: AbsoluteTime,
        priority: Priority,
        payload: T,
    ) -> Result<TimerHandle, FrameworkError> {
        if self.armed == self.capacity() {
            return Err(FrameworkError::Timer(format!(
                "timer queue full: all {} preallocated slots are armed",
                self.capacity()
            )));
        }
        // The heap may still hold stale entries for cancelled timers; if
        // it is physically full, compact it in place (`retain` rebuilds
        // without reallocating) so the push below cannot grow it.
        if self.heap.len() == self.capacity() {
            let slots = &self.slots;
            self.heap
                .retain(|e| slots[e.slot as usize].generation == e.generation);
        }
        let slot_ix = self
            .free
            .pop()
            .expect("armed < capacity implies a free slot");
        let slot = &mut self.slots[slot_ix as usize];
        slot.armed = true;
        slot.at = at;
        slot.priority = priority;
        slot.payload = Some(payload);
        let generation = slot.generation;
        self.seq += 1;
        self.heap.push(Entry {
            at: Reverse(at),
            priority,
            seq: Reverse(self.seq),
            slot: slot_ix,
            generation,
        });
        self.armed += 1;
        Ok(TimerHandle {
            slot: slot_ix,
            generation,
        })
    }

    /// Disarms the timer behind `handle`. Returns `false` — with no other
    /// effect — when the handle is stale (already fired or cancelled).
    /// O(1): the heap entry is invalidated by generation, not removed.
    pub fn cancel(&mut self, handle: TimerHandle) -> bool {
        let Some(slot) = self.slots.get_mut(handle.slot as usize) else {
            return false;
        };
        if !slot.armed || slot.generation != handle.generation {
            return false;
        }
        slot.armed = false;
        slot.payload = None;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(handle.slot);
        self.armed -= 1;
        true
    }

    /// Disarms every armed timer whose payload matches `pred`, returning
    /// how many were cancelled. The sweep companion to
    /// [`cancel`](TimerQueue::cancel) for callers that do not hold the
    /// handles — reconfiguration rollback and component teardown use it to
    /// guarantee no stale release (e.g. a supervised-restart timer armed
    /// mid-backoff) can fire for a component that was stopped, rebound, or
    /// rolled back out from under it. O(capacity); allocation-free like
    /// every other operation on the queue.
    pub fn cancel_where(&mut self, mut pred: impl FnMut(&T) -> bool) -> usize {
        let mut cancelled = 0;
        for (ix, slot) in self.slots.iter_mut().enumerate() {
            if slot.armed && slot.payload.as_ref().is_some_and(&mut pred) {
                slot.armed = false;
                slot.payload = None;
                slot.generation = slot.generation.wrapping_add(1);
                self.free.push(ix as u32);
                self.armed -= 1;
                cancelled += 1;
            }
        }
        cancelled
    }

    /// The earliest armed deadline, skimming stale heap entries off the
    /// top as a side effect. `None` when nothing is armed.
    pub fn next_deadline(&mut self) -> Option<AbsoluteTime> {
        loop {
            let e = self.heap.peek()?;
            let slot = &self.slots[e.slot as usize];
            if slot.armed && slot.generation == e.generation {
                return Some(e.at.0);
            }
            self.heap.pop();
        }
    }

    /// Fires the most urgent timer due at or before `now`, if any.
    /// Callers drain with `while let Some(fired) = q.pop_due(now)`.
    pub fn pop_due(&mut self, now: AbsoluteTime) -> Option<Fired<T>> {
        loop {
            let e = self.heap.peek()?;
            let slot = &self.slots[e.slot as usize];
            if !slot.armed || slot.generation != e.generation {
                self.heap.pop();
                continue;
            }
            if e.at.0 > now {
                return None;
            }
            let e = self.heap.pop().expect("peeked entry exists");
            let slot = &mut self.slots[e.slot as usize];
            let payload = slot.payload.take().expect("armed slot carries a payload");
            let fired = Fired {
                handle: TimerHandle {
                    slot: e.slot,
                    generation: slot.generation,
                },
                at: slot.at,
                priority: slot.priority,
                payload,
            };
            slot.armed = false;
            slot.generation = slot.generation.wrapping_add(1);
            self.free.push(e.slot);
            self.armed -= 1;
            return Some(fired);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> AbsoluteTime {
        AbsoluteTime::from_nanos(ns)
    }

    fn p(level: u8) -> Priority {
        Priority::new(level)
    }

    #[test]
    fn fires_earliest_first_then_priority_then_fifo() {
        let mut q = TimerQueue::with_capacity(8);
        q.schedule(t(300), p(10), "late").unwrap();
        q.schedule(t(100), p(5), "early-low").unwrap();
        q.schedule(t(100), p(20), "early-high").unwrap();
        q.schedule(t(100), p(20), "early-high-2nd").unwrap();
        let mut order = Vec::new();
        while let Some(f) = q.pop_due(t(1_000)) {
            order.push(f.payload);
        }
        assert_eq!(order, ["early-high", "early-high-2nd", "early-low", "late"]);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = TimerQueue::with_capacity(4);
        let h = q.schedule(t(500), p(1), ()).unwrap();
        assert!(q.pop_due(t(499)).is_none());
        assert_eq!(q.next_deadline(), Some(t(500)));
        let fired = q.pop_due(t(500)).expect("due exactly at deadline");
        assert_eq!(fired.at, t(500));
        assert_eq!(fired.handle, h, "fired handle names the schedule");
        assert!(!q.cancel(h), "handle is stale after firing");
    }

    #[test]
    fn cancel_is_generation_checked() {
        let mut q = TimerQueue::with_capacity(2);
        let h1 = q.schedule(t(100), p(1), 1u32).unwrap();
        assert!(q.cancel(h1));
        assert!(!q.cancel(h1), "double cancel is a stale no-op");
        // The freed slot is reused with a new generation; the old handle
        // must not be able to cancel the new timer.
        let h2 = q.schedule(t(200), p(1), 2u32).unwrap();
        assert!(!q.cancel(h1));
        assert_eq!(q.pop_due(t(200)).map(|f| f.payload), Some(2));
        assert!(!q.cancel(h2));
    }

    #[test]
    fn cancel_where_sweeps_matching_payloads() {
        let mut q = TimerQueue::with_capacity(8);
        q.schedule(t(100), p(1), "restart:a").unwrap();
        let keep = q.schedule(t(200), p(1), "release:b").unwrap();
        q.schedule(t(300), p(1), "restart:a").unwrap();
        assert_eq!(q.cancel_where(|pl| pl.starts_with("restart:")), 2);
        assert_eq!(q.armed(), 1);
        // The survivors are untouched, their handles stay live, and the
        // freed slots are reusable.
        assert_eq!(q.pop_due(t(1_000)).map(|f| f.payload), Some("release:b"));
        assert!(!q.cancel(keep), "fired handle is stale");
        assert_eq!(q.cancel_where(|_| true), 0, "empty sweep is a no-op");
        q.schedule(t(400), p(1), "restart:a").unwrap();
        assert_eq!(q.armed(), 1);
    }

    #[test]
    fn full_queue_refuses_and_recovers() {
        let mut q = TimerQueue::with_capacity(2);
        let h = q.schedule(t(1), p(1), ()).unwrap();
        q.schedule(t(2), p(1), ()).unwrap();
        let err = q.schedule(t(3), p(1), ()).unwrap_err();
        assert!(matches!(err, FrameworkError::Timer(_)), "{err}");
        assert!(q.cancel(h));
        // Cancelling made room even though the stale heap entry remains;
        // scheduling compacts in place rather than growing.
        q.schedule(t(3), p(1), ()).unwrap();
        assert_eq!(q.armed(), 2);
        let mut fired = Vec::new();
        while let Some(f) = q.pop_due(t(10)) {
            fired.push(f.at);
        }
        assert_eq!(fired, [t(2), t(3)]);
    }

    #[test]
    fn churn_never_exceeds_preallocated_capacity() {
        let mut q = TimerQueue::with_capacity(3);
        // Repeatedly fill, cancel and refire; heap never needs to grow
        // past capacity because stale entries are compacted in place.
        for round in 0..50u64 {
            let a = q.schedule(t(round * 10 + 1), p(1), round).unwrap();
            let b = q.schedule(t(round * 10 + 2), p(2), round).unwrap();
            let c = q.schedule(t(round * 10 + 3), p(3), round).unwrap();
            assert!(q.cancel(b));
            assert_eq!(q.pop_due(t(round * 10 + 5)).map(|f| f.handle), Some(a));
            assert_eq!(q.pop_due(t(round * 10 + 5)).map(|f| f.handle), Some(c));
            assert!(q.is_empty());
        }
        assert_eq!(q.capacity(), 3);
    }
}
