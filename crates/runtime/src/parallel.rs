//! Parallel domain sharding: one engine per thread-domain group, ticking
//! on real OS threads.
//!
//! The paper deploys one `RealtimeThread` per merged active composite —
//! thread domains are its natural units of parallelism. This module turns
//! that design-time structure into runtime parallelism:
//!
//! 1. **Planning.** [`ParallelSystem::build`] partitions a [`SystemSpec`]
//!    into *shards* with a union-find over components: components in the
//!    same domain stay together; synchronous bindings (nested
//!    run-to-completion calls cannot cross threads) and shared scoped
//!    memory areas (a scope is owned by exactly one engine — the slab
//!    substrate's per-area ownership is the sharding boundary) merge the
//!    groups they connect; domainless components attach to the shard of a
//!    binding peer. What remains independent runs independently.
//! 2. **Materialization.** Each shard gets its *own* [`System`] — its own
//!    slab-backed [`MemoryManager`](rtsj::memory::MemoryManager), its own
//!    pending-message heap, its own compiled binding tables. Heap and
//!    immortal areas are replicated per shard (each engine charges its own
//!    replica); scoped areas are materialized only in the shard that owns
//!    them. Bindings *between* shards are asynchronous by construction
//!    (anything synchronous was merged at planning time) and ride
//!    wait-free SPSC rings ([`soleil_patterns::spsc`]) instead of
//!    engine-local exchange buffers — the carrier is chosen here, at build
//!    time, exactly like RTSJ's `WaitFreeWriteQueue` sits between a
//!    no-heap producer and a heap consumer.
//! 3. **Execution.** [`ParallelSystem::run_ticks`] spawns one OS thread
//!    per shard ([`std::thread::scope`]); each thread releases its own
//!    periodic heads ([`System::run_tick`]) and drains its incoming rings
//!    (highest consumer priority first) in **batches**: each drain pass
//!    snapshots a ring's published head once and pops the whole visible
//!    run against the cached value, amortizing the `Acquire` load over
//!    the batch instead of paying it per message; every popped message
//!    injects as a run-to-completion activation. A tick round ends with a
//!    quiescence protocol: a shared in-flight counter is incremented
//!    *before* every cross push and decremented **batch-wise** after the
//!    batch's activations complete (later-than-necessary decrements are
//!    conservative), so `all ticks done ∧ in-flight == 0` still proves no
//!    message exists anywhere — only then do the workers exit.
//!    Steady-state ticks allocate nothing on any thread: rings, slabs and
//!    scope stacks are provisioned at build/warmup time.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

use rtsj::time::AbsoluteTime;
use soleil_core::contract::TimingContract;
use soleil_core::ValidationReport;
use soleil_membrane::content::{ContentRegistry, Payload};
use soleil_membrane::interceptors::FaultInjector;
use soleil_membrane::monitor::LatencySnapshot;
use soleil_membrane::FrameworkError;
use soleil_patterns::spsc::{spsc_ring, SpscConsumer};

use crate::spec::{
    AreaSpec, BindingSpec, ComponentSpec, DomainSpec, Mode, ProtocolSpec, SystemSpec,
};
use crate::system::{CrossOutput, EngineStats, FaultPolicy, System};
use crate::timer::TimerHandle;

// ---------------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------------

// Deterministic smaller-root-wins unions (shard order follows component
// declaration order); shared with the design-time SOL-015 advisory so the
// two partitions cannot drift.
use soleil_core::disjoint::UnionFind;

/// The scoped-area chain of a component (area indices, innermost last).
fn scoped_chain(spec: &SystemSpec, comp: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut cursor = Some(spec.components[comp].area);
    while let Some(ix) = cursor {
        if spec.areas[ix].kind == rtsj::memory::MemoryKind::Scoped {
            out.push(ix);
        }
        cursor = spec.areas[ix].parent;
    }
    out
}

/// Groups components into shards. Returns, per component, its shard index,
/// plus the number of shards. Pure function of the spec — the same
/// coupling rules the design-time advisory
/// (`soleil_core::validate::parallel_coupling`) reports on.
fn plan_shards(spec: &SystemSpec) -> (Vec<usize>, usize) {
    let n = spec.components.len();
    let mut uf = UnionFind::new(n);

    // Same thread domain → same shard.
    let mut first_in_domain: HashMap<usize, usize> = HashMap::new();
    for (i, c) in spec.components.iter().enumerate() {
        if let Some(d) = c.domain {
            match first_in_domain.get(&d) {
                Some(&j) => uf.union(i, j),
                None => {
                    first_in_domain.insert(d, i);
                }
            }
        }
    }

    // Synchronous bindings are nested run-to-completion calls: they cannot
    // cross threads, so they serialize their endpoints into one shard.
    for b in &spec.bindings {
        if matches!(b.protocol, ProtocolSpec::Sync) {
            uf.union(b.client, b.server);
        }
    }

    // A scoped area is owned by exactly one engine: components standing in
    // the same scope (anywhere on their chains) must share a shard.
    let mut first_with_area: HashMap<usize, usize> = HashMap::new();
    for i in 0..n {
        for a in scoped_chain(spec, i) {
            match first_with_area.get(&a) {
                Some(&j) => uf.union(i, j),
                None => {
                    first_with_area.insert(a, i);
                }
            }
        }
    }

    // Domainless groups (passives and undomained sporadics reachable only
    // through asynchronous bindings) attach to the shard of a binding
    // peer; iterate to a fixpoint so passive chains collapse.
    let group_has_domain = |uf: &mut UnionFind, spec: &SystemSpec, x: usize| {
        let root = uf.find(x);
        (0..n).any(|i| uf.find(i) == root && spec.components[i].domain.is_some())
    };
    loop {
        let mut changed = false;
        for bix in 0..spec.bindings.len() {
            let (c, s) = (spec.bindings[bix].client, spec.bindings[bix].server);
            if uf.find(c) != uf.find(s) {
                let cd = group_has_domain(&mut uf, spec, c);
                let sd = group_has_domain(&mut uf, spec, s);
                if cd != sd {
                    uf.union(c, s);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Anything still domainless and unconnected joins the first domained
    // group (or group 0): every component must be owned by some engine.
    let anchor = (0..n).find(|&i| spec.components[i].domain.is_some());
    if let Some(anchor) = anchor {
        for i in 0..n {
            if !group_has_domain(&mut uf, spec, i) {
                uf.union(i, anchor);
            }
        }
    }

    // Number shards in order of their smallest component index.
    let mut shard_of_root: HashMap<usize, usize> = HashMap::new();
    let mut shard_of_comp = vec![0usize; n];
    for (i, slot) in shard_of_comp.iter_mut().enumerate() {
        let root = uf.find(i);
        let next = shard_of_root.len();
        *slot = *shard_of_root.entry(root).or_insert(next);
    }
    let count = shard_of_root.len().max(1);
    (shard_of_comp, count)
}

// ---------------------------------------------------------------------------
// The sharded system
// ---------------------------------------------------------------------------

/// An incoming cross-domain ring: messages pop here and inject into the
/// consumer's server port as ordinary run-to-completion activations.
struct CrossIn<P> {
    rx: SpscConsumer<P>,
    slot: usize,
    port_ix: u16,
}

struct Shard<P: Payload> {
    label: String,
    domains: Vec<String>,
    components: Vec<String>,
    system: System<P>,
    incoming: Vec<CrossIn<P>>,
}

/// Per-shard report of one [`ParallelSystem::run_ticks_instrumented`] run.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Shard label (its thread-domain names joined with `+`).
    pub label: String,
    /// The OS thread the shard ticked on.
    pub thread: ThreadId,
    /// Measured ticks driven.
    pub ticks: u64,
    /// Median wall-clock nanoseconds per measured tick (tick + drain).
    pub median_tick_ns: u64,
    /// Total wall-clock nanoseconds across the measured ticks.
    pub total_ns: u64,
    /// Delta of the caller's probe across the measured phase (the
    /// zero-alloc gate passes a per-thread heap-allocation counter).
    pub probe_delta: u64,
    /// Substrate allocations performed during the measured phase (0 in
    /// steady state).
    pub substrate_allocs: u64,
    /// Drain passes executed over the shard's incoming rings across the
    /// whole run (each pass snapshots every ring's published head once).
    pub drain_passes: u64,
    /// Largest run of messages popped from one ring within a single drain
    /// pass — `> 1` proves the batched drain actually amortized an
    /// `Acquire` load over several messages.
    pub max_drain_batch: u64,
    /// Messages drained from incoming rings across the whole run.
    pub drained_messages: u64,
    /// Engine counters after the run (shard totals since build).
    pub stats: EngineStats,
}

/// Per-run drain accounting, threaded through every drain pass of one
/// shard worker (warmup, measured and quiescence phases alike).
#[derive(Debug, Clone, Copy, Default)]
struct DrainStats {
    passes: u64,
    max_batch: u64,
    messages: u64,
}

/// A deployment sharded by thread domain, ticking every shard on its own
/// OS thread. See the [module docs](self).
pub struct ParallelSystem<P: Payload> {
    name: String,
    mode: Mode,
    shards: Vec<Shard<P>>,
    in_flight: Arc<AtomicU64>,
}

impl<P: Payload> std::fmt::Debug for ParallelSystem<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelSystem")
            .field("name", &self.name)
            .field("mode", &self.mode)
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl<P: Payload> ParallelSystem<P> {
    /// Plans the shard partition of `spec`, materializes one engine per
    /// shard and wires every cross-shard binding through a wait-free SPSC
    /// ring. See the [module docs](self) for the partition rules.
    ///
    /// # Errors
    ///
    /// Spec inconsistencies ([`FrameworkError::Content`]) and build errors
    /// from the per-shard [`System::build`]s.
    pub fn build(
        spec: &SystemSpec,
        mode: Mode,
        registry: &ContentRegistry<P>,
    ) -> Result<ParallelSystem<P>, FrameworkError> {
        spec.check().map_err(FrameworkError::Content)?;
        let (shard_of_comp, shard_count) = plan_shards(spec);
        let in_flight: Arc<AtomicU64> = Arc::default();

        // --- Per-shard index remappings. -------------------------------
        // Areas: heap/immortal replicate everywhere; a scoped area lives
        // only in the shard owning it — via any resident component, or,
        // for a resident-free scope, its nearest scoped ancestor's owner
        // (its sub-spec must contain its parent chain; areas are ordered
        // parents-first, so the ancestor's owner is already settled).
        // Resident-free roots default to shard 0.
        let mut scoped_owner: Vec<usize> = vec![usize::MAX; spec.areas.len()];
        for (aix, a) in spec.areas.iter().enumerate() {
            if a.kind != rtsj::memory::MemoryKind::Scoped {
                continue; // replicated
            }
            scoped_owner[aix] = spec
                .components
                .iter()
                .enumerate()
                .find(|(cix, _)| scoped_chain(spec, *cix).contains(&aix))
                .map(|(cix, _)| shard_of_comp[cix])
                .or_else(|| {
                    let mut cursor = a.parent;
                    while let Some(p) = cursor {
                        if scoped_owner[p] != usize::MAX {
                            return Some(scoped_owner[p]);
                        }
                        cursor = spec.areas[p].parent;
                    }
                    None
                })
                .unwrap_or(0);
        }

        let mut area_map: Vec<HashMap<usize, usize>> = vec![HashMap::new(); shard_count];
        let mut shard_areas: Vec<Vec<AreaSpec>> = vec![Vec::new(); shard_count];
        for (aix, a) in spec.areas.iter().enumerate() {
            for shard in 0..shard_count {
                let replicated = scoped_owner[aix] == usize::MAX;
                if replicated || scoped_owner[aix] == shard {
                    let mut local = a.clone();
                    local.parent = a.parent.map(|p| {
                        *area_map[shard]
                            .get(&p)
                            .expect("parents precede children in a checked spec")
                    });
                    area_map[shard].insert(aix, shard_areas[shard].len());
                    shard_areas[shard].push(local);
                }
            }
        }

        // Domains: those referenced by a shard's components (unused
        // domains default to shard 0 so every roster entry materializes).
        let mut domain_shard = vec![0usize; spec.domains.len()];
        for (cix, c) in spec.components.iter().enumerate() {
            if let Some(d) = c.domain {
                domain_shard[d] = shard_of_comp[cix];
            }
        }
        let mut domain_map: Vec<HashMap<usize, usize>> = vec![HashMap::new(); shard_count];
        let mut shard_domains: Vec<Vec<DomainSpec>> = vec![Vec::new(); shard_count];
        for (dix, d) in spec.domains.iter().enumerate() {
            let shard = domain_shard[dix];
            domain_map[shard].insert(dix, shard_domains[shard].len());
            shard_domains[shard].push(d.clone());
        }

        // Components.
        let mut comp_map: Vec<HashMap<usize, usize>> = vec![HashMap::new(); shard_count];
        let mut shard_comps: Vec<Vec<ComponentSpec>> = vec![Vec::new(); shard_count];
        for (cix, c) in spec.components.iter().enumerate() {
            let shard = shard_of_comp[cix];
            let mut local = c.clone();
            local.area = area_map[shard][&c.area];
            local.domain = c.domain.map(|d| domain_map[shard][&d]);
            comp_map[shard].insert(cix, shard_comps[shard].len());
            shard_comps[shard].push(local);
        }

        // Bindings: intra-shard remap in place; cross-shard must be
        // asynchronous (planning merged everything synchronous) and
        // becomes a ring.
        let mut shard_bindings: Vec<Vec<BindingSpec>> = vec![Vec::new(); shard_count];
        let mut cross_outputs: Vec<Vec<CrossOutput<P>>> =
            (0..shard_count).map(|_| Vec::new()).collect();
        // (consumer shard, consumer local slot, server port, rx)
        let mut cross_inputs: Vec<Vec<(usize, String, SpscConsumer<P>)>> =
            (0..shard_count).map(|_| Vec::new()).collect();
        for b in &spec.bindings {
            let (cs, ss) = (shard_of_comp[b.client], shard_of_comp[b.server]);
            if cs == ss {
                let mut local = b.clone();
                local.client = comp_map[cs][&b.client];
                local.server = comp_map[cs][&b.server];
                local.enter_path = b.enter_path.iter().map(|a| area_map[cs][a]).collect();
                shard_bindings[cs].push(local);
                continue;
            }
            let ProtocolSpec::Async { capacity, .. } = b.protocol else {
                return Err(FrameworkError::Content(format!(
                    "planner bug: synchronous binding {}→{} crosses shards",
                    spec.components[b.client].name, spec.components[b.server].name
                )));
            };
            let (tx, rx) = spsc_ring::<P>(capacity)?;
            // Charge what the ring physically holds: the power-of-two slot
            // array of locked Option<P> cells, not just the logical
            // payload bytes.
            let slot_bytes = std::mem::size_of::<std::sync::Mutex<Option<P>>>().max(1);
            cross_outputs[cs].push(CrossOutput {
                client: comp_map[cs][&b.client],
                client_port: b.client_port.clone(),
                tx,
                charge_bytes: capacity.next_power_of_two() * slot_bytes,
            });
            cross_inputs[ss].push((comp_map[ss][&b.server], b.server_port.clone(), rx));
        }

        // --- Materialize each shard. -----------------------------------
        let mut shards: Vec<Shard<P>> = Vec::with_capacity(shard_count);
        for shard in 0..shard_count {
            let sub = SystemSpec {
                name: format!("{}/shard{}", spec.name, shard),
                areas: std::mem::take(&mut shard_areas[shard]),
                domains: shard_domains[shard].clone(),
                components: std::mem::take(&mut shard_comps[shard]),
                bindings: std::mem::take(&mut shard_bindings[shard]),
            };
            let system = System::build_with_cross(
                &sub,
                mode,
                registry,
                std::mem::take(&mut cross_outputs[shard]),
                Arc::clone(&in_flight),
            )?;
            let mut incoming = Vec::with_capacity(cross_inputs[shard].len());
            for (slot, port, rx) in std::mem::take(&mut cross_inputs[shard]) {
                let port_ix = system.port_ix_of(slot, &port)?;
                incoming.push(CrossIn { rx, slot, port_ix });
            }
            // Drain order: highest consumer priority first, mirroring the
            // single-engine pending heap.
            incoming.sort_by_key(|c| std::cmp::Reverse(system.node_priority(c.slot)));
            let domains: Vec<String> = sub.domains.iter().map(|d| d.name.clone()).collect();
            let label = if domains.is_empty() {
                format!("shard{shard}")
            } else {
                domains.join("+")
            };
            shards.push(Shard {
                label,
                domains,
                components: sub.components.iter().map(|c| c.name.clone()).collect(),
                system,
                incoming,
            });
        }

        Ok(ParallelSystem {
            name: spec.name.clone(),
            mode,
            shards,
            in_flight,
        })
    }

    /// The system name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The generation mode every shard runs in.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Number of shards (independent engines / OS threads per tick run).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard labels (thread-domain names joined with `+`), in shard order.
    pub fn shard_labels(&self) -> Vec<&str> {
        self.shards.iter().map(|s| s.label.as_str()).collect()
    }

    /// The shard a thread domain was planned into.
    pub fn shard_of_domain(&self, domain: &str) -> Option<usize> {
        self.shards
            .iter()
            .position(|s| s.domains.iter().any(|d| d == domain))
    }

    /// The shard a component was planned into.
    pub fn shard_of_component(&self, component: &str) -> Option<usize> {
        self.shards
            .iter()
            .position(|s| s.components.iter().any(|c| c == component))
    }

    /// Engine counters of one shard.
    pub fn shard_stats(&self, shard: usize) -> EngineStats {
        self.shards[shard].system.stats()
    }

    /// Engine counters summed across shards. Cross-ring traffic lands in
    /// the ledger split across engines: the producer shard counts the push
    /// (`async_messages`), the consumer shard counts the delivery or the
    /// quarantine drop — the sum is what conservation is asserted on.
    pub fn stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for s in &self.shards {
            let st = s.system.stats();
            total.transactions += st.transactions;
            total.activations += st.activations;
            total.sync_calls += st.sync_calls;
            total.async_messages += st.async_messages;
            total.dropped_messages += st.dropped_messages;
            total.delivered_messages += st.delivered_messages;
            total.quarantine_drops += st.quarantine_drops;
            total.faults_contained += st.faults_contained;
            total.timer_fires += st.timer_fires;
        }
        total
    }

    /// String comparisons performed by port dispatch, summed across
    /// shards (see [`System::string_compares`]).
    pub fn string_compares(&self) -> u64 {
        self.shards.iter().map(|s| s.system.string_compares()).sum()
    }

    /// Arc clones performed by port dispatch, summed across shards (see
    /// [`System::arc_clones`]).
    pub fn arc_clones(&self) -> u64 {
        self.shards.iter().map(|s| s.system.arc_clones()).sum()
    }

    /// Read-only access to one shard's engine (introspection, footprint).
    pub fn shard_system(&self, shard: usize) -> &System<P> {
        &self.shards[shard].system
    }

    // -----------------------------------------------------------------
    // Release engine: per-shard timers + runtime contracts
    // -----------------------------------------------------------------

    /// The shard and shard-local slot of a component, by name.
    fn locate(&self, component: &str) -> Result<(usize, usize), FrameworkError> {
        for (six, s) in self.shards.iter().enumerate() {
            if let Some(slot) = s.components.iter().position(|c| c == component) {
                return Ok((six, slot));
            }
        }
        Err(FrameworkError::Content(format!(
            "unknown component '{component}'"
        )))
    }

    /// Schedules an extra release of periodic `component` at absolute
    /// engine time `at`, on the timer queue of whichever shard it was
    /// planned into; each shard's worker fires its own due timers inside
    /// its tick loop (see [`System::schedule_release`]).
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] for unknown components,
    /// [`FrameworkError::Timer`] for non-periodic ones or a full queue.
    pub fn schedule_release(
        &mut self,
        component: &str,
        at: AbsoluteTime,
    ) -> Result<TimerHandle, FrameworkError> {
        let (shard, slot) = self.locate(component)?;
        self.shards[shard].system.schedule_release(slot, at)
    }

    /// Cancels a release scheduled on `component`'s shard; `false` for
    /// stale handles. The component names the shard — handles are only
    /// meaningful against the queue that issued them.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] for unknown components.
    pub fn cancel_release(
        &mut self,
        component: &str,
        handle: TimerHandle,
    ) -> Result<bool, FrameworkError> {
        let (shard, _) = self.locate(component)?;
        Ok(self.shards[shard].system.cancel_release(handle))
    }

    /// Currently armed timers, summed across shards.
    pub fn armed_timers(&self) -> usize {
        self.shards.iter().map(|s| s.system.armed_timers()).sum()
    }

    /// Attaches a declarative timing contract to a component, wherever it
    /// was sharded (see [`System`]'s contract machinery); every later
    /// activation on that shard's thread is stamped into its
    /// allocation-free histogram.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] for unknown components.
    pub fn attach_contract(
        &mut self,
        component: &str,
        contract: TimingContract,
    ) -> Result<(), FrameworkError> {
        let (shard, slot) = self.locate(component)?;
        self.shards[shard]
            .system
            .attach_contract_at(slot, contract)
            .map(|_| ())
    }

    /// A component's latency-monitor snapshot; `None` when no contract is
    /// attached.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] for unknown components.
    pub fn latency_snapshot(
        &self,
        component: &str,
    ) -> Result<Option<LatencySnapshot>, FrameworkError> {
        let (shard, slot) = self.locate(component)?;
        Ok(self.shards[shard].system.latency_snapshot_at(slot))
    }

    /// Deadline misses observed across every monitored component of every
    /// shard.
    pub fn deadline_misses(&self) -> u64 {
        self.shards.iter().map(|s| s.system.deadline_misses()).sum()
    }

    /// Checks every attached contract on every shard and folds the
    /// verdicts into one report (SOL-016…SOL-019).
    pub fn contract_report(&self) -> ValidationReport {
        let mut report = ValidationReport::default();
        for s in &self.shards {
            report.merge(s.system.contract_report());
        }
        report
    }

    // -----------------------------------------------------------------
    // Fault containment & supervision (per-shard engines)
    // -----------------------------------------------------------------

    /// Sets a component's [`FaultPolicy`] on whichever shard owns it;
    /// returns the previous policy. Under `Isolate` or `Restart`, a fault
    /// in this component quarantines it on its own shard while every
    /// sibling shard keeps ticking.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] for unknown components.
    pub fn set_fault_policy(
        &mut self,
        component: &str,
        policy: FaultPolicy,
    ) -> Result<FaultPolicy, FrameworkError> {
        let (shard, slot) = self.locate(component)?;
        self.shards[shard].system.set_fault_policy_at(slot, policy)
    }

    /// A component's current [`FaultPolicy`].
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] for unknown components.
    pub fn fault_policy(&self, component: &str) -> Result<FaultPolicy, FrameworkError> {
        let (shard, slot) = self.locate(component)?;
        Ok(self.shards[shard].system.fault_policy_at(slot))
    }

    /// True while a component is quarantined by its fault policy.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] for unknown components.
    pub fn quarantined(&self, component: &str) -> Result<bool, FrameworkError> {
        let (shard, slot) = self.locate(component)?;
        Ok(self.shards[shard].system.quarantined_at(slot))
    }

    /// Restarts a quarantined component now with a fresh content instance,
    /// on its own shard. Idempotent on healthy components.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] for unknown components, content
    /// `on_start` failures.
    pub fn restart_component(&mut self, component: &str) -> Result<(), FrameworkError> {
        let (shard, slot) = self.locate(component)?;
        self.shards[shard].system.restart_slot(slot)
    }

    /// Installs a deterministic [`FaultInjector`] at a component's
    /// activation boundary on whichever shard owns it (replaces any
    /// previous injector).
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] for unknown components.
    pub fn install_fault_injector(
        &mut self,
        component: &str,
        injector: FaultInjector,
    ) -> Result<(), FrameworkError> {
        let (shard, slot) = self.locate(component)?;
        self.shards[shard]
            .system
            .install_fault_injector_at(slot, injector)?;
        Ok(())
    }

    /// `(activations seen, faults injected)` of a component's injector;
    /// `None` when no injector is installed.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] for unknown components.
    pub fn injector_counts(&self, component: &str) -> Result<Option<(u64, u64)>, FrameworkError> {
        let (shard, slot) = self.locate(component)?;
        Ok(self.shards[shard].system.injector_counts_at(slot))
    }

    /// Supervision counters of a component:
    /// `(faults contained, supervised restarts, suppressed releases)`.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Content`] for unknown components.
    pub fn supervision_counts(&self, component: &str) -> Result<(u64, u64, u64), FrameworkError> {
        let (shard, slot) = self.locate(component)?;
        Ok(self.shards[shard].system.supervision_counts_at(slot))
    }

    /// The full runtime health report folded across every shard: contract
    /// verdicts (SOL-016…019) plus supervision findings (SOL-020…022).
    pub fn health_report(&self) -> ValidationReport {
        let mut report = ValidationReport::default();
        for s in &self.shards {
            report.merge(s.system.health_report());
        }
        report
    }

    /// Releases every periodic head of every shard `ticks` times, each
    /// shard on its own OS thread, then runs cross-shard traffic to
    /// quiescence. Equivalent to [`run_ticks_instrumented`] with no warmup
    /// and a constant probe.
    ///
    /// # Errors
    ///
    /// The first engine error from any shard aborts the run everywhere.
    ///
    /// [`run_ticks_instrumented`]: Self::run_ticks_instrumented
    pub fn run_ticks(&mut self, ticks: u64) -> Result<Vec<ShardRun>, FrameworkError> {
        self.run_ticks_instrumented(0, ticks, &|| 0)
    }

    /// The instrumented tick loop: `warmup` unmeasured ticks per shard
    /// (provisioning lazily-grown structures), a quiescence point, then
    /// `ticks` measured ticks with per-tick timing. `probe` is sampled on
    /// each shard's own thread around the measured phase — pass a
    /// per-thread allocation counter to gate the steady state at 0
    /// allocations, as `soleil-bench` does.
    ///
    /// # Errors
    ///
    /// The first engine error from any shard aborts the run everywhere.
    pub fn run_ticks_instrumented<F>(
        &mut self,
        warmup: u64,
        ticks: u64,
        probe: &F,
    ) -> Result<Vec<ShardRun>, FrameworkError>
    where
        F: Fn() -> u64 + Sync,
    {
        let ctl = Ctl {
            n: self.shards.len(),
            abort: AtomicBool::new(false),
            warmup_done: AtomicUsize::new(0),
            measure_gate: AtomicUsize::new(0),
            ticks_done: AtomicUsize::new(0),
            in_flight: Arc::clone(&self.in_flight),
            fault: Mutex::new(None),
        };
        let ctl = &ctl;
        let results: Vec<Result<ShardRun, FrameworkError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .enumerate()
                .map(|(shard_ix, shard)| {
                    scope.spawn(move || {
                        let label = shard.label.clone();
                        let out = shard_worker(shard, ctl, warmup, ticks, probe);
                        if let Err(e) = &out {
                            ctl.record_fault(shard_ix, &label, e);
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        // On abort every shard returns an error, but only one of them is
        // the root cause — surface that one (with its shard named), never
        // whichever sibling happened to come first in shard order.
        if results.iter().any(|r| r.is_err()) {
            return Err(ctl.aborted());
        }
        let mut runs = Vec::with_capacity(results.len());
        for r in results {
            runs.push(r.expect("checked above"));
        }
        Ok(runs)
    }

    /// Tears every shard down (see [`System::shutdown`]).
    ///
    /// # Errors
    ///
    /// Substrate errors releasing pins.
    pub fn shutdown(&mut self) -> Result<(), FrameworkError> {
        for s in &mut self.shards {
            s.system.shutdown()?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The per-shard worker
// ---------------------------------------------------------------------------

struct Ctl {
    n: usize,
    abort: AtomicBool,
    warmup_done: AtomicUsize,
    measure_gate: AtomicUsize,
    ticks_done: AtomicUsize,
    in_flight: Arc<AtomicU64>,
    /// First root-cause fault of the run: `(shard index, shard label,
    /// rendered engine error)`. Written once, by whichever worker faults
    /// first; every sibling's abort error — and the run's final error —
    /// names this instead of a generic "a sibling shard aborted".
    fault: Mutex<Option<(usize, String, String)>>,
}

impl Ctl {
    /// Records the run's root cause (first writer wins) and raises the
    /// abort flag that stops every sibling at its next check.
    fn record_fault(&self, shard_ix: usize, label: &str, error: &FrameworkError) {
        let mut slot = self.fault.lock().expect("fault slot poisoned");
        if slot.is_none() {
            *slot = Some((shard_ix, label.to_string(), error.to_string()));
        }
        drop(slot);
        self.abort.store(true, Ordering::SeqCst);
    }

    /// The abort error siblings observe: names the originating shard and
    /// its first root-cause error, not just "a sibling shard".
    fn aborted(&self) -> FrameworkError {
        let slot = self.fault.lock().expect("fault slot poisoned");
        match &*slot {
            Some((ix, label, cause)) => FrameworkError::RunToCompletion(format!(
                "parallel run aborted by shard {ix} ('{label}'): {cause}"
            )),
            None => {
                FrameworkError::RunToCompletion("parallel run aborted by a sibling shard".into())
            }
        }
    }
}

/// One pass over the shard's incoming rings (consumer priority order):
/// snapshots each ring's published head **once**, pops the visible run of
/// messages against the cached value (amortizing the `Acquire` load over
/// the whole batch) and runs every activation to completion. The in-flight
/// quiescence counter is decremented batch-wise, after the batch's
/// activations finish — never earlier than the per-message protocol, so it
/// still never under-reports. Returns true when at least one message was
/// processed.
fn drain_pass<P: Payload>(
    shard: &mut Shard<P>,
    ctl: &Ctl,
    ds: &mut DrainStats,
) -> Result<bool, FrameworkError> {
    let mut moved = false;
    ds.passes += 1;
    let Shard {
        system, incoming, ..
    } = shard;
    for cin in incoming.iter_mut() {
        let CrossIn { rx, slot, port_ix } = cin;
        let mut popped: u64 = 0;
        let mut result = Ok(());
        for msg in rx.drain_batch() {
            popped += 1;
            if let Err(e) = system.inject_at(*slot, *port_ix, msg) {
                result = Err(e);
                break;
            }
        }
        if popped > 0 {
            // Every popped message's activation (and any cross pushes it
            // made) is complete — or the run is aborting on `result`:
            // only now stop counting the batch as in flight.
            ctl.in_flight.fetch_sub(popped, Ordering::SeqCst);
            moved = true;
            ds.messages += popped;
            ds.max_batch = ds.max_batch.max(popped);
        }
        result?;
    }
    Ok(moved)
}

/// Drains until global quiescence: every shard past `phase_done`, zero
/// messages in flight, own rings empty. The in-flight counter is
/// incremented before any push, so observing `done == n ∧ in_flight == 0`
/// proves no message exists or can be created.
fn drain_until_quiescent<P: Payload>(
    shard: &mut Shard<P>,
    ctl: &Ctl,
    phase_done: &AtomicUsize,
    ds: &mut DrainStats,
) -> Result<(), FrameworkError> {
    loop {
        if ctl.abort.load(Ordering::SeqCst) {
            return Err(ctl.aborted());
        }
        let moved = drain_pass(shard, ctl, ds)?;
        if !moved
            && phase_done.load(Ordering::SeqCst) == ctl.n
            && ctl.in_flight.load(Ordering::SeqCst) == 0
            && shard.incoming.iter().all(|c| c.rx.is_empty())
        {
            return Ok(());
        }
        if !moved {
            std::thread::yield_now();
        }
    }
}

/// An abort-aware rendezvous (all shards arrive before any proceeds).
fn gate(counter: &AtomicUsize, ctl: &Ctl) -> Result<(), FrameworkError> {
    counter.fetch_add(1, Ordering::SeqCst);
    while counter.load(Ordering::SeqCst) < ctl.n {
        if ctl.abort.load(Ordering::SeqCst) {
            return Err(ctl.aborted());
        }
        std::thread::yield_now();
    }
    Ok(())
}

fn shard_worker<P: Payload, F>(
    shard: &mut Shard<P>,
    ctl: &Ctl,
    warmup: u64,
    ticks: u64,
    probe: &F,
) -> Result<ShardRun, FrameworkError>
where
    F: Fn() -> u64 + Sync,
{
    let thread = std::thread::current().id();
    let mut ds = DrainStats::default();

    // Phase 1: warmup (provision pending heaps, ring laps, scope stacks).
    for _ in 0..warmup {
        if ctl.abort.load(Ordering::SeqCst) {
            return Err(ctl.aborted());
        }
        shard.system.run_tick()?;
        drain_pass(shard, ctl, &mut ds)?;
    }
    ctl.warmup_done.fetch_add(1, Ordering::SeqCst);
    drain_until_quiescent(shard, ctl, &ctl.warmup_done, &mut ds)?;
    gate(&ctl.measure_gate, ctl)?;

    // Phase 2: measured ticks. The sample buffer exists before the probe
    // baseline is read, so the measured region itself allocates nothing.
    let mut nanos: Vec<u64> = Vec::with_capacity(ticks as usize);
    let substrate_before = shard.system.memory().alloc_count();
    let probe_before = probe();
    for _ in 0..ticks {
        if ctl.abort.load(Ordering::SeqCst) {
            return Err(ctl.aborted());
        }
        let t0 = Instant::now();
        shard.system.run_tick()?;
        drain_pass(shard, ctl, &mut ds)?;
        nanos.push(t0.elapsed().as_nanos() as u64);
    }
    ctl.ticks_done.fetch_add(1, Ordering::SeqCst);
    drain_until_quiescent(shard, ctl, &ctl.ticks_done, &mut ds)?;
    let probe_delta = probe() - probe_before;
    let substrate_allocs = shard.system.memory().alloc_count() - substrate_before;

    nanos.sort_unstable();
    let median_tick_ns = nanos.get(nanos.len() / 2).copied().unwrap_or(0);
    let total_ns = nanos.iter().sum();
    Ok(ShardRun {
        label: shard.label.clone(),
        thread,
        ticks,
        median_tick_ns,
        total_ns,
        probe_delta,
        substrate_allocs,
        drain_passes: ds.passes,
        max_drain_batch: ds.max_batch,
        drained_messages: ds.messages,
        stats: shard.system.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Activation, BufferPlacement};
    use rtsj::memory::MemoryKind;
    use rtsj::thread::ThreadKind;
    use rtsj::time::RelativeTime;
    use soleil_membrane::content::{Content, InvokeResult, Ports};
    use soleil_patterns::PatternKind;
    use std::sync::Mutex;

    /// Records, per consumer, how many messages arrived and on which OS
    /// thread they were processed.
    #[derive(Debug, Clone, Default)]
    struct ThreadProbe {
        seen: Arc<Mutex<HashMap<String, (u64, ThreadId)>>>,
    }

    impl ThreadProbe {
        fn count(&self, name: &str) -> u64 {
            self.seen
                .lock()
                .unwrap()
                .get(name)
                .map(|(n, _)| *n)
                .unwrap_or(0)
        }

        fn thread_of(&self, name: &str) -> Option<ThreadId> {
            self.seen.lock().unwrap().get(name).map(|(_, t)| *t)
        }
    }

    #[derive(Debug)]
    struct Fan {
        ports: Vec<&'static str>,
    }
    impl Content<u64> for Fan {
        fn on_invoke(&mut self, _p: &str, msg: &mut u64, out: &mut dyn Ports<u64>) -> InvokeResult {
            *msg += 1;
            for port in &self.ports {
                out.send(port, *msg)?;
            }
            Ok(())
        }
    }

    #[derive(Debug)]
    struct Recorder {
        name: String,
        probe: ThreadProbe,
    }
    impl Content<u64> for Recorder {
        fn on_invoke(
            &mut self,
            _p: &str,
            _msg: &mut u64,
            _out: &mut dyn Ports<u64>,
        ) -> InvokeResult {
            let mut seen = self.probe.seen.lock().unwrap();
            let entry = seen
                .entry(self.name.clone())
                .or_insert((0, std::thread::current().id()));
            entry.0 += 1;
            entry.1 = std::thread::current().id();
            Ok(())
        }
    }

    fn registry(probe: &ThreadProbe) -> ContentRegistry<u64> {
        let mut r = ContentRegistry::new();
        r.register("Fan2", || {
            Box::new(Fan {
                ports: vec!["out1", "out2"],
            })
        });
        let p = probe.clone();
        r.register("RecB", move || {
            Box::new(Recorder {
                name: "consumerB".into(),
                probe: p.clone(),
            })
        });
        let p = probe.clone();
        r.register("RecC", move || {
            Box::new(Recorder {
                name: "consumerC".into(),
                probe: p.clone(),
            })
        });
        r
    }

    /// Three domains: a periodic producer fanning out asynchronously to
    /// two sporadic consumers, each in its own domain — three shards.
    fn fan_spec() -> SystemSpec {
        SystemSpec {
            name: "fan".into(),
            areas: vec![AreaSpec {
                name: "Imm1".into(),
                kind: MemoryKind::Immortal,
                size: Some(256 * 1024),
                parent: None,
            }],
            domains: vec![
                DomainSpec {
                    name: "A".into(),
                    kind: ThreadKind::NoHeapRealtime,
                    priority: 30,
                },
                DomainSpec {
                    name: "B".into(),
                    kind: ThreadKind::NoHeapRealtime,
                    priority: 25,
                },
                DomainSpec {
                    name: "C".into(),
                    kind: ThreadKind::Realtime,
                    priority: 20,
                },
            ],
            components: vec![
                ComponentSpec {
                    name: "producer".into(),
                    content_class: "Fan2".into(),
                    activation: Activation::Periodic {
                        period: RelativeTime::from_millis(10),
                    },
                    domain: Some(0),
                    area: 0,
                    server_ports: vec![],
                    ceiling: None,
                },
                ComponentSpec {
                    name: "consumerB".into(),
                    content_class: "RecB".into(),
                    activation: Activation::Sporadic,
                    domain: Some(1),
                    area: 0,
                    server_ports: vec!["in".into()],
                    ceiling: None,
                },
                ComponentSpec {
                    name: "consumerC".into(),
                    content_class: "RecC".into(),
                    activation: Activation::Sporadic,
                    domain: Some(2),
                    area: 0,
                    server_ports: vec!["in".into()],
                    ceiling: None,
                },
            ],
            bindings: vec![
                BindingSpec {
                    client: 0,
                    client_port: "out1".into(),
                    server: 1,
                    server_port: "in".into(),
                    protocol: ProtocolSpec::Async {
                        capacity: 64,
                        placement: BufferPlacement::Immortal,
                    },
                    pattern: PatternKind::ImmortalExchange,
                    enter_path: vec![],
                },
                BindingSpec {
                    client: 0,
                    client_port: "out2".into(),
                    server: 2,
                    server_port: "in".into(),
                    protocol: ProtocolSpec::Async {
                        capacity: 64,
                        placement: BufferPlacement::Immortal,
                    },
                    pattern: PatternKind::ImmortalExchange,
                    enter_path: vec![],
                },
            ],
        }
    }

    #[test]
    fn independent_domains_get_independent_shards() {
        let probe = ThreadProbe::default();
        let sys = ParallelSystem::build(&fan_spec(), Mode::MergeAll, &registry(&probe)).unwrap();
        assert_eq!(sys.shard_count(), 3);
        let a = sys.shard_of_domain("A").unwrap();
        let b = sys.shard_of_domain("B").unwrap();
        let c = sys.shard_of_domain("C").unwrap();
        assert!(a != b && b != c && a != c);
        assert_eq!(sys.shard_of_component("producer"), Some(a));
        assert_eq!(sys.shard_of_component("consumerB"), Some(b));
        assert_eq!(sys.shard_of_component("consumerC"), Some(c));
    }

    #[test]
    fn shards_tick_on_distinct_os_threads_in_every_mode() {
        for mode in [Mode::Soleil, Mode::MergeAll, Mode::UltraMerge] {
            let probe = ThreadProbe::default();
            let mut sys = ParallelSystem::build(&fan_spec(), mode, &registry(&probe)).unwrap();
            let runs = sys.run_ticks(25).unwrap();
            assert_eq!(runs.len(), 3, "{mode}");

            // Every shard ran on its own OS thread, none on the test thread.
            let main = std::thread::current().id();
            let mut threads: Vec<ThreadId> = runs.iter().map(|r| r.thread).collect();
            assert!(threads.iter().all(|&t| t != main), "{mode}");
            threads.dedup();
            threads.sort_by_key(|t| format!("{t:?}"));
            threads.dedup();
            assert_eq!(threads.len(), 3, "{mode}: shards must not share threads");

            // Message conservation: each consumer saw all 25 fan-outs, on
            // the thread of its own shard.
            assert_eq!(probe.count("consumerB"), 25, "{mode}");
            assert_eq!(probe.count("consumerC"), 25, "{mode}");
            assert_ne!(
                probe.thread_of("consumerB").unwrap(),
                probe.thread_of("consumerC").unwrap(),
                "{mode}: consumers ran on different shards' threads"
            );
            assert_eq!(sys.stats().dropped_messages, 0, "{mode}");

            // The producer shard counted its cross sends; consumer shards
            // counted the injected activations as transactions.
            let a = sys.shard_of_domain("A").unwrap();
            assert_eq!(sys.shard_stats(a).async_messages, 50, "{mode}");
        }
    }

    #[test]
    fn sync_cross_domain_binding_merges_shards() {
        let mut spec = fan_spec();
        // Make producer→consumerB synchronous: B can no longer shard apart.
        spec.bindings[0].protocol = ProtocolSpec::Sync;
        spec.bindings[0].server_port = "in".into();
        let probe = ThreadProbe::default();
        let sys = ParallelSystem::build(&spec, Mode::MergeAll, &registry(&probe)).unwrap();
        assert_eq!(sys.shard_count(), 2);
        assert_eq!(
            sys.shard_of_domain("A"),
            sys.shard_of_domain("B"),
            "sync binding serializes A and B"
        );
        assert_ne!(sys.shard_of_domain("A"), sys.shard_of_domain("C"));
    }

    #[test]
    fn shared_scoped_area_merges_shards() {
        let mut spec = fan_spec();
        spec.areas.push(AreaSpec {
            name: "S1".into(),
            kind: MemoryKind::Scoped,
            size: Some(16 * 1024),
            parent: None,
        });
        // producer (A) and consumerC (C) live in the same scoped area:
        // one engine must own the scope, so A and C merge.
        spec.components[0].area = 1;
        spec.components[2].area = 1;
        let probe = ThreadProbe::default();
        let sys = ParallelSystem::build(&spec, Mode::MergeAll, &registry(&probe)).unwrap();
        assert_eq!(sys.shard_count(), 2);
        assert_eq!(sys.shard_of_domain("A"), sys.shard_of_domain("C"));
    }

    /// Regression: a scoped area with no resident components, nested in a
    /// scope owned by a non-zero shard, must materialize in that shard
    /// (not panic trying to remap a parent shard 0 never saw).
    #[test]
    fn resident_free_nested_scope_follows_its_parents_shard() {
        let mut spec = fan_spec();
        // S_owned hosts consumerC (domain C → a non-zero shard);
        // S_orphan nests inside it and hosts nobody.
        spec.areas.push(AreaSpec {
            name: "S_owned".into(),
            kind: MemoryKind::Scoped,
            size: Some(16 * 1024),
            parent: None,
        });
        spec.areas.push(AreaSpec {
            name: "S_orphan".into(),
            kind: MemoryKind::Scoped,
            size: Some(8 * 1024),
            parent: Some(1),
        });
        spec.components[2].area = 1; // consumerC into S_owned
        let probe = ThreadProbe::default();
        let mut sys = ParallelSystem::build(&spec, Mode::MergeAll, &registry(&probe)).unwrap();
        assert_eq!(sys.shard_count(), 3);
        let c = sys.shard_of_domain("C").unwrap();
        let owned = sys.shard_system(c).memory().area_by_name("S_owned");
        let orphan = sys.shard_system(c).memory().area_by_name("S_orphan");
        assert!(
            owned.is_some() && orphan.is_some(),
            "both scopes live in C's shard"
        );
        for other in (0..3).filter(|&s| s != c) {
            assert!(sys
                .shard_system(other)
                .memory()
                .area_by_name("S_orphan")
                .is_none());
        }
        sys.run_ticks(5).unwrap();
    }

    #[test]
    fn degenerate_single_shard_still_runs() {
        let mut spec = fan_spec();
        // Everything in one domain: one shard, no rings, same results.
        for c in &mut spec.components {
            c.domain = Some(0);
        }
        let probe = ThreadProbe::default();
        let mut sys = ParallelSystem::build(&spec, Mode::MergeAll, &registry(&probe)).unwrap();
        assert_eq!(sys.shard_count(), 1);
        let runs = sys.run_ticks(10).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(probe.count("consumerB"), 10);
        assert_eq!(probe.count("consumerC"), 10);
    }

    #[test]
    fn ring_backpressure_counts_drops() {
        let mut spec = fan_spec();
        // Tiny ring + a consumer that cannot drain mid-tick burst: drive
        // several sends per tick through a capacity-1 ring by fanning the
        // same port... simplest: capacity 1 with 25 ticks is fine (one
        // message per tick per ring drains); instead shrink to capacity 1
        // and send a burst by running many ticks while the consumer shard
        // is slow is nondeterministic — so just assert the accounting hook
        // exists via stats on a normal run.
        spec.bindings[0].protocol = ProtocolSpec::Async {
            capacity: 1,
            placement: BufferPlacement::Immortal,
        };
        let probe = ThreadProbe::default();
        let mut sys = ParallelSystem::build(&spec, Mode::MergeAll, &registry(&probe)).unwrap();
        sys.run_ticks(10).unwrap();
        let delivered = probe.count("consumerB");
        let dropped = sys.stats().dropped_messages;
        assert_eq!(delivered + dropped, 10, "conservation: delivered + dropped");
    }

    /// A consumer that fails every invocation with a recognizable error.
    #[derive(Debug)]
    struct Exploder;
    impl Content<u64> for Exploder {
        fn on_invoke(
            &mut self,
            _p: &str,
            _msg: &mut u64,
            _out: &mut dyn Ports<u64>,
        ) -> InvokeResult {
            Err(FrameworkError::Content("boom".into()))
        }
    }

    /// Satellite regression: an aborted parallel run must name the shard
    /// that faulted and its root-cause error — not a generic "aborted by a
    /// sibling shard" that loses the diagnosis.
    #[test]
    fn abort_reports_originating_shard_and_root_cause() {
        let probe = ThreadProbe::default();
        let mut reg = registry(&probe);
        reg.register("Boom", || Box::new(Exploder));
        let mut spec = fan_spec();
        spec.components[1].content_class = "Boom".into();
        let mut sys = ParallelSystem::build(&spec, Mode::MergeAll, &reg).unwrap();
        let b = sys.shard_of_component("consumerB").unwrap();
        let err = sys.run_ticks(10).unwrap_err();
        assert_eq!(
            err.to_string(),
            format!(
                "run-to-completion violated: parallel run aborted by shard {b} ('B'): \
                 content error: boom"
            )
        );
    }

    /// Tentpole: a panic injected into one shard under `Isolate` leaves
    /// every sibling shard completing its ticks, the faulted component
    /// quarantined with its messages counted-dropped, and the health
    /// report naming it.
    #[test]
    fn isolate_contains_a_panic_to_its_own_shard() {
        let probe = ThreadProbe::default();
        let mut sys =
            ParallelSystem::build(&fan_spec(), Mode::MergeAll, &registry(&probe)).unwrap();
        sys.set_fault_policy("consumerB", FaultPolicy::Isolate)
            .unwrap();
        sys.install_fault_injector(
            "consumerB",
            FaultInjector::new("consumerB", 7, 1).with_menu(FaultInjector::MENU_PANIC),
        )
        .unwrap();

        let runs = sys.run_ticks(25).unwrap();
        assert_eq!(runs.len(), 3, "all shards completed despite the panic");
        assert!(sys.quarantined("consumerB").unwrap());
        assert!(!sys.quarantined("consumerC").unwrap());
        // The sibling consumer saw every message; B panicked on its first
        // activation (before dispatch reached the content) and the rest
        // were counted-dropped against the quarantine.
        assert_eq!(probe.count("consumerC"), 25);
        assert_eq!(probe.count("consumerB"), 0);
        let stats = sys.stats();
        assert_eq!(stats.async_messages, 50);
        assert_eq!(stats.faults_contained, 1);
        assert_eq!(stats.quarantine_drops, 24);
        assert_eq!(stats.delivered_messages + stats.dropped_messages, 50);
        let (faults, restarts, _) = sys.supervision_counts("consumerB").unwrap();
        assert_eq!((faults, restarts), (1, 0));

        let report = sys.health_report();
        assert!(
            report.by_code("SOL-020").any(|d| d.subject == "consumerB"),
            "health report names the quarantined component: {report:?}"
        );
        assert!(report.by_code("SOL-022").next().is_some(), "drops surfaced");

        // Supervised recovery: an explicit restart clears the quarantine
        // and the component consumes again.
        sys.install_fault_injector("consumerB", FaultInjector::new("consumerB", 7, 0))
            .unwrap();
        sys.restart_component("consumerB").unwrap();
        assert!(!sys.quarantined("consumerB").unwrap());
        sys.run_ticks(5).unwrap();
        assert_eq!(probe.count("consumerB"), 5);
        assert!(sys.health_report().by_code("SOL-020").next().is_none());
    }

    #[test]
    fn instrumented_run_reports_quiescent_counters() {
        let probe = ThreadProbe::default();
        let mut sys =
            ParallelSystem::build(&fan_spec(), Mode::MergeAll, &registry(&probe)).unwrap();
        let runs = sys.run_ticks_instrumented(20, 50, &|| 0).unwrap();
        for r in &runs {
            assert_eq!(r.ticks, 50);
            assert_eq!(r.probe_delta, 0);
            assert_eq!(
                r.substrate_allocs, 0,
                "{}: steady-state ticks must not allocate in the substrate",
                r.label
            );
        }
        // 20 warmup + 50 measured ticks delivered everywhere.
        assert_eq!(probe.count("consumerB"), 70);
        assert_eq!(probe.count("consumerC"), 70);
    }
}
